"""Setuptools shim.

The canonical configuration lives in ``pyproject.toml``.  This file exists so
the package can be installed in fully offline environments whose setuptools
predates PEP 660 editable-install support (``pip install -e .`` there needs a
``setup.py``; use ``pip install -e . --no-build-isolation`` offline).
"""

from setuptools import setup

setup()
