"""Quickstart: run the full univariate experiment end to end in under a minute.

This script runs the library's default (fast) univariate pipeline:

1. generate a synthetic power-consumption series and cut it into weekly windows;
2. train the three autoencoder detectors (AE-IoT / AE-Edge / AE-Cloud);
3. deploy them on the simulated three-layer HEC testbed;
4. train the contextual-bandit policy network with REINFORCE;
5. evaluate the five model-selection schemes of the paper and print the
   Table I / Table II style results.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running straight from a source checkout without installation.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.evaluation.tables import format_table
from repro.pipelines import UnivariatePipelineConfig, run_univariate_pipeline


def main() -> None:
    print("Running the univariate (power-consumption) pipeline with the fast configuration...")
    result = run_univariate_pipeline(UnivariatePipelineConfig())

    print()
    print(
        format_table(
            [row.as_dict() for row in result.table1_rows],
            title="Table I (univariate): per-model comparison",
        )
    )

    print()
    print(
        format_table(
            [row.as_dict() for row in result.table2_rows],
            title="Table II (univariate): per-scheme comparison",
        )
    )

    adaptive = result.evaluations["Our Method"]
    cloud = result.evaluations["Cloud"]
    delay_reduction = 100.0 * (1.0 - adaptive.mean_delay_ms / cloud.mean_delay_ms)
    print()
    print(
        f"Adaptive scheme vs always-offload-to-cloud: "
        f"{delay_reduction:.1f}% lower detection delay at "
        f"{100.0 * (cloud.accuracy - adaptive.accuracy):.2f} pp accuracy difference."
    )
    print(f"Adaptive layer usage (IoT/Edge/Cloud requests): {adaptive.layer_usage}")


if __name__ == "__main__":
    main()
