"""Univariate power-consumption walkthrough (the paper's autoencoder track).

Unlike the quickstart, this example builds the pieces explicitly instead of
calling the pipeline, so it doubles as a tour of the public API:

* synthetic power data generation and weekly windowing,
* training the three autoencoders on normal weeks only,
* Gaussian logPD scoring and the confident-detection rules,
* deployment on the simulated HEC testbed,
* contextual features (per-day statistics) and policy-network training,
* evaluation of the five selection schemes.

Run it with::

    python examples/univariate_power.py [--weeks 40] [--paper-scale]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.bandit.context import UnivariateContextExtractor
from repro.bandit.reward import DelayCost, RewardFunction, PAPER_ALPHA_UNIVARIATE
from repro.data.datasets import LabeledWindows
from repro.data.power import PowerDatasetConfig, generate_power_dataset, weekly_windows
from repro.data.preprocessing import StandardScaler
from repro.data.splits import anomaly_detection_split, policy_training_split
from repro.detectors.autoencoder import build_autoencoder_detector
from repro.evaluation.experiment import evaluate_scheme
from repro.evaluation.tables import format_table
from repro.pipelines.common import build_hec_system, build_schemes, train_policy


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--weeks", type=int, default=40, help="number of synthetic weeks")
    parser.add_argument(
        "--samples-per-day", type=int, default=24,
        help="samples per day (96 = the paper's 15-minute sampling)",
    )
    parser.add_argument(
        "--paper-scale", action="store_true",
        help="use the paper-scale autoencoder architectures (much slower)",
    )
    parser.add_argument("--epochs", type=int, default=40, help="training epochs per detector")
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    rng = np.random.default_rng(args.seed)

    # 1. Data ---------------------------------------------------------------
    data_config = PowerDatasetConfig(
        weeks=args.weeks, samples_per_day=args.samples_per_day,
        anomalous_day_fraction=0.06, seed=args.seed + 7,
    )
    dataset = generate_power_dataset(data_config)
    windows, labels = weekly_windows(dataset, data_config.samples_per_day)
    all_windows = LabeledWindows(windows=windows, labels=labels)
    print(f"Generated {len(all_windows)} weekly windows "
          f"({int(all_windows.labels.sum())} anomalous).")

    split = anomaly_detection_split(all_windows, anomaly_test_fraction=1.0, rng=args.seed)
    scaler = StandardScaler().fit(split.train.windows)
    train_windows = scaler.transform(split.train.windows)
    test_windows = scaler.transform(split.test.windows)
    test_labels = split.test.labels

    # 2. Detectors ----------------------------------------------------------
    hidden_sizes = None if args.paper_scale else {
        "iot": (12,), "edge": (48, 24, 48), "cloud": (64, 32, 16, 32, 64),
    }
    detectors = {}
    for tier in ("iot", "edge", "cloud"):
        detector = build_autoencoder_detector(
            tier,
            window_size=all_windows.window_size,
            hidden_sizes=None if hidden_sizes is None else hidden_sizes[tier],
            seed=int(rng.integers(0, 2**31 - 1)),
        )
        detector.fit(train_windows, epochs=args.epochs, batch_size=8, learning_rate=1e-3)
        print(f"Trained {detector.name}: {detector.parameter_count()} parameters, "
              f"final loss {detector.model.history.last('loss'):.4f}")
        detectors[tier] = detector

    # 3. HEC deployment -------------------------------------------------------
    system, deployments = build_hec_system(detectors, workload="univariate")
    for deployment in deployments:
        print(f"Deployed {deployment.detector.name} on {deployment.device_name} "
              f"(quantized={deployment.quantized}, exec {deployment.execution_time_ms:.1f} ms)")

    # 4. Policy training -------------------------------------------------------
    standardized_all = LabeledWindows(
        windows=scaler.transform(all_windows.windows), labels=all_windows.labels
    )
    policy_train, _ = policy_training_split(standardized_all, anomaly_fraction=1.0, rng=args.seed)
    extractor = UnivariateContextExtractor(segments=7).fit(policy_train.windows)
    reward_fn = RewardFunction(cost=DelayCost(alpha=PAPER_ALPHA_UNIVARIATE))
    policy, log, _table = train_policy(
        system,
        [detectors[tier] for tier in ("iot", "edge", "cloud")],
        extractor,
        policy_train.windows,
        policy_train.labels,
        reward_fn,
        episodes=40,
        seed=args.seed,
    )
    print(f"Policy network trained for {log.episodes} episodes; "
          f"mean reward {log.episode_mean_rewards[0]:.3f} -> {log.episode_mean_rewards[-1]:.3f}")

    # 5. Scheme evaluation -------------------------------------------------------
    rows = []
    for scheme in build_schemes(system, policy, extractor):
        evaluation = evaluate_scheme(scheme, test_windows, test_labels, reward_fn=reward_fn)
        rows.append(evaluation.as_dict())
    print()
    print(format_table(rows, columns=["scheme", "f1", "accuracy_percent", "mean_delay_ms", "total_reward"],
                       title="Scheme comparison on the held-out test weeks"))


if __name__ == "__main__":
    main()
