"""Generalising to K > 3 layers: a five-layer hierarchical edge deployment.

Section II of the paper notes that the approach "applies to any K in general,
i.e. multiple layers of edge servers".  This example demonstrates that the
library is not hard-wired to the three-layer testbed: it builds a five-layer
hierarchy (device, gateway, micro edge, regional edge, cloud), trains five
autoencoders of increasing capacity, trains a five-action policy network and
compares the fixed-layer, successive and adaptive schemes on it.

Run it with::

    python examples/custom_hierarchy.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.bandit.context import UnivariateContextExtractor
from repro.bandit.reward import DelayCost, RewardFunction
from repro.data.datasets import LabeledWindows
from repro.data.power import PowerDatasetConfig, generate_power_dataset, weekly_windows
from repro.data.preprocessing import StandardScaler
from repro.data.splits import anomaly_detection_split, policy_training_split
from repro.detectors.autoencoder import AutoencoderDetector
from repro.detectors.registry import DetectorRegistry
from repro.evaluation.experiment import evaluate_scheme
from repro.evaluation.tables import format_table
from repro.hec.deployment import deploy_registry
from repro.hec.device import DeviceProfile
from repro.hec.network import NetworkLink
from repro.hec.simulation import HECSystem
from repro.hec.topology import HECTopology
from repro.pipelines.common import train_policy
from repro.schemes.adaptive import AdaptiveScheme
from repro.schemes.fixed import FixedLayerScheme
from repro.schemes.successive import SuccessiveScheme

#: The five tiers of this example's hierarchy, bottom-up.
TIER_NAMES = ("device", "gateway", "micro-edge", "regional-edge", "cloud")


def build_five_layer_topology() -> HECTopology:
    """Five devices of increasing capability, four links of increasing latency."""
    devices = [
        DeviceProfile(name="Sensor MCU", tier="iot", throughput_params_per_ms=2e3, memory_mb=64,
                      supports_fp32=False),
        DeviceProfile(name="IoT Gateway", tier="edge", throughput_params_per_ms=1e4, memory_mb=512,
                      supports_fp32=False),
        DeviceProfile(name="Micro edge server", tier="edge", throughput_params_per_ms=5e4,
                      memory_mb=4096),
        DeviceProfile(name="Regional edge server", tier="edge", throughput_params_per_ms=2e5,
                      memory_mb=16384),
        DeviceProfile(name="Cloud datacentre", tier="cloud", throughput_params_per_ms=1e6,
                      memory_mb=262144),
    ]
    links = [
        NetworkLink("device-gateway", one_way_latency_ms=2.0, bandwidth_mbps=50.0),
        NetworkLink("gateway-microedge", one_way_latency_ms=10.0, bandwidth_mbps=200.0),
        NetworkLink("microedge-regional", one_way_latency_ms=40.0, bandwidth_mbps=500.0),
        NetworkLink("regional-cloud", one_way_latency_ms=120.0, bandwidth_mbps=1000.0),
    ]
    return HECTopology(devices=devices, links=links)


def main() -> None:
    rng = np.random.default_rng(0)

    # Data: same synthetic power series as the univariate track.
    data_config = PowerDatasetConfig(weeks=40, samples_per_day=24, anomalous_day_fraction=0.06, seed=7)
    dataset = generate_power_dataset(data_config)
    windows, labels = weekly_windows(dataset, data_config.samples_per_day)
    all_windows = LabeledWindows(windows=windows, labels=labels)
    split = anomaly_detection_split(all_windows, anomaly_test_fraction=1.0, rng=0)
    scaler = StandardScaler().fit(split.train.windows)
    train_windows = scaler.transform(split.train.windows)
    test_windows = scaler.transform(split.test.windows)
    test_labels = split.test.labels

    # Five detectors of increasing capacity, one per layer.
    topology = build_five_layer_topology()
    registry = DetectorRegistry(tier_names=TIER_NAMES)
    hidden_sizes = [(4,), (8,), (16,), (32, 16, 32), (64, 32, 16, 32, 64)]
    for layer, hidden in enumerate(hidden_sizes):
        detector = AutoencoderDetector(
            window_size=all_windows.window_size,
            hidden_sizes=hidden,
            name=f"AE-{TIER_NAMES[layer]}",
            seed=int(rng.integers(0, 2**31 - 1)),
        )
        detector.fit(train_windows, epochs=60, batch_size=8, learning_rate=3e-3)
        registry.register(layer, detector)
        print(f"Trained {detector.name}: {detector.parameter_count()} parameters")

    deployments = deploy_registry(registry, topology, workload="weekly-window",
                                  execution_time_overrides=None,
                                  quantize_below_layer=2)
    system = HECSystem(topology, deployments)
    print("\n" + topology.describe())

    # Policy network over five actions.
    standardized_all = LabeledWindows(
        windows=scaler.transform(all_windows.windows), labels=all_windows.labels
    )
    policy_train, _ = policy_training_split(standardized_all, anomaly_fraction=1.0, rng=0)
    extractor = UnivariateContextExtractor(segments=7).fit(policy_train.windows)
    reward_fn = RewardFunction(cost=DelayCost(alpha=0.002))
    policy, log, _ = train_policy(
        system,
        registry.detectors(),
        extractor,
        policy_train.windows,
        policy_train.labels,
        reward_fn,
        episodes=40,
        seed=0,
    )
    print(f"\nPolicy network: {policy.n_actions} actions, "
          f"mean reward {log.episode_mean_rewards[0]:.3f} -> {log.episode_mean_rewards[-1]:.3f}")

    # Compare schemes on the five-layer hierarchy.
    rows = []
    schemes = [FixedLayerScheme(system, layer) for layer in range(system.n_layers)]
    schemes.append(SuccessiveScheme(system))
    schemes.append(AdaptiveScheme(system, policy, extractor))
    for scheme in schemes:
        evaluation = evaluate_scheme(scheme, test_windows, test_labels, reward_fn=reward_fn)
        row = evaluation.as_dict()
        row["scheme"] = scheme.name if not isinstance(scheme, FixedLayerScheme) \
            else f"Always {TIER_NAMES[scheme.layer]}"
        rows.append(row)
    print()
    print(format_table(
        rows,
        columns=["scheme", "f1", "accuracy_percent", "mean_delay_ms", "total_reward"],
        title="Five-layer hierarchy: scheme comparison",
    ))


if __name__ == "__main__":
    main()
