"""Multivariate MHEALTH-like walkthrough (the paper's LSTM-seq2seq track).

Builds the multivariate experiment explicitly:

* synthetic 18-channel activity data (10 subjects x 12 activities at paper
  scale, smaller by default so the script finishes quickly on a CPU),
* 128-step windows with stride 64 (paper scale) or smaller windows by default,
* the LSTM-seq2seq-IoT / LSTM-seq2seq-Edge / BiLSTM-seq2seq-Cloud detectors,
* the encoder-state context and policy-network training,
* evaluation of the five selection schemes.

Run it with::

    python examples/multivariate_mhealth.py [--subjects 3] [--paper-scale]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data.mhealth import ACTIVITY_NAMES, MHealthConfig
from repro.evaluation.tables import format_table
from repro.pipelines import MultivariatePipelineConfig, run_multivariate_pipeline


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--subjects", type=int, default=3, help="number of simulated subjects")
    parser.add_argument("--seconds-per-activity", type=float, default=8.0)
    parser.add_argument(
        "--paper-scale", action="store_true",
        help="use the paper's dimensions (10 subjects, 50 Hz, 128-step windows, 50/100/200 LSTM units)",
    )
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def main() -> None:
    args = parse_args()

    if args.paper_scale:
        config = MultivariatePipelineConfig.paper_scale()
    else:
        config = MultivariatePipelineConfig(
            data=MHealthConfig(
                n_subjects=args.subjects,
                seconds_per_activity=args.seconds_per_activity,
                sampling_rate_hz=25.0,
                seed=args.seed + 11,
            ),
            seed=args.seed,
        )

    normal = ACTIVITY_NAMES[config.data.normal_activity_index]
    print(
        f"Running the multivariate pipeline: {config.data.n_subjects} subjects, "
        f"{len(ACTIVITY_NAMES)} activities, normal activity = {normal!r}, "
        f"window {config.window_size} steps / stride {config.stride}."
    )
    result = run_multivariate_pipeline(config)

    print()
    print(format_table([row.as_dict() for row in result.table1_rows],
                       title="Table I (multivariate): per-model comparison"))
    print()
    print(format_table([row.as_dict() for row in result.table2_rows],
                       title="Table II (multivariate): per-scheme comparison"))

    adaptive = result.evaluations["Our Method"]
    cloud = result.evaluations["Cloud"]
    print()
    print(
        f"Adaptive scheme: accuracy {100 * adaptive.accuracy:.2f}% "
        f"(cloud {100 * cloud.accuracy:.2f}%), "
        f"mean delay {adaptive.mean_delay_ms:.1f} ms (cloud {cloud.mean_delay_ms:.1f} ms), "
        f"layer usage {adaptive.layer_usage}."
    )
    print("Context for the policy network comes from the IoT model's LSTM-encoder state "
          f"({result.policy.context_dim} dimensions).")


if __name__ == "__main__":
    main()
