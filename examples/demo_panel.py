"""Headless reproduction of the demo GUI's result panel (Fig. 3b).

The paper's demo shows a GUI where a user picks a dataset and a selection
scheme, presses "Start" and watches the raw signals, detection outcome vs.
ground truth, delay vs. selected action, and the cumulative accuracy/F1 update
in real time.  This example reproduces the same information as a streaming
text panel: it runs the chosen scheme window by window and prints one panel
row per window.

Run it with::

    python examples/demo_panel.py --dataset univariate --scheme adaptive
    python examples/demo_panel.py --dataset multivariate --scheme successive --max-windows 20
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.evaluation.figures import build_demo_panel_series
from repro.evaluation.metrics import cumulative_accuracy, cumulative_f1
from repro.pipelines import (
    MultivariatePipelineConfig,
    UnivariatePipelineConfig,
    run_multivariate_pipeline,
    run_univariate_pipeline,
)
from repro.schemes.adaptive import AdaptiveScheme
from repro.schemes.fixed import FixedLayerScheme
from repro.schemes.successive import SuccessiveScheme

SCHEME_CHOICES = ("iot", "edge", "cloud", "successive", "adaptive")


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", choices=("univariate", "multivariate"), default="univariate")
    parser.add_argument("--scheme", choices=SCHEME_CHOICES, default="adaptive")
    parser.add_argument("--max-windows", type=int, default=30,
                        help="number of test windows to stream")
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def build_scheme(result, name: str):
    """Instantiate the requested selection scheme against the pipeline's HEC system."""
    if name == "adaptive":
        return AdaptiveScheme(result.system, result.policy, result.context_extractor)
    if name == "successive":
        return SuccessiveScheme(result.system)
    layer = {"iot": 0, "edge": 1, "cloud": 2}[name]
    return FixedLayerScheme(result.system, layer)


def main() -> None:
    args = parse_args()
    print(f"Preparing the {args.dataset} pipeline (training detectors and policy network)...")
    if args.dataset == "univariate":
        result = run_univariate_pipeline(UnivariatePipelineConfig().with_seed(args.seed))
    else:
        result = run_multivariate_pipeline(MultivariatePipelineConfig().with_seed(args.seed))

    scheme = build_scheme(result, args.scheme)
    windows = result.test_windows[: args.max_windows]
    labels = result.test_labels[: args.max_windows]
    result.system.reset()

    print(f"\nStreaming {len(windows)} test windows through the {scheme.name!r} scheme:\n")
    print("idx  pred  truth  layer  delay_ms  cum_acc  cum_f1")
    outcomes = []
    for index in range(len(windows)):
        outcome = scheme.handle_window(windows[index], index, ground_truth=int(labels[index]))
        outcomes.append(outcome)
        predictions = np.array([o.prediction for o in outcomes])
        seen_labels = labels[: index + 1]
        accuracy = cumulative_accuracy(predictions, seen_labels)[-1]
        f1 = cumulative_f1(predictions, seen_labels)[-1]
        print(
            f"{index:3d}  {outcome.prediction:4d}  {int(labels[index]):5d}  "
            f"{outcome.layer:5d}  {outcome.delay_ms:8.1f}  {accuracy:7.3f}  {f1:6.3f}"
        )

    panel = build_demo_panel_series(outcomes, labels, windows=windows, scheme_name=scheme.name)
    actions = np.bincount(panel.actions, minlength=result.system.n_layers)
    print("\nSummary")
    print(f"  final cumulative accuracy: {panel.cumulative_accuracy[-1]:.3f}")
    print(f"  final cumulative F1:       {panel.cumulative_f1[-1]:.3f}")
    print(f"  mean end-to-end delay:     {panel.delays_ms.mean():.1f} ms")
    print(f"  requests per layer:        {actions.tolist()} (IoT, Edge, Cloud)")


if __name__ == "__main__":
    main()
