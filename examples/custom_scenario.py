"""Define and run your own scenario in ~20 lines.

A scenario is just a registered factory returning an
:class:`~repro.experiments.spec.ExperimentSpec`.  This example declares a
small three-tier experiment on the power workload — shallower autoencoders
than the built-in ``univariate-power`` scenario and a more delay-averse reward
(larger ``alpha``) — registers it under ``power-delay-averse``, and runs it.

Once registered, the scenario is fully CLI-drivable too::

    python examples/custom_scenario.py
    # or, from code that imports this module:
    #   repro run power-delay-averse --set policy.episodes=30
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import (
    DataSpec,
    DetectorSpec,
    ExperimentRunner,
    ExperimentSpec,
    PolicySpec,
    get_scenario,
    register_scenario,
)

SCENARIO_NAME = "power-delay-averse"


# The ~20 declarative lines: dataset, one detector per tier, policy training.
@register_scenario(SCENARIO_NAME, tags=("fast", "example"))
def power_delay_averse() -> ExperimentSpec:
    """Delay-averse univariate experiment with shallow autoencoders."""
    return ExperimentSpec(
        name=SCENARIO_NAME,
        description="Shallow AEs on the power workload, delay-averse reward",
        seed=0,
        data=DataSpec(source="power", seed=7, weeks=16, samples_per_day=24,
                      anomalous_day_fraction=0.08),
        detectors=(
            DetectorSpec(family="autoencoder", hidden_sizes=(8,), epochs=20),
            DetectorSpec(family="autoencoder", hidden_sizes=(24, 12, 24), epochs=25),
            DetectorSpec(family="autoencoder", hidden_sizes=(48, 24, 48), epochs=30),
        ),
        policy=PolicySpec(episodes=15, alpha=0.003, context="daily-stats",
                          context_segments=7),
    )


def main() -> None:
    spec = get_scenario(SCENARIO_NAME)
    print(f"Running scenario {spec.name!r}: {spec.description}")
    result = ExperimentRunner(spec).run()
    print()
    print(result.summary())
    adaptive = result.evaluation("Our Method")
    cloud = result.evaluation("Cloud")
    print()
    print(f"Adaptive delay vs always-cloud: {adaptive.mean_delay_ms:.1f} ms "
          f"vs {cloud.mean_delay_ms:.1f} ms")


if __name__ == "__main__":
    main()
