"""Successive offloading scheme.

The window is first handled at the IoT device; whenever the local detection is
*not* confident (per the paper's confidence rules), the window is offloaded to
the next layer up, and so on until a confident output is obtained or the cloud
is reached.  The delay of the final verdict accumulates the time already spent
at the lower layers, which is why the Successive scheme sits between the IoT
and Cloud schemes on delay but cannot beat the Adaptive scheme that goes to
the right layer directly.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.hec.simulation import DetectionRecord, HECSystem
from repro.schemes.base import SchemeOutcome, SelectionScheme


class SuccessiveScheme(SelectionScheme):
    """Escalate layer by layer until the detection is confident (or the top is reached)."""

    name = "Successive"

    def __init__(self, system: HECSystem, start_layer: int = 0) -> None:
        super().__init__(system)
        if not 0 <= start_layer < system.n_layers:
            raise ConfigurationError(
                f"start_layer must lie in [0, {system.n_layers}), got {start_layer}"
            )
        self.start_layer = int(start_layer)

    def handle_window(
        self,
        window: np.ndarray,
        window_index: int,
        ground_truth: Optional[int] = None,
    ) -> SchemeOutcome:
        records: List[DetectionRecord] = []
        accumulated_delay = None
        record: Optional[DetectionRecord] = None
        for layer in range(self.start_layer, self.system.n_layers):
            record = self.system.detect_at(
                layer,
                window,
                ground_truth=ground_truth,
                escalated_from=accumulated_delay,
            )
            records.append(record)
            if record.confident or layer == self.system.n_layers - 1:
                break
            # The next attempt inherits everything spent so far.
            accumulated_delay = record.delay
        assert record is not None  # the loop always executes at least once
        return SchemeOutcome(window_index=window_index, final=record, records=records)

    def run_batch(
        self, windows: np.ndarray, ground_truth: Optional[np.ndarray] = None
    ) -> List[SchemeOutcome]:
        """Escalation loop over layers with batched per-layer detector calls.

        Instead of finishing each window before starting the next, all windows
        are detected at the start layer in one batch; the unconfident ones are
        escalated together to the next layer, and so on.  On jitter-free links
        each window's record chain and accumulated delay are the same as in
        :meth:`run` (only the order of the system's global event log differs);
        jittery links fall back to the sequential loop so the per-transfer
        jitter draws keep their order.
        """
        windows = np.asarray(windows, dtype=float)
        n = windows.shape[0]
        if n == 0:
            return []
        if not self._links_jitter_free():
            return self.run(windows, ground_truth)
        finals: List[Optional[DetectionRecord]] = [None] * n
        chains: List[List[DetectionRecord]] = [[] for _ in range(n)]
        accumulated: List[Optional[object]] = [None] * n

        active = np.arange(n)
        for layer in range(self.start_layer, self.system.n_layers):
            truths = ground_truth[active] if ground_truth is not None else None
            records = self.system.detect_batch(
                layer,
                windows[active],
                ground_truths=truths,
                escalated_from=[accumulated[index] for index in active],
            )
            still_active = []
            top = self.system.n_layers - 1
            for index, record in zip(active, records):
                chains[index].append(record)
                if record.confident or layer == top:
                    finals[index] = record
                else:
                    accumulated[index] = record.delay
                    still_active.append(index)
            if not still_active:
                break
            active = np.asarray(still_active)

        return [
            SchemeOutcome(window_index=index, final=finals[index], records=chains[index])
            for index in range(n)
        ]

    def escalation_rate(self, outcomes: List[SchemeOutcome]) -> float:
        """Fraction of windows that needed more than one layer."""
        if not outcomes:
            return 0.0
        escalated = sum(1 for outcome in outcomes if len(outcome.records) > 1)
        return escalated / len(outcomes)
