"""Successive offloading scheme.

The window is first handled at the IoT device; whenever the local detection is
*not* confident (per the paper's confidence rules), the window is offloaded to
the next layer up, and so on until a confident output is obtained or the cloud
is reached.  The delay of the final verdict accumulates the time already spent
at the lower layers, which is why the Successive scheme sits between the IoT
and Cloud schemes on delay but cannot beat the Adaptive scheme that goes to
the right layer directly.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.hec.simulation import DetectionRecord, HECSystem
from repro.schemes.base import SchemeOutcome, SelectionScheme


class SuccessiveScheme(SelectionScheme):
    """Escalate layer by layer until the detection is confident (or the top is reached)."""

    name = "Successive"

    def __init__(self, system: HECSystem, start_layer: int = 0) -> None:
        super().__init__(system)
        if not 0 <= start_layer < system.n_layers:
            raise ConfigurationError(
                f"start_layer must lie in [0, {system.n_layers}), got {start_layer}"
            )
        self.start_layer = int(start_layer)

    def handle_window(
        self,
        window: np.ndarray,
        window_index: int,
        ground_truth: Optional[int] = None,
    ) -> SchemeOutcome:
        records: List[DetectionRecord] = []
        accumulated_delay = None
        record: Optional[DetectionRecord] = None
        for layer in range(self.start_layer, self.system.n_layers):
            record = self.system.detect_at(
                layer,
                window,
                ground_truth=ground_truth,
                escalated_from=accumulated_delay,
            )
            records.append(record)
            if record.confident or layer == self.system.n_layers - 1:
                break
            # The next attempt inherits everything spent so far.
            accumulated_delay = record.delay
        assert record is not None  # the loop always executes at least once
        return SchemeOutcome(window_index=window_index, final=record, records=records)

    def escalation_rate(self, outcomes: List[SchemeOutcome]) -> float:
        """Fraction of windows that needed more than one layer."""
        if not outcomes:
            return 0.0
        escalated = sum(1 for outcome in outcomes if len(outcome.records) > 1)
        return escalated / len(outcomes)
