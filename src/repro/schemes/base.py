"""Common interface of model-selection schemes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.hec.simulation import DetectionRecord, HECSystem


@dataclass
class SchemeOutcome:
    """The outcome of a scheme handling one window.

    ``records`` holds every detection the scheme triggered for the window (the
    Successive scheme can trigger several); ``final`` is the record whose
    prediction the scheme reports, and ``delay_ms`` the total end-to-end delay
    experienced by the window (including escalations).
    """

    window_index: int
    final: DetectionRecord
    records: List[DetectionRecord] = field(default_factory=list)

    @property
    def prediction(self) -> int:
        """The scheme's binary prediction for the window."""
        return self.final.prediction

    @property
    def layer(self) -> int:
        """The layer that produced the final prediction."""
        return self.final.layer

    @property
    def delay_ms(self) -> float:
        """Total end-to-end delay of handling the window."""
        return self.final.delay_ms

    @property
    def ground_truth(self) -> Optional[int]:
        """Ground-truth label of the window, when known."""
        return self.final.ground_truth


class SelectionScheme:
    """Base class: decide which layer(s) handle each window."""

    name: str = "scheme"

    def __init__(self, system: HECSystem) -> None:
        self.system = system

    def handle_window(
        self,
        window: np.ndarray,
        window_index: int,
        ground_truth: Optional[int] = None,
    ) -> SchemeOutcome:
        """Process one window and return the scheme's outcome."""
        raise NotImplementedError

    def run(self, windows: np.ndarray, labels: Optional[np.ndarray] = None) -> List[SchemeOutcome]:
        """Process a batch of windows one at a time; returns one outcome per window."""
        windows = np.asarray(windows, dtype=float)
        outcomes: List[SchemeOutcome] = []
        for index in range(windows.shape[0]):
            truth = int(labels[index]) if labels is not None else None
            outcomes.append(self.handle_window(windows[index], index, ground_truth=truth))
        return outcomes

    def run_batch(
        self, windows: np.ndarray, ground_truth: Optional[np.ndarray] = None
    ) -> List[SchemeOutcome]:
        """Batched driver: process all windows with vectorised detector calls.

        Subclasses override this with a path that pushes whole batches through
        :meth:`~repro.hec.simulation.HECSystem.detect_batch`; the outcomes are
        equivalent to :meth:`run` (identical predictions, delays and system
        bookkeeping on jitter-free links).  The base implementation simply
        falls back to the sequential loop.
        """
        return self.run(windows, ground_truth)

    def _links_jitter_free(self) -> bool:
        """Whether every link's delay is deterministic (no jitter RNG draws).

        Schemes whose batched drivers reorder detection requests (grouping by
        layer) use this to fall back to the sequential path when jitter is on,
        so the per-transfer jitter draws keep the same order as :meth:`run`.
        """
        return all(link.jitter_ms == 0.0 for link in self.system.topology.links)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
