"""Fixed-layer schemes: always detect at one chosen HEC layer.

``FixedLayerScheme(system, layer=0)`` is the paper's "IoT Device" scheme,
``layer=1`` is "Edge" and ``layer=K-1`` is "Cloud".
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.hec.simulation import HECSystem
from repro.schemes.base import SchemeOutcome, SelectionScheme

#: Human-readable names matching the paper's Table II rows (three-layer case);
#: the top layer of a deeper hierarchy is always "Cloud" and unnamed middle
#: layers fall back to "Layer-i".
_FIXED_SCHEME_NAMES = {0: "IoT Device", 1: "Edge"}


class FixedLayerScheme(SelectionScheme):
    """Always offload every window to the same layer.

    ``name`` overrides the default label — experiment runners pass tier-derived
    names for topologies deeper than the paper's three layers.
    """

    def __init__(self, system: HECSystem, layer: int, name: Optional[str] = None) -> None:
        super().__init__(system)
        if not 0 <= layer < system.n_layers:
            raise ConfigurationError(
                f"layer must lie in [0, {system.n_layers}), got {layer}"
            )
        self.layer = int(layer)
        if name is not None:
            self.name = name
        elif self.layer == system.n_layers - 1:
            self.name = "Cloud"
        else:
            self.name = _FIXED_SCHEME_NAMES.get(self.layer, f"Layer-{self.layer}")

    def handle_window(
        self,
        window: np.ndarray,
        window_index: int,
        ground_truth: Optional[int] = None,
    ) -> SchemeOutcome:
        record = self.system.detect_at(self.layer, window, ground_truth=ground_truth)
        return SchemeOutcome(window_index=window_index, final=record, records=[record])

    def run_batch(
        self, windows: np.ndarray, ground_truth: Optional[np.ndarray] = None
    ) -> List[SchemeOutcome]:
        """All windows go to the configured layer in one batched detector call."""
        windows = np.asarray(windows, dtype=float)
        records = self.system.detect_batch(self.layer, windows, ground_truths=ground_truth)
        return [
            SchemeOutcome(window_index=index, final=record, records=[record])
            for index, record in enumerate(records)
        ]
