"""Model-selection schemes.

The five schemes the paper evaluates (Section III-C, "User Actions"):

1. **IoT Device** — always detect at layer 0 (:class:`FixedLayerScheme`);
2. **Edge** — always offload to the edge server (:class:`FixedLayerScheme`);
3. **Cloud** — always offload to the cloud (:class:`FixedLayerScheme`);
4. **Successive** — detect at the IoT device first, escalate to the next layer
   whenever the detection is not confident, until a confident output or the
   cloud is reached (:class:`SuccessiveScheme`);
5. **Adaptive** — the paper's contextual-bandit scheme: the policy network
   picks one layer per window based on its context
   (:class:`AdaptiveScheme`).

All schemes share the :class:`SelectionScheme` interface so the evaluation
harness can run them interchangeably against the same
:class:`~repro.hec.simulation.HECSystem`.
"""

from repro.schemes.base import SelectionScheme, SchemeOutcome
from repro.schemes.fixed import FixedLayerScheme
from repro.schemes.successive import SuccessiveScheme
from repro.schemes.adaptive import AdaptiveScheme

__all__ = [
    "SelectionScheme",
    "SchemeOutcome",
    "FixedLayerScheme",
    "SuccessiveScheme",
    "AdaptiveScheme",
]
