"""The Adaptive scheme: contextual-bandit model selection.

For each window the scheme extracts the contextual features on the IoT device,
runs the (small) policy network, and sends the window directly to the selected
layer.  The policy network is trained beforehand by
:class:`~repro.bandit.reinforce.ReinforceTrainer`; at evaluation time the
scheme uses the greedy (arg-max) action, as the paper does once training has
converged.

The scheme also accounts for the on-device overhead of context extraction and
the policy forward pass, which is small but not zero; it is folded into the
reported delay as ``policy_overhead_ms`` (0 by default to match the paper's
delay accounting, which ignores it).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.bandit.context import ContextExtractor
from repro.bandit.policy_network import PolicyNetwork
from repro.exceptions import ConfigurationError
from repro.hec.simulation import HECSystem
from repro.schemes.base import SchemeOutcome, SelectionScheme
from repro.utils.validation import check_non_negative


class AdaptiveScheme(SelectionScheme):
    """Select the HEC layer per window with a trained policy network."""

    name = "Our Method"

    def __init__(
        self,
        system: HECSystem,
        policy: PolicyNetwork,
        context_extractor: ContextExtractor,
        greedy: bool = True,
        policy_overhead_ms: float = 0.0,
    ) -> None:
        super().__init__(system)
        if policy.n_actions != system.n_layers:
            raise ConfigurationError(
                f"policy has {policy.n_actions} actions but the HEC system has "
                f"{system.n_layers} layers"
            )
        self.policy = policy
        self.context_extractor = context_extractor
        self.greedy = bool(greedy)
        self.policy_overhead_ms = check_non_negative(policy_overhead_ms, "policy_overhead_ms")
        #: Actions chosen so far (useful for the demo panel's action plot).
        self.chosen_actions: list[int] = []

    def handle_window(
        self,
        window: np.ndarray,
        window_index: int,
        ground_truth: Optional[int] = None,
    ) -> SchemeOutcome:
        context = self.context_extractor.extract(np.asarray(window, dtype=float)[None, ...])
        action, _probabilities = self.policy.select_action(context[0], greedy=self.greedy)
        self.chosen_actions.append(int(action))
        record = self.system.detect_at(action, window, ground_truth=ground_truth)
        if self.policy_overhead_ms > 0:
            record.delay.execution_ms += self.policy_overhead_ms
        return SchemeOutcome(window_index=window_index, final=record, records=[record])

    def run_batch(
        self, windows: np.ndarray, ground_truth: Optional[np.ndarray] = None
    ) -> List[SchemeOutcome]:
        """Fully vectorised path: one context extraction, one policy forward,
        then one batched detector call per selected layer.

        Windows are grouped by chosen action, detected per group, and the
        outcomes re-assembled in the original window order.  With a greedy
        policy (the evaluation default) and jitter-free links the per-window
        outcomes are identical to :meth:`run`; with sampling the action draws
        use the policy's vectorised sampler, so they differ from the
        sequential draws while following the same distribution.  Jittery
        links fall back to the sequential loop (grouping would reorder the
        per-transfer jitter draws).
        """
        windows = np.asarray(windows, dtype=float)
        n = windows.shape[0]
        if n == 0:
            return []
        if not self._links_jitter_free():
            return self.run(windows, ground_truth)
        contexts = self.context_extractor.extract(windows)
        actions = self.policy.select_actions(contexts, greedy=self.greedy)
        self.chosen_actions.extend(int(action) for action in actions)

        records: List[Optional[object]] = [None] * n
        for action in np.unique(actions):
            indices = np.flatnonzero(actions == action)
            truths = ground_truth[indices] if ground_truth is not None else None
            for index, record in zip(
                indices,
                self.system.detect_batch(int(action), windows[indices], ground_truths=truths),
            ):
                records[index] = record
        if self.policy_overhead_ms > 0:
            for record in records:
                record.delay.execution_ms += self.policy_overhead_ms
        return [
            SchemeOutcome(window_index=index, final=record, records=[record])
            for index, record in enumerate(records)
        ]

    def action_distribution(self) -> np.ndarray:
        """Normalised frequencies of the actions chosen so far."""
        if not self.chosen_actions:
            return np.zeros(self.policy.n_actions)
        counts = np.bincount(self.chosen_actions, minlength=self.policy.n_actions).astype(float)
        return counts / counts.sum()
