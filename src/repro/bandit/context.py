"""Contextual feature extraction for the policy network.

The policy network must be small and fast enough to run on the IoT device, so
it never sees the raw window.  Instead (Section III-B of the paper):

* **univariate data** — the context is a vector of simple statistics of each
  day inside the weekly window: minimum, maximum, mean and standard deviation
  per day (7 days x 4 statistics = 28 features at the paper's scale);
* **multivariate data** — the context is the encoded state produced by the
  LSTM encoder of the IoT-tier seq2seq model (which already runs on the
  device anyway).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError, NotFittedError, ShapeError
from repro.detectors.lstm_seq2seq import Seq2SeqDetector


class ContextExtractor:
    """Base class: map a batch of windows to a batch of context vectors."""

    #: Dimensionality of the produced context vectors (set when known).
    context_dim: Optional[int] = None

    def extract(self, windows: np.ndarray) -> np.ndarray:
        """Context vectors of shape ``(n_windows, context_dim)``."""
        raise NotImplementedError

    def __call__(self, windows: np.ndarray) -> np.ndarray:
        return self.extract(windows)


class UnivariateContextExtractor(ContextExtractor):
    """Per-segment (per-day) min/max/mean/std statistics of a univariate window."""

    def __init__(self, segments: int = 7, normalize: bool = True) -> None:
        if segments <= 0:
            raise ConfigurationError(f"segments must be positive, got {segments}")
        self.segments = int(segments)
        self.normalize = bool(normalize)
        self.context_dim = 4 * self.segments
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    def _raw_features(self, windows: np.ndarray) -> np.ndarray:
        windows = np.asarray(windows, dtype=float)
        if windows.ndim == 1:
            windows = windows[None, :]
        if windows.ndim != 2:
            raise ShapeError(
                f"univariate windows must be 2-D (n_windows, window_size), got {windows.shape}"
            )
        n_windows, window_size = windows.shape
        if window_size % self.segments != 0:
            raise ShapeError(
                f"window size {window_size} is not divisible into {self.segments} segments"
            )
        segment_length = window_size // self.segments
        segmented = windows.reshape(n_windows, self.segments, segment_length)
        features = np.concatenate(
            [
                segmented.min(axis=2),
                segmented.max(axis=2),
                segmented.mean(axis=2),
                segmented.std(axis=2),
            ],
            axis=1,
        )
        return features

    def fit(self, windows: np.ndarray) -> "UnivariateContextExtractor":
        """Estimate feature-normalisation statistics from training windows."""
        features = self._raw_features(windows)
        self._mean = features.mean(axis=0)
        std = features.std(axis=0)
        self._std = np.where(std < 1e-8, 1.0, std)
        return self

    def extract(self, windows: np.ndarray) -> np.ndarray:
        features = self._raw_features(windows)
        if not self.normalize:
            return features
        if self._mean is None or self._std is None:
            raise NotFittedError(
                "UnivariateContextExtractor must be fitted before extracting normalised features"
            )
        return (features - self._mean) / self._std


class EncoderContextExtractor(ContextExtractor):
    """Context from the LSTM-encoder hidden state of a (fitted) seq2seq detector."""

    def __init__(self, detector: Seq2SeqDetector) -> None:
        self.detector = detector
        encoder = detector.model.encoder
        self.context_dim = getattr(encoder, "units", None)

    def extract(self, windows: np.ndarray) -> np.ndarray:
        features = self.detector.context_features(np.asarray(windows, dtype=float))
        if self.context_dim is None:
            self.context_dim = int(features.shape[1])
        return features
