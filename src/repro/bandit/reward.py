"""Reward and delay-cost functions.

The paper's reward for choosing action ``a`` (i.e. HEC layer ``a``) on input
``x`` with context ``z`` is

``R(a, z) = accuracy(x) - C(a, x)``

where ``accuracy(x)`` is 1 when the selected layer's model classifies the
window correctly and 0 otherwise, and the cost maps the end-to-end delay into
an equivalent accuracy penalty in [0, 1):

``C(a, x) = alpha * t_e2e(x, a) / (1 + alpha * t_e2e(x, a))``      (Eq. 1)

``alpha`` is a tunable parameter (0.0005 for the univariate dataset and
0.00035 for the multivariate dataset in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_non_negative

#: Alpha used by the paper for the univariate (power) dataset.
PAPER_ALPHA_UNIVARIATE = 0.0005

#: Alpha used by the paper for the multivariate (MHEALTH) dataset.
PAPER_ALPHA_MULTIVARIATE = 0.00035


@dataclass(frozen=True)
class DelayCost:
    """The delay-to-accuracy cost ``C(t) = alpha*t / (1 + alpha*t)`` of Eq. (1)."""

    alpha: float = PAPER_ALPHA_UNIVARIATE

    def __post_init__(self) -> None:
        check_non_negative(self.alpha, "alpha")

    def __call__(self, delay_ms: float) -> float:
        """Cost of an end-to-end delay given in milliseconds."""
        delay_ms = float(delay_ms)
        if delay_ms < 0:
            raise ValueError(f"delay must be non-negative, got {delay_ms}")
        scaled = self.alpha * delay_ms
        return scaled / (1.0 + scaled)

    def batch(self, delays_ms: np.ndarray) -> np.ndarray:
        """Vectorised cost over an array of delays."""
        delays_ms = np.asarray(delays_ms, dtype=float)
        if np.any(delays_ms < 0):
            raise ValueError("delays must be non-negative")
        scaled = self.alpha * delays_ms
        return scaled / (1.0 + scaled)


@dataclass(frozen=True)
class RewardFunction:
    """``R(a, z) = accuracy(x) - C(a, x)`` with the cost of Eq. (1)."""

    cost: DelayCost = DelayCost()

    def __call__(self, correct: bool | int | float, delay_ms: float) -> float:
        """Reward of a single detection outcome.

        Parameters
        ----------
        correct:
            1 (or True) when the selected model's prediction matches the
            ground truth, 0 otherwise.  A float in [0, 1] is also accepted for
            aggregated accuracies.
        delay_ms:
            End-to-end detection delay of the selected action.
        """
        accuracy = float(correct)
        return accuracy - self.cost(delay_ms)

    def batch(self, correct: np.ndarray, delays_ms: np.ndarray) -> np.ndarray:
        """Vectorised reward over matched arrays of outcomes and delays."""
        correct = np.asarray(correct, dtype=float)
        delays_ms = np.asarray(delays_ms, dtype=float)
        if correct.shape != delays_ms.shape:
            raise ValueError(
                f"correct {correct.shape} and delays {delays_ms.shape} must have the same shape"
            )
        return correct - self.cost.batch(delays_ms)

    def action_rewards(self, correct_per_action: np.ndarray, delays_per_action: np.ndarray
                       ) -> np.ndarray:
        """Reward of every candidate action for one window.

        Used to build the full reward table the REINFORCE trainer samples
        from (and by the oracle baseline in the ablation benchmarks).
        """
        return self.batch(correct_per_action, delays_per_action)
