"""REINFORCE trainer for the contextual bandit (single-step MDP).

The model-selection problem is a contextual bandit: for each window the agent
observes a context, picks one action (an HEC layer), receives one reward, and
the episode ends.  The policy network is trained with the policy-gradient
(REINFORCE) update; to reduce the variance of the gradient and speed up
convergence, the paper uses *reinforcement comparison*, i.e. the reward is
compared against a running baseline reward before being applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.bandit.policy_network import PolicyNetwork
from repro.bandit.reward import RewardFunction
from repro.utils.rng import RngLike, ensure_rng


class ReinforcementComparisonBaseline:
    """Running-average reward baseline ``R(a~, z)`` used for reinforcement comparison.

    The baseline tracks an exponentially weighted average of observed rewards;
    the advantage fed to the policy gradient is ``R - baseline``.  A per-action
    variant is supported (one running average per action), which is sometimes
    a better fit when action rewards have very different scales.
    """

    def __init__(self, decay: float = 0.9, per_action: bool = False, n_actions: int = 3) -> None:
        if not 0.0 <= decay < 1.0:
            raise ConfigurationError(f"decay must lie in [0, 1), got {decay}")
        self.decay = float(decay)
        self.per_action = bool(per_action)
        self.n_actions = int(n_actions)
        self._value = 0.0
        self._per_action_values = np.zeros(self.n_actions)
        self._initialized = False
        self._per_action_initialized = np.zeros(self.n_actions, dtype=bool)

    def value(self, action: Optional[int] = None) -> float:
        """Current baseline value (for ``action`` when per-action tracking is on)."""
        if self.per_action and action is not None:
            return float(self._per_action_values[action])
        return float(self._value)

    def update(self, reward: float, action: Optional[int] = None) -> float:
        """Fold one observed reward into the baseline; returns the new value."""
        reward = float(reward)
        if self.per_action and action is not None:
            if not self._per_action_initialized[action]:
                self._per_action_values[action] = reward
                self._per_action_initialized[action] = True
            else:
                self._per_action_values[action] = (
                    self.decay * self._per_action_values[action] + (1.0 - self.decay) * reward
                )
            return float(self._per_action_values[action])
        if not self._initialized:
            self._value = reward
            self._initialized = True
        else:
            self._value = self.decay * self._value + (1.0 - self.decay) * reward
        return float(self._value)

    def values(self, actions: Optional[np.ndarray] = None) -> np.ndarray:
        """Vectorised baseline lookup for a batch of actions.

        Uninitialised entries read as 0.0, matching what :meth:`value` returns
        for an action that has never been updated.
        """
        if actions is None or not self.per_action:
            n = 1 if actions is None else np.asarray(actions).shape[0]
            return np.full(n, self._value, dtype=float)
        actions = np.asarray(actions, dtype=int)
        return self._per_action_values[actions].astype(float)

    def _fold(self, value: float, rewards: np.ndarray) -> float:
        """Closed-form EWMA fold of ``rewards`` (in order) into ``value``."""
        k = rewards.shape[0]
        if k == 0:
            return float(value)
        weights = (1.0 - self.decay) * self.decay ** np.arange(k - 1, -1, -1)
        return float(self.decay**k * value + weights @ rewards)

    def update_batch(self, rewards: np.ndarray, actions: Optional[np.ndarray] = None) -> float:
        """Fold a batch of rewards into the baseline in one vectorised pass.

        Equivalent (up to floating-point associativity) to calling
        :meth:`update` once per ``(reward, action)`` pair in order: the
        exponentially weighted average is applied in closed form per action.
        Returns the new baseline value — the global value, or the mean over
        all per-action values when per-action tracking is on.
        """
        rewards = np.asarray(rewards, dtype=float).ravel()
        if rewards.size == 0:
            return self.value()
        if self.per_action and actions is not None:
            actions = np.asarray(actions, dtype=int).ravel()
            if actions.shape != rewards.shape:
                raise ConfigurationError(
                    f"actions and rewards must have the same length, got "
                    f"{actions.shape} and {rewards.shape}"
                )
            for action in np.unique(actions):
                action_rewards = rewards[actions == action]
                if not self._per_action_initialized[action]:
                    start, action_rewards = action_rewards[0], action_rewards[1:]
                    self._per_action_initialized[action] = True
                else:
                    start = self._per_action_values[action]
                self._per_action_values[action] = self._fold(start, action_rewards)
            return float(self._per_action_values.mean())
        if not self._initialized:
            start, rewards = rewards[0], rewards[1:]
            self._initialized = True
        else:
            start = self._value
        self._value = self._fold(start, rewards)
        return float(self._value)


@dataclass
class BanditEpisodeLog:
    """Per-episode training log of the REINFORCE trainer."""

    episode_rewards: List[float] = field(default_factory=list)
    episode_mean_rewards: List[float] = field(default_factory=list)
    action_counts: List[np.ndarray] = field(default_factory=list)
    baselines: List[float] = field(default_factory=list)

    def record(self, total_reward: float, mean_reward: float, counts: np.ndarray,
               baseline: float) -> None:
        """Append one episode's aggregates."""
        self.episode_rewards.append(float(total_reward))
        self.episode_mean_rewards.append(float(mean_reward))
        self.action_counts.append(np.asarray(counts, dtype=int))
        self.baselines.append(float(baseline))

    @property
    def episodes(self) -> int:
        """Number of completed training episodes."""
        return len(self.episode_rewards)

    def final_action_distribution(self) -> np.ndarray:
        """Normalised action frequencies of the last episode."""
        if not self.action_counts:
            return np.array([])
        counts = self.action_counts[-1].astype(float)
        total = counts.sum()
        return counts / total if total > 0 else counts


class ReinforceTrainer:
    """Train a :class:`PolicyNetwork` on a pre-computed reward table.

    The trainer is decoupled from the HEC system: callers supply, per training
    window, the context vector and the reward of *every* candidate action
    (correctness of each layer's detector on that window combined with that
    layer's end-to-end delay through :class:`~repro.bandit.reward.RewardFunction`).
    During training only the sampled action's reward is revealed to the
    learner, exactly as in a bandit setting.
    """

    def __init__(
        self,
        policy: PolicyNetwork,
        baseline: Optional[ReinforcementComparisonBaseline] = None,
        entropy_weight: float = 0.01,
        rng: RngLike = 0,
        batch_size: int = 1,
    ) -> None:
        self.policy = policy
        self.baseline = baseline or ReinforcementComparisonBaseline(n_actions=policy.n_actions)
        if entropy_weight < 0:
            raise ConfigurationError(f"entropy_weight must be non-negative, got {entropy_weight}")
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        self.entropy_weight = float(entropy_weight)
        self.batch_size = int(batch_size)
        self._rng = ensure_rng(rng)
        self.log = BanditEpisodeLog()

    # -- training -------------------------------------------------------------------

    def train(
        self,
        contexts: np.ndarray,
        action_rewards: np.ndarray,
        episodes: int = 50,
        shuffle: bool = True,
        callback: Optional[Callable[[int, BanditEpisodeLog], None]] = None,
        batch_size: Optional[int] = None,
    ) -> BanditEpisodeLog:
        """Run ``episodes`` passes over the training contexts.

        Parameters
        ----------
        contexts:
            Array of shape ``(n_windows, context_dim)``.
        action_rewards:
            Array of shape ``(n_windows, n_actions)`` holding the reward each
            action would obtain on each window.
        episodes:
            Number of passes over the training set.
        shuffle:
            Whether to visit windows in random order each episode.
        callback:
            Optional per-episode hook ``callback(episode, log)``.
        batch_size:
            Minibatch size for the policy-gradient updates; defaults to the
            trainer's ``batch_size``.  ``1`` runs the original per-sample
            REINFORCE loop (one optimizer step per window, baseline updated
            after every step).  Larger values sample actions for a whole
            minibatch at once, compute all advantages against the baseline as
            of the start of the minibatch, and perform a single fused
            forward/backward/optimizer step per minibatch — the standard
            minibatched REINFORCE semantics, and the fast path.
        """
        contexts = np.asarray(contexts, dtype=float)
        action_rewards = np.asarray(action_rewards, dtype=float)
        if contexts.ndim != 2:
            raise ShapeError(f"contexts must be 2-D, got shape {contexts.shape}")
        if action_rewards.shape != (contexts.shape[0], self.policy.n_actions):
            raise ShapeError(
                "action_rewards must have shape "
                f"({contexts.shape[0]}, {self.policy.n_actions}), got {action_rewards.shape}"
            )
        if episodes <= 0:
            raise ConfigurationError(f"episodes must be positive, got {episodes}")
        batch_size = self.batch_size if batch_size is None else int(batch_size)
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")

        n = contexts.shape[0]
        for episode in range(episodes):
            order = self._rng.permutation(n) if shuffle else np.arange(n)
            if batch_size == 1:
                total_reward, counts = self._train_episode_sequential(
                    contexts, action_rewards, order
                )
            else:
                total_reward, counts = self._train_episode_batched(
                    contexts, action_rewards, order, batch_size
                )
            mean_reward = total_reward / n if n else 0.0
            self.log.record(total_reward, mean_reward, counts, self.baseline.value())
            if callback is not None:
                callback(episode, self.log)
        return self.log

    def _train_episode_sequential(
        self,
        contexts: np.ndarray,
        action_rewards: np.ndarray,
        order: np.ndarray,
    ) -> tuple:
        """One pass with per-sample updates (the original REINFORCE loop)."""
        total_reward = 0.0
        counts = np.zeros(self.policy.n_actions, dtype=int)
        for index in order:
            context = contexts[index]
            action, _probs = self.policy.select_action(context, greedy=False)
            reward = float(action_rewards[index, action])
            baseline_value = self.baseline.value(action)
            advantage = reward - baseline_value
            self.policy.policy_gradient_step(
                context, action, advantage, entropy_weight=self.entropy_weight
            )
            self.baseline.update(reward, action)
            total_reward += reward
            counts[action] += 1
        return total_reward, counts

    def _train_episode_batched(
        self,
        contexts: np.ndarray,
        action_rewards: np.ndarray,
        order: np.ndarray,
        batch_size: int,
    ) -> tuple:
        """One pass with minibatched updates (vectorised sampling and gradients)."""
        total_reward = 0.0
        counts = np.zeros(self.policy.n_actions, dtype=int)
        for start in range(0, order.shape[0], batch_size):
            batch_indices = order[start: start + batch_size]
            batch_contexts = contexts[batch_indices]
            actions = self.policy.select_actions(batch_contexts, greedy=False)
            rewards = action_rewards[batch_indices, actions]
            advantages = rewards - self.baseline.values(actions)
            self.policy.policy_gradient_step_batch(
                batch_contexts, actions, advantages, entropy_weight=self.entropy_weight
            )
            self.baseline.update_batch(rewards, actions)
            total_reward += float(rewards.sum())
            counts += np.bincount(actions, minlength=self.policy.n_actions)
        return total_reward, counts

    # -- evaluation -------------------------------------------------------------------

    def evaluate(self, contexts: np.ndarray, action_rewards: np.ndarray) -> dict:
        """Greedy-policy evaluation on a reward table.

        Returns mean/total reward, the chosen-action distribution, and the
        regret against the per-window best action.
        """
        contexts = np.asarray(contexts, dtype=float)
        action_rewards = np.asarray(action_rewards, dtype=float)
        actions = self.policy.select_actions(contexts, greedy=True)
        chosen = action_rewards[np.arange(len(actions)), actions]
        best = action_rewards.max(axis=1)
        counts = np.bincount(actions, minlength=self.policy.n_actions)
        return {
            "mean_reward": float(chosen.mean()) if len(chosen) else 0.0,
            "total_reward": float(chosen.sum()),
            "mean_regret": float((best - chosen).mean()) if len(chosen) else 0.0,
            "action_distribution": (counts / counts.sum()).tolist() if counts.sum() else [],
            "actions": actions,
        }


def build_reward_table(
    correctness_per_action: Sequence[np.ndarray],
    delays_per_action: Sequence[float],
    reward_fn: RewardFunction,
) -> np.ndarray:
    """Assemble the ``(n_windows, n_actions)`` reward table.

    Parameters
    ----------
    correctness_per_action:
        One binary array per action, each of length ``n_windows``, saying
        whether that action's detector classifies each window correctly.
    delays_per_action:
        The end-to-end delay (milliseconds) of each action.
    reward_fn:
        The reward function combining correctness and delay.
    """
    correctness = np.stack([np.asarray(c, dtype=float) for c in correctness_per_action], axis=1)
    delays = np.asarray(delays_per_action, dtype=float)
    if delays.shape[0] != correctness.shape[1]:
        raise ShapeError(
            f"got {correctness.shape[1]} correctness columns but {delays.shape[0]} delays"
        )
    delay_matrix = np.broadcast_to(delays, correctness.shape)
    return reward_fn.batch(correctness, delay_matrix)
