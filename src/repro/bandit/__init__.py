"""Contextual-bandit model selection.

This subpackage implements the paper's core contribution: selecting, per input
window, which HEC layer (equivalently, which detection model) should handle
the detection, by solving a contextual bandit with a policy-gradient method.

* :mod:`repro.bandit.context` — contextual feature extraction (per-day
  statistics for univariate windows; LSTM-encoder states for multivariate
  windows);
* :mod:`repro.bandit.policy_network` — the single-hidden-layer softmax policy
  network (100 hidden units, K outputs);
* :mod:`repro.bandit.reward` — the delay-aware reward
  ``R(a, z) = accuracy(x) - C(a, x)`` with
  ``C = alpha * t / (1 + alpha * t)``;
* :mod:`repro.bandit.reinforce` — the REINFORCE trainer with a
  reinforcement-comparison baseline (single-step MDP);
* :mod:`repro.bandit.baselines` — non-learning selection baselines
  (epsilon-greedy, UCB, random) used in ablation benchmarks.
"""

from repro.bandit.context import (
    UnivariateContextExtractor,
    EncoderContextExtractor,
    ContextExtractor,
)
from repro.bandit.policy_network import PolicyNetwork
from repro.bandit.reward import DelayCost, RewardFunction
from repro.bandit.reinforce import ReinforceTrainer, ReinforcementComparisonBaseline, BanditEpisodeLog
from repro.bandit.baselines import EpsilonGreedySelector, UCBSelector, RandomSelector

__all__ = [
    "ContextExtractor",
    "UnivariateContextExtractor",
    "EncoderContextExtractor",
    "PolicyNetwork",
    "DelayCost",
    "RewardFunction",
    "ReinforceTrainer",
    "ReinforcementComparisonBaseline",
    "BanditEpisodeLog",
    "EpsilonGreedySelector",
    "UCBSelector",
    "RandomSelector",
]
