"""The softmax policy network.

A single-hidden-layer neural network (100 hidden units in the paper) that maps
a context vector to a categorical distribution over the K HEC layers.  The
network supports sampling an action, greedy action selection, and the
REINFORCE gradient step ``theta <- theta + lr * advantage * grad log pi(a|z)``
implemented via the existing layer backward passes.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.layers.dense import Dense
from repro.nn.models.sequential import Sequential
from repro.nn.optimizers import Optimizer, get_optimizer
from repro.utils.rng import RngLike, ensure_rng


class PolicyNetwork:
    """``pi_theta(a | z)``: a softmax policy over K actions given context ``z``."""

    def __init__(
        self,
        context_dim: int,
        n_actions: int = 3,
        hidden_units: int = 100,
        hidden_activation: str = "tanh",
        optimizer: str = "adam",
        learning_rate: float = 1e-2,
        seed: RngLike = 0,
    ) -> None:
        if context_dim <= 0:
            raise ConfigurationError(f"context_dim must be positive, got {context_dim}")
        if n_actions < 2:
            raise ConfigurationError(f"n_actions must be at least 2, got {n_actions}")
        if hidden_units <= 0:
            raise ConfigurationError(f"hidden_units must be positive, got {hidden_units}")
        self.context_dim = int(context_dim)
        self.n_actions = int(n_actions)
        self.hidden_units = int(hidden_units)
        self._rng = ensure_rng(seed)

        self.model = Sequential(
            [
                Dense(self.hidden_units, activation=hidden_activation, name="policy_hidden"),
                Dense(self.n_actions, activation="softmax", name="policy_output"),
            ],
            name="policy_network",
            seed=self._rng,
        )
        self.model.build(self.context_dim)
        self.optimizer: Optimizer = get_optimizer(optimizer, learning_rate=learning_rate)

    # -- inference -----------------------------------------------------------------

    def _check_context(self, context: np.ndarray) -> np.ndarray:
        context = np.asarray(context, dtype=float)
        if context.ndim == 1:
            context = context[None, :]
        if context.ndim != 2 or context.shape[1] != self.context_dim:
            raise ShapeError(
                f"context must have shape (n, {self.context_dim}), got {context.shape}"
            )
        return context

    def action_probabilities(self, context: np.ndarray) -> np.ndarray:
        """``pi(a | z)`` for each row of ``context`` (shape ``(n, n_actions)``)."""
        context = self._check_context(context)
        return self.model.predict(context)

    def select_action(self, context: np.ndarray, greedy: bool = False) -> Tuple[int, np.ndarray]:
        """Select an action for a single context vector.

        Returns ``(action, probabilities)``.  ``greedy=True`` picks the
        arg-max action (used at evaluation time); otherwise the action is
        sampled from the categorical distribution (used during training).
        """
        probabilities = self.action_probabilities(context)[0]
        if greedy:
            action = int(np.argmax(probabilities))
        else:
            action = int(self._rng.choice(self.n_actions, p=probabilities))
        return action, probabilities

    def select_actions(self, contexts: np.ndarray, greedy: bool = True) -> np.ndarray:
        """Vectorised action selection over a batch of contexts."""
        probabilities = self.action_probabilities(contexts)
        if greedy:
            return np.argmax(probabilities, axis=1)
        cumulative = np.cumsum(probabilities, axis=1)
        draws = self._rng.random((probabilities.shape[0], 1))
        # Floating-point error can leave the last cumulative slightly below
        # 1.0, in which case the inverse-transform count reaches n_actions.
        return np.minimum((draws > cumulative).sum(axis=1), self.n_actions - 1)

    # -- learning --------------------------------------------------------------------

    def policy_gradient_step(
        self,
        context: np.ndarray,
        action: int,
        advantage: float,
        entropy_weight: float = 0.0,
    ) -> float:
        """One REINFORCE update for a single (context, action, advantage) triple.

        Minimises ``-advantage * log pi(a|z) - entropy_weight * H(pi(.|z))``.
        Returns the log-probability of the chosen action (useful for logging).
        """
        context = self._check_context(context)
        if not 0 <= action < self.n_actions:
            raise ConfigurationError(
                f"action must lie in [0, {self.n_actions}), got {action}"
            )
        self.model.zero_grads()
        probabilities = self.model.forward(context, training=True)
        probability = float(np.clip(probabilities[0, action], 1e-12, 1.0))

        # d/dp of (-advantage * log p_a): only the chosen action's probability
        # appears in the objective, the softmax backward spreads it correctly.
        grad = np.zeros_like(probabilities)
        grad[0, action] = -float(advantage) / probability
        if entropy_weight > 0.0:
            # Entropy H = -sum p log p; dH/dp_i = -(log p_i + 1).  We *add*
            # entropy to the objective, i.e. subtract its gradient from the loss.
            safe = np.clip(probabilities, 1e-12, 1.0)
            grad += entropy_weight * (np.log(safe) + 1.0)
        self.model.backward(grad)
        self.optimizer.step(self.model.parameters_and_gradients())
        return float(np.log(probability))

    def policy_gradient_step_batch(
        self,
        contexts: np.ndarray,
        actions: np.ndarray,
        advantages: np.ndarray,
        entropy_weight: float = 0.0,
    ) -> np.ndarray:
        """One REINFORCE update for a whole minibatch of (context, action, advantage).

        The minibatch objective is the *sum* of the per-sample objectives
        ``-advantage_i * log pi(a_i|z_i) - entropy_weight * H(pi(.|z_i))``, so
        the update runs one forward pass, one backward pass and one optimizer
        step regardless of the batch size; with a batch of one it reproduces
        :meth:`policy_gradient_step` exactly.  Returns the log-probability of
        each chosen action (shape ``(n,)``).
        """
        contexts = self._check_context(contexts)
        actions = np.asarray(actions, dtype=int)
        advantages = np.asarray(advantages, dtype=float)
        n = contexts.shape[0]
        if actions.shape != (n,):
            raise ShapeError(f"actions must have shape ({n},), got {actions.shape}")
        if advantages.shape != (n,):
            raise ShapeError(f"advantages must have shape ({n},), got {advantages.shape}")
        if n and (actions.min() < 0 or actions.max() >= self.n_actions):
            raise ConfigurationError(
                f"actions must lie in [0, {self.n_actions}), got range "
                f"[{actions.min()}, {actions.max()}]"
            )
        self.model.zero_grads()
        probabilities = self.model.forward(contexts, training=True)
        rows = np.arange(n)
        chosen = np.clip(probabilities[rows, actions], 1e-12, 1.0)

        grad = np.zeros_like(probabilities)
        grad[rows, actions] = -advantages / chosen
        if entropy_weight > 0.0:
            safe = np.clip(probabilities, 1e-12, 1.0)
            grad += entropy_weight * (np.log(safe) + 1.0)
        self.model.backward(grad)
        self.optimizer.step(self.model.parameters_and_gradients())
        return np.log(chosen)

    def log_probability(self, context: np.ndarray, action: int) -> float:
        """``log pi(a | z)`` for one context/action pair."""
        probabilities = self.action_probabilities(context)[0]
        return float(np.log(np.clip(probabilities[action], 1e-12, 1.0)))

    # -- introspection ------------------------------------------------------------------

    def parameter_count(self) -> int:
        """Number of trainable parameters of the policy network."""
        return self.model.parameter_count()

    def get_weights(self) -> dict:
        """Policy-network weights (delegates to the underlying Sequential model)."""
        return self.model.get_weights()

    def set_weights(self, weights: dict) -> None:
        """Load policy-network weights."""
        self.model.set_weights(weights)

    def get_config(self) -> dict:
        """JSON-serialisable description of the policy network."""
        return {
            "type": "PolicyNetwork",
            "context_dim": self.context_dim,
            "n_actions": self.n_actions,
            "hidden_units": self.hidden_units,
        }
