"""Non-learning and classical bandit baselines for ablation studies.

The paper compares its policy-network scheme against fixed-layer and
successive-offloading schemes; these additional selectors provide classical
bandit baselines (epsilon-greedy, UCB1, uniform random) that the ablation
benchmarks use to quantify the value of *contextual* selection: none of them
look at the context, so any advantage of the policy network over them is
attributable to exploiting per-window contextual information.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_probability


class ActionSelector:
    """Base class: select an action per step and learn from scalar rewards."""

    def __init__(self, n_actions: int, rng: RngLike = 0) -> None:
        if n_actions < 2:
            raise ConfigurationError(f"n_actions must be at least 2, got {n_actions}")
        self.n_actions = int(n_actions)
        self._rng = ensure_rng(rng)
        self.counts = np.zeros(self.n_actions, dtype=int)
        self.value_estimates = np.zeros(self.n_actions, dtype=float)
        self.total_steps = 0

    def select_action(self, context: Optional[np.ndarray] = None) -> int:
        """Choose an action (context is accepted for API parity but ignored)."""
        raise NotImplementedError

    def update(self, action: int, reward: float) -> None:
        """Incremental sample-average update of the chosen action's value estimate."""
        if not 0 <= action < self.n_actions:
            raise ConfigurationError(f"action must lie in [0, {self.n_actions}), got {action}")
        self.counts[action] += 1
        self.total_steps += 1
        step_size = 1.0 / self.counts[action]
        self.value_estimates[action] += step_size * (float(reward) - self.value_estimates[action])

    def run(self, action_rewards: np.ndarray) -> np.ndarray:
        """Play one pass over a reward table; returns the chosen action per row."""
        action_rewards = np.asarray(action_rewards, dtype=float)
        actions = np.zeros(action_rewards.shape[0], dtype=int)
        for index in range(action_rewards.shape[0]):
            action = self.select_action()
            self.update(action, action_rewards[index, action])
            actions[index] = action
        return actions


class RandomSelector(ActionSelector):
    """Uniformly random action selection (a lower bound for any sensible scheme)."""

    def select_action(self, context: Optional[np.ndarray] = None) -> int:
        del context
        return int(self._rng.integers(0, self.n_actions))


class EpsilonGreedySelector(ActionSelector):
    """Epsilon-greedy over running mean rewards (context-free)."""

    def __init__(self, n_actions: int, epsilon: float = 0.1, rng: RngLike = 0) -> None:
        super().__init__(n_actions, rng)
        self.epsilon = check_probability(epsilon, "epsilon")

    def select_action(self, context: Optional[np.ndarray] = None) -> int:
        del context
        if self._rng.random() < self.epsilon or self.total_steps == 0:
            return int(self._rng.integers(0, self.n_actions))
        return int(np.argmax(self.value_estimates))


class UCBSelector(ActionSelector):
    """UCB1: optimism in the face of uncertainty over running mean rewards."""

    def __init__(self, n_actions: int, exploration: float = 2.0, rng: RngLike = 0) -> None:
        super().__init__(n_actions, rng)
        if exploration < 0:
            raise ConfigurationError(f"exploration must be non-negative, got {exploration}")
        self.exploration = float(exploration)

    def select_action(self, context: Optional[np.ndarray] = None) -> int:
        del context
        # Play every arm once before applying the UCB rule.
        unplayed = np.flatnonzero(self.counts == 0)
        if unplayed.size:
            return int(unplayed[0])
        bonuses = np.sqrt(
            self.exploration * np.log(max(self.total_steps, 1)) / self.counts
        )
        return int(np.argmax(self.value_estimates + bonuses))
