"""Shared utilities: RNG handling, validation, timing and serialization helpers."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_array,
    check_in,
)
from repro.utils.timer import WallClockTimer, SimulatedClock

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_array",
    "check_in",
    "WallClockTimer",
    "SimulatedClock",
]
