"""Random-number-generator helpers.

Every stochastic component of the library accepts either an integer seed, a
``numpy.random.Generator`` instance, or ``None``.  :func:`ensure_rng`
normalises these into a :class:`numpy.random.Generator` so that experiments
are reproducible when a seed is given and still convenient when it is not.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the given seed-like value.

    Parameters
    ----------
    seed:
        ``None`` for a non-deterministic generator, an ``int`` seed, or an
        existing ``Generator`` (returned unchanged).
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed)!r}"
    )


def spawn_rngs(seed: RngLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from a parent seed.

    Child generators are statistically independent streams; using them lets a
    pipeline hand distinct, reproducible randomness to each of its stages.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(seed)
    return [np.random.default_rng(s) for s in parent.bit_generator.seed_seq.spawn(count)] \
        if hasattr(parent.bit_generator, "seed_seq") and parent.bit_generator.seed_seq is not None \
        else [np.random.default_rng(parent.integers(0, 2**63 - 1)) for _ in range(count)]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a fresh integer seed from ``rng`` suitable for seeding children."""
    return int(rng.integers(0, 2**63 - 1))


def shuffled_indices(n: int, rng: RngLike = None) -> np.ndarray:
    """Return a random permutation of ``range(n)`` as an int array."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    generator = ensure_rng(rng)
    return generator.permutation(n)


def bootstrap_indices(n: int, size: Optional[int] = None, rng: RngLike = None) -> np.ndarray:
    """Sample ``size`` indices uniformly with replacement from ``range(n)``."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    generator = ensure_rng(rng)
    return generator.integers(0, n, size=size if size is not None else n)


def chunked(iterable: Iterable, chunk_size: int):
    """Yield lists of at most ``chunk_size`` consecutive items from ``iterable``."""
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    chunk: list = []
    for item in iterable:
        chunk.append(item)
        if len(chunk) == chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk
