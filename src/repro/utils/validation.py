"""Lightweight argument-validation helpers used across the package."""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError


def check_positive(value: float, name: str) -> float:
    """Raise :class:`ConfigurationError` unless ``value`` is strictly positive."""
    if not np.isfinite(value) or value <= 0:
        raise ConfigurationError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Raise :class:`ConfigurationError` unless ``value`` is >= 0 and finite."""
    if not np.isfinite(value) or value < 0:
        raise ConfigurationError(f"{name} must be a non-negative finite number, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Raise :class:`ConfigurationError` unless ``value`` lies in [0, 1]."""
    if not np.isfinite(value) or value < 0.0 or value > 1.0:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)


def check_in(value: Any, allowed: Iterable[Any], name: str) -> Any:
    """Raise :class:`ConfigurationError` unless ``value`` is one of ``allowed``."""
    allowed = list(allowed)
    if value not in allowed:
        raise ConfigurationError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value


def checked_dataclass_kwargs(cls, payload, where: str) -> dict:
    """``payload`` as kwargs for dataclass ``cls``, rejecting unknown keys.

    Shared by the ``from_dict`` constructors of the experiment- and
    fleet-spec trees (both deserialise frozen dataclasses from JSON payloads
    and must fail loudly on misspelled keys).
    """
    if not isinstance(payload, Mapping):
        raise ConfigurationError(f"{where} must be a mapping, got {type(payload).__name__}")
    allowed = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise ConfigurationError(
            f"unknown key(s) {unknown} in {where}; valid keys: {sorted(allowed)}"
        )
    return dict(payload)


def check_array(
    array: Any,
    name: str,
    ndim: Optional[int] = None,
    shape: Optional[Sequence[Optional[int]]] = None,
    allow_empty: bool = True,
    dtype: Any = float,
) -> np.ndarray:
    """Convert ``array`` to an ndarray and validate its dimensionality/shape.

    Parameters
    ----------
    array:
        Array-like input.
    name:
        Argument name used in error messages.
    ndim:
        Required number of dimensions, or ``None`` to skip the check.
    shape:
        Required shape; entries that are ``None`` match any size.
    allow_empty:
        Whether a zero-size array is acceptable.
    dtype:
        dtype to convert to (default ``float``); pass ``None`` to keep as-is.
    """
    arr = np.asarray(array, dtype=dtype) if dtype is not None else np.asarray(array)
    if ndim is not None and arr.ndim != ndim:
        raise ShapeError(f"{name} must have ndim={ndim}, got ndim={arr.ndim} (shape {arr.shape})")
    if shape is not None:
        if arr.ndim != len(shape):
            raise ShapeError(
                f"{name} must have shape {tuple(shape)}, got {arr.shape}"
            )
        for axis, expected in enumerate(shape):
            if expected is not None and arr.shape[axis] != expected:
                raise ShapeError(
                    f"{name} must have shape {tuple(shape)}, got {arr.shape}"
                )
    if not allow_empty and arr.size == 0:
        raise ShapeError(f"{name} must not be empty")
    return arr


def check_same_length(name_a: str, a: Sequence, name_b: str, b: Sequence) -> None:
    """Raise :class:`ShapeError` unless the two sequences have the same length."""
    if len(a) != len(b):
        raise ShapeError(
            f"{name_a} and {name_b} must have the same length, got {len(a)} and {len(b)}"
        )


def check_binary_labels(labels: Any, name: str = "labels") -> np.ndarray:
    """Validate that ``labels`` contains only 0/1 values and return an int array."""
    arr = np.asarray(labels)
    if arr.size == 0:
        return arr.astype(int)
    unique = np.unique(arr)
    if not np.all(np.isin(unique, (0, 1))):
        raise ShapeError(f"{name} must be binary (0/1), got values {unique!r}")
    return arr.astype(int)
