"""Logging helpers.

The library logs through the standard :mod:`logging` module under the
``"repro"`` namespace so applications embedding it keep full control over
handlers and verbosity.  :func:`get_logger` is a thin convenience wrapper
that returns an appropriately named child logger.

:func:`configure_basic_logging` attaches a stream handler in one of two
formats: the classic one-line text format, or (``json_lines=True``) one JSON
object per line stamped with the active telemetry trace/span ids (see
:func:`repro.obs.trace.current_ids`), so log lines from a ``--telemetry`` run
can be joined against the run's ``trace.jsonl`` by trace id.
"""

from __future__ import annotations

import json
import logging
from typing import Optional

_ROOT_NAME = "repro"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return the package logger or one of its children.

    Parameters
    ----------
    name:
        Optional child name (e.g. ``"hec.simulation"``).  ``None`` returns the
        package root logger.
    """
    if name is None:
        return logging.getLogger(_ROOT_NAME)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


class JsonLineFormatter(logging.Formatter):
    """One compact JSON object per record, trace-correlated when possible."""

    def format(self, record: logging.LogRecord) -> str:
        # Imported here, not at module top: obs.trace is part of the telemetry
        # layer and utils.logging must stay importable below it.
        from repro.obs.trace import current_ids

        payload = {
            "ts": self.formatTime(record),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        trace_id, span_id = current_ids()
        if trace_id is not None:
            payload["trace_id"] = trace_id
            payload["span_id"] = span_id
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, separators=(",", ":"), sort_keys=True)


def configure_basic_logging(level: int = logging.INFO, json_lines: bool = False) -> None:
    """Attach a stream handler to the package logger (idempotent).

    Intended for examples and benchmarks; applications should configure
    logging themselves.  ``json_lines=True`` switches the handler owned by
    this function to :class:`JsonLineFormatter`; repeated calls re-format the
    same handler instead of stacking new ones.
    """
    logger = get_logger()
    handler = None
    for existing in logger.handlers:
        if getattr(existing, "_repro_basic", False):
            handler = existing
            break
    if handler is None and logger.handlers:
        # A handler someone else attached: leave it alone, stay idempotent.
        logger.setLevel(level)
        return
    if handler is None:
        handler = logging.StreamHandler()
        handler._repro_basic = True
        logger.addHandler(handler)
    if json_lines:
        handler.setFormatter(JsonLineFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
    logger.setLevel(level)
