"""Logging helpers.

The library logs through the standard :mod:`logging` module under the
``"repro"`` namespace so applications embedding it keep full control over
handlers and verbosity.  :func:`get_logger` is a thin convenience wrapper
that returns an appropriately named child logger.
"""

from __future__ import annotations

import logging
from typing import Optional

_ROOT_NAME = "repro"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return the package logger or one of its children.

    Parameters
    ----------
    name:
        Optional child name (e.g. ``"hec.simulation"``).  ``None`` returns the
        package root logger.
    """
    if name is None:
        return logging.getLogger(_ROOT_NAME)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def configure_basic_logging(level: int = logging.INFO) -> None:
    """Attach a simple stream handler to the package logger (idempotent).

    Intended for examples and benchmarks; applications should configure
    logging themselves.
    """
    logger = get_logger()
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
    logger.setLevel(level)
