"""Timing utilities: a wall-clock timer and a simulated clock.

The HEC substrate accounts for delay analytically (device execution time plus
network latency), but several components also need real wall-clock
measurements (e.g. the benchmarks measuring inference time of the NumPy
models).  :class:`WallClockTimer` covers the latter; :class:`SimulatedClock`
provides a deterministic notion of time for the event-driven HEC simulator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.exceptions import ConfigurationError


class WallClockTimer:
    """Context-manager timer measuring elapsed wall-clock time in milliseconds."""

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed_ms: float = 0.0

    def __enter__(self) -> "WallClockTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is not None:
            self.elapsed_ms = (time.perf_counter() - self._start) * 1000.0
            self._start = None

    def start(self) -> None:
        """Start (or restart) the timer."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the timer and return the elapsed time in milliseconds."""
        if self._start is None:
            raise ConfigurationError("timer was stopped without being started")
        self.elapsed_ms = (time.perf_counter() - self._start) * 1000.0
        self._start = None
        return self.elapsed_ms


@dataclass
class SimulatedClock:
    """A simple monotonically advancing simulated clock (milliseconds).

    The clock never observes wall-clock time; it only advances when told to.
    This keeps the HEC simulator fully deterministic.
    """

    now_ms: float = 0.0
    _history: List[float] = field(default_factory=list)

    def advance(self, delta_ms: float) -> float:
        """Advance the clock by ``delta_ms`` (must be non-negative) and return the new time."""
        if delta_ms < 0:
            raise ConfigurationError(f"cannot advance clock by a negative amount ({delta_ms})")
        self.now_ms += float(delta_ms)
        self._history.append(self.now_ms)
        return self.now_ms

    def advance_to(self, timestamp_ms: float) -> float:
        """Advance the clock to ``timestamp_ms`` if it is in the future; otherwise no-op."""
        if timestamp_ms > self.now_ms:
            self.now_ms = float(timestamp_ms)
            self._history.append(self.now_ms)
        return self.now_ms

    def reset(self) -> None:
        """Reset the clock to time zero and clear its history."""
        self.now_ms = 0.0
        self._history.clear()

    @property
    def history(self) -> List[float]:
        """Timestamps recorded at every advance, oldest first."""
        return list(self._history)
