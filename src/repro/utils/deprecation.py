"""Once-per-process deprecation warnings.

Legacy entry points (the ``repro.pipelines`` shims, the CLI's
``univariate``/``multivariate``/``both`` aliases) must announce their
deprecation without spamming loops or breaking batch jobs that call a shim
hundreds of times.  :func:`warn_deprecated_once` therefore emits each keyed
:class:`DeprecationWarning` exactly once per process, *idempotently*: the key
is marked emitted before the warning fires, so even under
``-W error::DeprecationWarning`` (the CI tier) a caught first warning is not
followed by a second one.
"""

from __future__ import annotations

import warnings
from typing import Set

#: Keys whose deprecation warning has already been emitted in this process.
_EMITTED: Set[str] = set()


def warn_deprecated_once(key: str, message: str, stacklevel: int = 3) -> bool:
    """Emit ``message`` as a :class:`DeprecationWarning` once per ``key``.

    Returns ``True`` when the warning fired, ``False`` when ``key`` had
    already been announced.  The key is recorded *before* warning so the
    behaviour stays once-per-process even when warnings are raised as errors.
    """
    if key in _EMITTED:
        return False
    _EMITTED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)
    return True


def deprecation_emitted(key: str) -> bool:
    """Whether the warning for ``key`` has fired in this process."""
    return key in _EMITTED


def reset_deprecation_registry() -> None:
    """Forget every emitted key (test isolation helper)."""
    _EMITTED.clear()
