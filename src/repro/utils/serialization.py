"""Serialization helpers for experiment artefacts and model weights.

Models are stored as a pair of files: a JSON document describing the
architecture/configuration and an ``.npz`` archive holding the weight arrays.
Keeping the two separate makes the stored artefacts human-inspectable and
avoids pickling arbitrary objects.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Union

import numpy as np

from repro.exceptions import SerializationError

PathLike = Union[str, Path]


def to_jsonable(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays and tuples into plain JSON types.

    Arrays and tuples become lists, numpy scalars become Python scalars and
    mapping keys are stringified.  Used by :func:`save_json` and by the
    experiment-spec serialisation in :mod:`repro.experiments.spec`.
    """
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, Mapping):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    return value


def save_json(path: PathLike, payload: Mapping[str, Any]) -> Path:
    """Write ``payload`` as pretty-printed JSON and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(to_jsonable(dict(payload)), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_json(path: PathLike) -> Dict[str, Any]:
    """Load a JSON document written by :func:`save_json`."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no such file: {path}")
    with path.open("r", encoding="utf-8") as handle:
        return json.load(handle)


def save_arrays(path: PathLike, arrays: Mapping[str, np.ndarray]) -> Path:
    """Save a mapping of named arrays to a compressed ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **{str(k): np.asarray(v) for k, v in arrays.items()})
    # np.savez appends .npz if missing; normalise the returned path.
    if not str(path).endswith(".npz"):
        path = Path(str(path) + ".npz")
    return path


def load_arrays(path: PathLike) -> Dict[str, np.ndarray]:
    """Load an ``.npz`` archive written by :func:`save_arrays` into a dict."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no such file: {path}")
    with np.load(path, allow_pickle=False) as archive:
        return {key: archive[key].copy() for key in archive.files}
