"""Scenario qualification matrix: hostile workloads with pinned contracts.

This module qualifies the reproduction like an instrument: a *pack* of
registered hostile/heterogeneous scenarios runs end to end, and every
scenario carries one or more **pinned pass/fail contracts** — a named bound
on a metric of the resulting :class:`~repro.fleet.report.FleetReport` or
:class:`~repro.serving.report.ServingReport` that encodes the failure mode
the scenario exists to exercise (flash-crowd overload, tier partition,
correlated drift, sensor corruption, adversarial camouflage, heterogeneous
device classes).  The output is a machine-readable
:class:`QualificationReport` whose JSON layout is itself pinned by
:data:`QUALIFICATION_REPORT_SCHEMA`.

Alerting is wired in, not bolted on: every qualification run attaches the
stock :func:`~repro.obs.alerts.default_fleet_rules` /
:func:`~repro.obs.alerts.default_serving_rules` watch, and every contract is
mirrored as a threshold alert over a per-contract margin gauge — a contract
breach therefore also emits an ``alert.fire`` trace event, and the two
verdicts agree by construction (pinned by the qualification tests).

The CLI front end is ``repro qualify``::

    python -m repro.cli qualify --pack hostile --output-dir reports/
    python -m repro.cli qualify --pack hostile --scenario qualify-flash-crowd
    python -m repro.cli qualify --pack control   # deliberately fails

Exit codes follow the instrument convention: 0 = every contract passed,
1 = at least one contract failed, 2 = configuration error (unknown pack or
scenario, invalid ``--set qualify.*`` override, malformed contract).
"""

from __future__ import annotations

import copy
import dataclasses
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.experiments.registry import get_scenario, register_scenario
from repro.experiments.scenarios import univariate_power
from repro.experiments.spec import ExperimentSpec, _coerce_override
from repro.fleet.faults import FaultEvent, FaultSpec
from repro.fleet.report import FleetReport
from repro.fleet.spec import DeviceClassSpec, FleetSpec, LoadCurveSpec, MutatorSpec
from repro.serving.report import ServingReport
from repro.serving.spec import ServingSpec
from repro.utils.serialization import load_json, save_json, to_jsonable
from repro.utils.validation import checked_dataclass_kwargs

PathLike = Union[str, Path]

#: Comparison operators a contract may pin.
CONTRACT_OPS = (">=", "<=", "==")

#: Case kinds: which optional runner stage the scenario exercises.
CASE_KINDS = ("fleet", "serve")

#: Floor guard for ratio metrics (a zero trough must not divide away).
_EPS = 1e-9


# -- contracts --------------------------------------------------------------------


@dataclass(frozen=True)
class ContractSpec:
    """One pinned pass/fail bound on a report metric.

    ``metric`` names either a derived qualification metric (see
    :func:`resolve_metric`) or a dotted path into the report's
    :meth:`to_dict` payload (e.g. ``"latency.p99_ms"``, ``"delay.p99_ms"``).
    """

    name: str
    metric: str
    op: str
    bound: float
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a contract needs a non-empty name")
        if not self.metric:
            raise ConfigurationError(
                f"contract {self.name!r} needs a non-empty metric"
            )
        if self.op not in CONTRACT_OPS:
            raise ConfigurationError(
                f"contract {self.name!r}: op must be one of {CONTRACT_OPS}, "
                f"got {self.op!r}"
            )
        try:
            object.__setattr__(self, "bound", float(self.bound))
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"contract {self.name!r}: bound must be a number, "
                f"got {self.bound!r}"
            ) from exc

    def margin(self, value: float) -> float:
        """Signed distance from the bound: >= 0 exactly when the contract holds."""
        if self.op == ">=":
            return float(value - self.bound)
        if self.op == "<=":
            return float(self.bound - value)
        return -abs(float(value) - self.bound)

    def holds(self, value: float) -> bool:
        """Whether ``value`` satisfies the pinned bound."""
        return self.margin(value) >= 0.0

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ContractSpec":
        return cls(**checked_dataclass_kwargs(cls, payload, "contract"))


@dataclass(frozen=True)
class QualifyCase:
    """One scenario of a pack: the failure mode it exercises and its contracts."""

    scenario: str
    failure_mode: str
    contracts: Tuple[ContractSpec, ...]
    kind: str = "fleet"

    def __post_init__(self) -> None:
        object.__setattr__(self, "contracts", tuple(self.contracts))
        if self.kind not in CASE_KINDS:
            raise ConfigurationError(
                f"case {self.scenario!r}: kind must be one of {CASE_KINDS}, "
                f"got {self.kind!r}"
            )
        if not self.contracts:
            raise ConfigurationError(
                f"case {self.scenario!r} needs at least one contract"
            )
        names = [c.name for c in self.contracts]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"case {self.scenario!r} has duplicate contract names: {sorted(names)}"
            )


# -- metric resolution ------------------------------------------------------------


def _derived_fleet(report: FleetReport) -> Dict[str, float]:
    """Qualification metrics derived from a fleet report."""
    blocks = [w.f1 for w in report.windowed if w.n_windows > 0]
    trough = min(blocks) if blocks else 0.0
    final = blocks[-1] if blocks else 0.0
    return {
        "anomaly_fraction": (
            float(report.n_anomalous / report.n_windows) if report.n_windows else 0.0
        ),
        "redirected_total": float(sum(t.redirected for t in report.tiers)),
        "min_window_f1": float(trough),
        "final_window_f1": float(final),
        #: Last metrics window's F1 over the trough window's: > 1 means the
        #: system climbed back out of its worst stretch.
        "recovery_ratio": float(final / max(trough, _EPS)) if blocks else 0.0,
        "online_fraction": (
            float(
                report.online_device_ticks
                / (report.online_device_ticks + report.offline_device_ticks)
            )
            if (report.online_device_ticks + report.offline_device_ticks)
            else 0.0
        ),
    }


def _derived_serving(report: ServingReport) -> Dict[str, float]:
    """Qualification metrics derived from a serving report."""
    return {
        "slo_met": 1.0 if report.slo_met else 0.0,
        "redirected_total": float(sum(t.redirected for t in report.tiers)),
        "served_fraction": (
            float(report.n_served / report.n_submitted) if report.n_submitted else 0.0
        ),
    }


def resolve_metric(report, metric: str) -> float:
    """The numeric value ``metric`` names on ``report``.

    Derived qualification metrics win; anything else is a dotted path into
    the report's :meth:`to_dict` payload.  Non-numeric targets and unknown
    names raise :class:`ConfigurationError` (a typo in a contract must fail
    the run loudly, not evaluate as eternally healthy).
    """
    derived = (
        _derived_fleet(report)
        if isinstance(report, FleetReport)
        else _derived_serving(report)
    )
    if metric in derived:
        return derived[metric]
    node: Any = report.to_dict()
    for segment in metric.split("."):
        if isinstance(node, Mapping) and segment in node:
            node = node[segment]
        elif isinstance(node, (list, tuple)):
            try:
                node = node[int(segment)]
            except (ValueError, IndexError) as exc:
                raise ConfigurationError(
                    f"contract metric {metric!r}: {segment!r} does not index "
                    f"into the report"
                ) from exc
        else:
            raise ConfigurationError(
                f"contract metric {metric!r} not found on "
                f"{type(report).__name__}; derived metrics: {sorted(derived)}"
            )
    if isinstance(node, bool):
        return 1.0 if node else 0.0
    if not isinstance(node, (int, float)):
        raise ConfigurationError(
            f"contract metric {metric!r} resolves to a "
            f"{type(node).__name__}, not a number"
        )
    return float(node)


# -- results ----------------------------------------------------------------------


@dataclass(frozen=True)
class ContractResult:
    """One evaluated contract: the pinned bound, the observed value, the verdict."""

    name: str
    metric: str
    op: str
    bound: float
    value: float
    margin: float
    passed: bool
    description: str = ""

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ContractResult":
        return cls(**checked_dataclass_kwargs(cls, payload, "contract result"))


@dataclass(frozen=True)
class CaseResult:
    """One qualified scenario: its contracts' verdicts and the alerts fired."""

    scenario: str
    failure_mode: str
    kind: str
    passed: bool
    contracts: Tuple[ContractResult, ...]
    #: Names of ``alert.fire`` events this case emitted — the stock watch
    #: rules plus one ``contract:<scenario>:<name>`` alert per breach.
    alerts: Tuple[str, ...] = ()

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CaseResult":
        kwargs = checked_dataclass_kwargs(cls, payload, "case result")
        kwargs["contracts"] = tuple(
            c if isinstance(c, ContractResult) else ContractResult.from_dict(c)
            for c in kwargs.get("contracts", ())
        )
        kwargs["alerts"] = tuple(kwargs.get("alerts", ()))
        return cls(**kwargs)


@dataclass(frozen=True)
class QualificationReport:
    """The machine-readable outcome of one pack run."""

    pack: str
    seed: int
    passed: bool
    n_contracts: int
    n_failed: int
    cases: Tuple[CaseResult, ...]
    schema_version: int = 1

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready nested dictionary (validates against the schema)."""
        return to_jsonable(dataclasses.asdict(self))

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QualificationReport":
        kwargs = checked_dataclass_kwargs(cls, payload, "qualification report")
        kwargs["cases"] = tuple(
            c if isinstance(c, CaseResult) else CaseResult.from_dict(c)
            for c in kwargs.get("cases", ())
        )
        return cls(**kwargs)

    def to_json(self, path: PathLike) -> Path:
        """Write the report as pretty-printed JSON; returns the path."""
        return save_json(path, self.to_dict())

    @classmethod
    def from_json(cls, path: PathLike) -> "QualificationReport":
        """Load a report written by :meth:`to_json`."""
        return cls.from_dict(load_json(path))

    def failed_contracts(self) -> List[str]:
        """``"scenario:contract"`` labels of every failed contract."""
        return [
            f"{case.scenario}:{contract.name}"
            for case in self.cases
            for contract in case.contracts
            if not contract.passed
        ]

    def summary(self) -> str:
        """Plain-text qualification matrix: one line per contract."""
        verdict = "PASS" if self.passed else "FAIL"
        lines = [
            f"Qualification report for pack {self.pack!r} (seed {self.seed}): "
            f"{verdict} ({self.n_contracts - self.n_failed}/{self.n_contracts} "
            "contracts hold)",
        ]
        for case in self.cases:
            status = "pass" if case.passed else "FAIL"
            lines.append(f"  {case.scenario} [{case.failure_mode}] ({case.kind}): {status}")
            for contract in case.contracts:
                mark = "ok " if contract.passed else "BAD"
                lines.append(
                    f"    {mark} {contract.name}: {contract.metric} {contract.op} "
                    f"{contract.bound:g} (observed {contract.value:g}, "
                    f"margin {contract.margin:+.4g})"
                )
            if case.alerts:
                lines.append(f"    alerts fired: {', '.join(case.alerts)}")
        return "\n".join(lines)


#: Hand-rolled JSON schema for the report payload (the container has no
#: ``jsonschema`` dependency; :func:`validate_report` walks this directly).
QUALIFICATION_REPORT_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": [
        "schema_version", "pack", "seed", "passed", "n_contracts",
        "n_failed", "cases",
    ],
    "properties": {
        "schema_version": {"type": "integer"},
        "pack": {"type": "string"},
        "seed": {"type": "integer"},
        "passed": {"type": "boolean"},
        "n_contracts": {"type": "integer"},
        "n_failed": {"type": "integer"},
        "cases": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "scenario", "failure_mode", "kind", "passed",
                    "contracts", "alerts",
                ],
                "properties": {
                    "scenario": {"type": "string"},
                    "failure_mode": {"type": "string"},
                    "kind": {"type": "string"},
                    "passed": {"type": "boolean"},
                    "alerts": {"type": "array", "items": {"type": "string"}},
                    "contracts": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": [
                                "name", "metric", "op", "bound", "value",
                                "margin", "passed", "description",
                            ],
                            "properties": {
                                "name": {"type": "string"},
                                "metric": {"type": "string"},
                                "op": {"type": "string"},
                                "bound": {"type": "number"},
                                "value": {"type": "number"},
                                "margin": {"type": "number"},
                                "passed": {"type": "boolean"},
                                "description": {"type": "string"},
                            },
                        },
                    },
                },
            },
        },
    },
}

_SCHEMA_TYPES = {
    "object": lambda v: isinstance(v, Mapping),
    "array": lambda v: isinstance(v, (list, tuple)),
    "string": lambda v: isinstance(v, str),
    "boolean": lambda v: isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
}


def validate_report(
    payload: Any,
    schema: Mapping[str, Any] = QUALIFICATION_REPORT_SCHEMA,
    path: str = "report",
) -> None:
    """Validate ``payload`` against the (subset) JSON schema; raises on mismatch."""
    expected = schema.get("type")
    if expected is not None and not _SCHEMA_TYPES[expected](payload):
        raise ConfigurationError(
            f"{path}: expected {expected}, got {type(payload).__name__}"
        )
    if expected == "object":
        for key in schema.get("required", ()):
            if key not in payload:
                raise ConfigurationError(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        for key, sub in properties.items():
            if key in payload:
                validate_report(payload[key], sub, f"{path}.{key}")
    elif expected == "array":
        items = schema.get("items")
        if items is not None:
            for index, item in enumerate(payload):
                validate_report(item, items, f"{path}.{index}")


# -- the qualify spec and its --set overrides -------------------------------------


@dataclass(frozen=True)
class QualifySpec:
    """One qualification run: which pack, at what seed and scale."""

    pack: str = "hostile"
    seed: int = 0
    #: Run only this scenario of the pack (``None`` = the whole pack).
    scenario: Optional[str] = None
    #: Multipliers shrinking each case's workload (CI smoke); tick-indexed
    #: structure (flash windows, fault windows) scales along with the ticks.
    ticks_scale: float = 1.0
    devices_scale: float = 1.0
    requests_scale: float = 1.0

    def __post_init__(self) -> None:
        for name in ("ticks_scale", "devices_scale", "requests_scale"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or not value > 0:
                raise ConfigurationError(
                    f"qualify.{name} must be a positive number, got {value!r}"
                )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QualifySpec":
        return cls(**checked_dataclass_kwargs(cls, payload, "qualify"))


def apply_qualify_overrides(
    spec: QualifySpec, overrides: Mapping[str, Any]
) -> QualifySpec:
    """A copy of ``spec`` with ``--set qualify.<field>=value`` overrides applied.

    Keys outside the ``qualify.`` namespace and unknown fields raise
    :class:`ConfigurationError` — the CLI turns those into its uniform
    one-line ``error:`` exit-2 path.
    """
    payload = to_jsonable(dataclasses.asdict(spec))
    for key, raw in overrides.items():
        prefix, _, field_name = str(key).partition(".")
        if prefix != "qualify" or not field_name or "." in field_name:
            raise ConfigurationError(
                f"qualify overrides use --set qualify.<field>=value, got {key!r}"
            )
        if field_name not in payload:
            raise ConfigurationError(
                f"unknown key {key!r}; valid keys: "
                f"{sorted('qualify.' + name for name in payload)}"
            )
        payload[field_name] = _coerce_override(raw, payload[field_name], key)
    return QualifySpec.from_dict(payload)


# -- workload scaling -------------------------------------------------------------


def _scale_tick(tick: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(tick * scale)))


def scaled_case_spec(spec: ExperimentSpec, qualify: QualifySpec) -> ExperimentSpec:
    """``spec`` with the qualify scale multipliers applied.

    Tick-indexed structure — flash-crowd windows and fault-event windows —
    scales with ``ticks_scale`` so a shrunken run still crosses the same
    phases (hostile window opens, bites, closes) as the full-size one.
    """
    fleet = spec.fleet
    if fleet is not None:
        changes: Dict[str, Any] = {}
        if qualify.devices_scale != 1.0:
            changes["n_devices"] = max(
                max(4, fleet.n_shards), int(round(fleet.n_devices * qualify.devices_scale))
            )
        if qualify.ticks_scale != 1.0:
            changes["ticks"] = _scale_tick(fleet.ticks, qualify.ticks_scale, minimum=2)
            if fleet.load_curve is not None:
                curve = fleet.load_curve
                changes["load_curve"] = replace(
                    curve,
                    flash_at_tick=_scale_tick(curve.flash_at_tick, qualify.ticks_scale, 0),
                    flash_ticks=(
                        _scale_tick(curve.flash_ticks, qualify.ticks_scale)
                        if curve.flash_ticks
                        else 0
                    ),
                )
        if changes:
            spec = replace(spec, fleet=replace(fleet, **changes))
    if spec.faults is not None and qualify.ticks_scale != 1.0:
        events = tuple(
            replace(
                event,
                at_tick=_scale_tick(event.at_tick, qualify.ticks_scale, 0),
                until_tick=(
                    None
                    if event.until_tick is None
                    else _scale_tick(event.until_tick, qualify.ticks_scale)
                ),
            )
            for event in spec.faults.events
        )
        spec = replace(spec, faults=replace(spec.faults, events=events))
    if spec.serve is not None and qualify.requests_scale != 1.0:
        spec = replace(
            spec,
            serve=replace(
                spec.serve,
                max_requests=max(
                    spec.serve.max_batch,
                    int(round(spec.serve.max_requests * qualify.requests_scale)),
                ),
            ),
        )
    return spec


# -- the engine -------------------------------------------------------------------


def _training_key(spec: ExperimentSpec) -> str:
    """Cache key over the stages up to ``train_policy`` (workload nodes excluded)."""
    payload = spec.to_dict()
    for key in ("name", "dataset_name", "description", "fleet", "adapt", "faults",
                "serve", "obs"):
        payload.pop(key, None)
    return json.dumps(payload, sort_keys=True)


class QualificationEngine:
    """Run a qualification pack and assemble the :class:`QualificationReport`.

    Cases sharing identical data/detector/topology/deployment/policy specs
    train once; each case then streams or serves against a deep copy of the
    trained state, so hostile workloads (adaptation swaps, link mutations)
    never contaminate their siblings.
    """

    def __init__(self, spec: QualifySpec, telemetry=None, printer=None) -> None:
        from repro.obs.export import Telemetry

        self.spec = spec
        #: Every qualification run is telemetered (alert wiring needs the
        #: event stream); an in-memory session when no directory was asked for.
        self.telemetry = telemetry if telemetry is not None else Telemetry(
            name=f"qualify-{spec.pack}"
        )
        self.printer = printer
        self._trained: Dict[str, Any] = {}

    # -- case execution ----------------------------------------------------------

    def _runner_for(self, spec: ExperimentSpec):
        from repro.experiments.runner import ExperimentRunner

        key = _training_key(spec)
        if key not in self._trained:
            trainer = ExperimentRunner(spec)
            trainer.prepare_data()
            trainer.fit_detectors()
            trainer.deploy()
            trainer.train_policy()
            self._trained[key] = trainer.state
        runner = ExperimentRunner(spec, telemetry=self.telemetry)
        runner.state = copy.deepcopy(self._trained[key])
        return runner

    def _fire_contract_alerts(
        self, case: QualifyCase, results: Tuple[ContractResult, ...]
    ) -> Tuple[str, ...]:
        """Mirror the contract verdicts as alerts; returns the fired names.

        Each contract becomes a threshold rule over its margin gauge
        (breached exactly when the margin is negative), so contract
        evaluation and alerting cannot disagree.
        """
        from repro.obs.alerts import AlertManager, AlertRule
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.rollup import RollupRing

        registry = MetricsRegistry()
        gauge = registry.gauge(
            "qualify_contract_margin",
            "Signed pass margin per qualification contract (negative = breach).",
            labelnames=("scenario", "contract"),
        )
        rules = []
        for result in results:
            cell = gauge.labels(scenario=case.scenario, contract=result.name)
            cell.value = float(result.margin)
            rules.append(
                AlertRule(
                    name=f"contract:{case.scenario}:{result.name}",
                    kind="threshold",
                    metric="qualify_contract_margin",
                    labels=(("scenario", case.scenario), ("contract", result.name)),
                    value="level",
                    op="<",
                    threshold=0.0,
                    over=1,
                    resolve_after=1,
                )
            )
        ring = RollupRing(4)
        ring.push(0.0, registry)
        ring.push(1.0, registry)
        manager = AlertManager(tuple(rules), telemetry=self.telemetry)
        manager.evaluate(ring, key=1.0)
        return tuple(manager.active)

    def run_case(self, case: QualifyCase) -> CaseResult:
        """Train (cached), run and qualify one scenario of the pack."""
        from repro.obs.alerts import default_fleet_rules, default_serving_rules
        from repro.obs.live import RollupWatcher

        spec = scaled_case_spec(
            get_scenario(case.scenario).with_seed(self.spec.seed), self.spec
        )
        runner = self._runner_for(spec)
        # Satellite wiring: the stock health rules watch the run itself, so a
        # wedged fleet or a burning SLO fires during qualification too.
        rules = (
            default_serving_rules(spec.serve)
            if case.kind == "serve"
            else default_fleet_rules()
        )
        self.telemetry.watcher = RollupWatcher(
            self.telemetry, rules=rules, every=1.0, label=case.scenario
        )
        try:
            report = runner.run_serve() if case.kind == "serve" else runner.run_fleet()
        finally:
            run_alerts = tuple(self.telemetry.watcher.alerts.active)
            self.telemetry.watcher = None
        results = []
        for contract in case.contracts:
            value = resolve_metric(report, contract.metric)
            results.append(
                ContractResult(
                    name=contract.name,
                    metric=contract.metric,
                    op=contract.op,
                    bound=contract.bound,
                    value=value,
                    margin=contract.margin(value),
                    passed=contract.holds(value),
                    description=contract.description,
                )
            )
        results = tuple(results)
        contract_alerts = self._fire_contract_alerts(case, results)
        result = CaseResult(
            scenario=case.scenario,
            failure_mode=case.failure_mode,
            kind=case.kind,
            passed=all(r.passed for r in results),
            contracts=results,
            alerts=tuple(sorted(set(run_alerts) | set(contract_alerts))),
        )
        if self.printer is not None:
            status = "pass" if result.passed else "FAIL"
            self.printer(f"qualify {case.scenario}: {status}")
        return result

    def run(self) -> QualificationReport:
        """Run the pack (or the selected scenario) and assemble the report."""
        cases = get_pack(self.spec.pack)
        if self.spec.scenario is not None:
            matched = tuple(c for c in cases if c.scenario == self.spec.scenario)
            if not matched:
                raise ConfigurationError(
                    f"scenario {self.spec.scenario!r} is not in pack "
                    f"{self.spec.pack!r}; cases: {[c.scenario for c in cases]}"
                )
            cases = matched
        case_results = tuple(self.run_case(case) for case in cases)
        n_contracts = sum(len(c.contracts) for c in case_results)
        n_failed = sum(
            1 for c in case_results for contract in c.contracts if not contract.passed
        )
        return QualificationReport(
            pack=self.spec.pack,
            seed=self.spec.seed,
            passed=n_failed == 0,
            n_contracts=n_contracts,
            n_failed=n_failed,
            cases=case_results,
        )


def run_qualification(
    spec: QualifySpec, telemetry=None, printer=None
) -> QualificationReport:
    """One-call front end over :class:`QualificationEngine`."""
    return QualificationEngine(spec, telemetry=telemetry, printer=printer).run()


# -- the qualification scenarios --------------------------------------------------


def _qualify_base(name: str, description: str) -> ExperimentSpec:
    """The shared full-strength training base of every qualification scenario.

    One identical offline stack (data, detectors, topology, policy) across
    the pack means the engine trains once and every case's verdict isolates
    its hostile workload, not training variance.  Training at the default
    ``univariate-power`` scale costs well under a second, so the contracts
    qualify properly-trained detectors, not starved ones.
    """
    return replace(univariate_power(), name=name, description=description)


@register_scenario("qualify-hetero-classes", tags=("qualify", "fleet", "extended"))
def qualify_hetero_classes() -> ExperimentSpec:
    """Heterogeneous device classes: three hardware tiers share one fleet."""
    return replace(
        _qualify_base(
            "qualify-hetero-classes",
            "96 devices across three classes (lite / standard / industrial) "
            "with per-class arrival rates, anomaly rates and amplitude "
            "calibration; detection quality must hold across the mix",
        ),
        fleet=FleetSpec(
            n_devices=96,
            ticks=16,
            arrival_rate=0.4,
            anomaly_rate=0.08,
            metrics_window=4,
            device_classes=(
                DeviceClassSpec(name="lite", weight=3.0, arrival_rate=0.25),
                DeviceClassSpec(
                    name="standard", weight=2.0, arrival_rate=0.5, anomaly_rate=0.12
                ),
                DeviceClassSpec(
                    name="industrial",
                    weight=1.0,
                    arrival_rate=1.0,
                    amplitude_scale=1.1,
                    amplitude_offset=0.05,
                ),
            ),
        ),
    )


@register_scenario("qualify-flash-crowd", tags=("qualify", "fleet", "extended"))
def qualify_flash_crowd() -> ExperimentSpec:
    """Diurnal load with a 6x flash-crowd spike mid-run."""
    return replace(
        _qualify_base(
            "qualify-flash-crowd",
            "64-device fleet on a diurnal load curve hit by a 6x flash crowd "
            "for ticks [8, 10); quality must hold through the spike",
        ),
        fleet=FleetSpec(
            n_devices=64,
            ticks=16,
            arrival_rate=0.4,
            anomaly_rate=0.08,
            metrics_window=4,
            load_curve=LoadCurveSpec(
                diurnal_amplitude=0.4,
                diurnal_period=12.0,
                flash_multiplier=6.0,
                flash_at_tick=8,
                flash_ticks=2,
            ),
        ),
    )


@register_scenario("qualify-tier-partition", tags=("qualify", "serving", "extended"))
def qualify_tier_partition() -> ExperimentSpec:
    """The edge->cloud uplink partitions while the front door is serving."""
    return replace(
        _qualify_base(
            "qualify-tier-partition",
            "open-loop serving while the edge->cloud uplink is down for ticks "
            "[3, 8): cloud-bound batches retry with backoff, fail over to the "
            "edge, and the p99 SLO holds with zero dropped requests",
        ),
        fleet=FleetSpec(n_devices=32, ticks=10, arrival_rate=1.0, anomaly_rate=0.08),
        serve=ServingSpec(offered_rps=150.0, max_requests=192),
        faults=FaultSpec(
            events=(FaultEvent(kind="link-down", at_tick=3, until_tick=8, link=1),),
            failover_retries=2,
            retry_timeout_ms=25.0,
        ),
    )


@register_scenario("qualify-correlated-drift", tags=("qualify", "fleet", "extended"))
def qualify_correlated_drift() -> ExperimentSpec:
    """Cohorts of devices drift together in a shared direction; adaptation recovers."""
    from repro.adapt.spec import AdaptSpec

    return replace(
        _qualify_base(
            "qualify-correlated-drift",
            "64-device fleet whose four cohorts drift in correlated "
            "directions; the adaptation loop must retrain and climb back "
            "out of the quality trough",
        ),
        fleet=FleetSpec(
            n_devices=64,
            ticks=32,
            arrival_rate=0.5,
            anomaly_rate=0.08,
            metrics_window=4,
            mutators=(
                MutatorSpec(
                    kind="correlated-drift",
                    drift_per_tick=0.05,
                    drift_cohorts=4,
                    drift_seed=0,
                ),
            ),
        ),
        adapt=AdaptSpec(min_retrain_windows=32, retrain_epochs=3, warmup_ticks=4),
    )


@register_scenario("qualify-sensor-faults", tags=("qualify", "fleet", "extended"))
def qualify_sensor_faults() -> ExperimentSpec:
    """Stuck-at, spike and dropout sensor faults corrupt the observable signal."""
    return replace(
        _qualify_base(
            "qualify-sensor-faults",
            "64-device fleet with stuck sensors, random spikes and devices "
            "going silent; degradation must stay bounded and the dropouts "
            "must actually register as offline device-ticks",
        ),
        fleet=FleetSpec(
            n_devices=64,
            ticks=16,
            arrival_rate=0.5,
            anomaly_rate=0.08,
            metrics_window=4,
            mutators=(
                MutatorSpec(kind="sensor-stuck", stuck_fraction=0.1, stuck_scale=1.0),
                MutatorSpec(kind="sensor-spike", spike_rate=0.05, spike_magnitude=6.0),
                MutatorSpec(
                    kind="sensor-dropout", dropout_fraction=0.1, dropout_horizon=16
                ),
            ),
        ),
    )


@register_scenario("qualify-camouflage", tags=("qualify", "fleet", "extended"))
def qualify_camouflage() -> ExperimentSpec:
    """An adversary rescales anomalous windows toward the normal amplitude."""
    return replace(
        _qualify_base(
            "qualify-camouflage",
            "64-device fleet whose windows are adversarially rescaled toward "
            "the normal RMS amplitude; detection must degrade gracefully, "
            "not collapse",
        ),
        fleet=FleetSpec(
            n_devices=64,
            ticks=16,
            arrival_rate=0.5,
            anomaly_rate=0.08,
            metrics_window=4,
            mutators=(
                MutatorSpec(
                    kind="camouflage",
                    camouflage_target=1.0,
                    camouflage_strength=0.6,
                ),
            ),
        ),
    )


@register_scenario("qualify-control-broken", tags=("qualify", "control", "extended"))
def qualify_control_broken() -> ExperimentSpec:
    """Deliberately-unsatisfiable control: proves the matrix can fail."""
    return replace(
        _qualify_base(
            "qualify-control-broken",
            "tiny healthy fleet pinned against an impossible F1 bound; this "
            "control case exists to prove a contract violation is detected, "
            "named and exits nonzero",
        ),
        fleet=FleetSpec(
            n_devices=16, ticks=8, arrival_rate=0.5, anomaly_rate=0.1, metrics_window=4
        ),
    )


# -- the packs --------------------------------------------------------------------

#: The qualification matrix: one named contract per failure mode.  Bounds are
#: pinned at the default scale under seed 0 with deliberate slack — they gate
#: collapse, not noise — and every fleet-side value is deterministic.
QUALIFY_PACKS: Dict[str, Tuple[QualifyCase, ...]] = {
    "hostile": (
        QualifyCase(
            scenario="qualify-hetero-classes",
            failure_mode="heterogeneous-hardware",
            contracts=(
                ContractSpec(
                    name="hetero-f1-floor",
                    metric="f1",
                    op=">=",
                    bound=0.55,
                    description="detection quality holds across device classes",
                ),
                ContractSpec(
                    name="hetero-class-volume",
                    metric="n_windows",
                    op=">=",
                    bound=500,
                    description="every class contributes arrivals (volume floor)",
                ),
            ),
        ),
        QualifyCase(
            scenario="qualify-flash-crowd",
            failure_mode="flash-crowd-overload",
            contracts=(
                ContractSpec(
                    name="flash-f1-floor",
                    metric="f1",
                    op=">=",
                    bound=0.65,
                    description="quality holds through the 6x spike",
                ),
                ContractSpec(
                    name="flash-volume",
                    metric="n_windows",
                    op=">=",
                    bound=550,
                    description="the flash crowd actually multiplies arrivals",
                ),
            ),
        ),
        QualifyCase(
            scenario="qualify-tier-partition",
            failure_mode="tier-partition",
            kind="serve",
            contracts=(
                ContractSpec(
                    name="partition-slo",
                    metric="slo_met",
                    op="==",
                    bound=1,
                    description="served p99 stays within the SLO during the outage",
                ),
                ContractSpec(
                    name="partition-zero-drop",
                    metric="n_dropped",
                    op="==",
                    bound=0,
                    description="request conservation holds while the link is down",
                ),
                ContractSpec(
                    name="partition-failover",
                    metric="redirected_total",
                    op=">=",
                    bound=1,
                    description="cloud-bound traffic actually failed over",
                ),
                ContractSpec(
                    name="partition-retries",
                    metric="n_retries",
                    op=">=",
                    bound=1,
                    description="backoff retries were spent against the dead link",
                ),
            ),
        ),
        QualifyCase(
            scenario="qualify-correlated-drift",
            failure_mode="correlated-drift",
            contracts=(
                ContractSpec(
                    name="drift-recovery",
                    metric="recovery_ratio",
                    op=">=",
                    bound=1.0,
                    description="the final window climbs back to (or above) the trough",
                ),
                ContractSpec(
                    name="drift-final-floor",
                    metric="final_window_f1",
                    op=">=",
                    bound=0.55,
                    description="post-adaptation quality is serviceable",
                ),
            ),
        ),
        QualifyCase(
            scenario="qualify-sensor-faults",
            failure_mode="sensor-corruption",
            contracts=(
                ContractSpec(
                    name="sensor-f1-floor",
                    metric="f1",
                    op=">=",
                    bound=0.45,
                    description="corruption degrades quality boundedly, not to zero",
                ),
                ContractSpec(
                    name="sensor-dropout-bites",
                    metric="offline_device_ticks",
                    op=">=",
                    bound=1,
                    description="the dropout fault actually silences devices",
                ),
            ),
        ),
        QualifyCase(
            scenario="qualify-camouflage",
            failure_mode="adversarial-camouflage",
            contracts=(
                ContractSpec(
                    name="camouflage-f1-floor",
                    metric="f1",
                    op=">=",
                    bound=0.45,
                    description="camouflaged anomalies still get caught above floor",
                ),
                ContractSpec(
                    name="camouflage-recall-floor",
                    metric="recall",
                    op=">=",
                    bound=0.35,
                    description="the attack does not blind the detectors outright",
                ),
            ),
        ),
    ),
    "control": (
        QualifyCase(
            scenario="qualify-control-broken",
            failure_mode="control-must-fail",
            contracts=(
                ContractSpec(
                    name="control-impossible-f1",
                    metric="f1",
                    op=">=",
                    bound=1.5,
                    description="unsatisfiable by construction (F1 is bounded by 1)",
                ),
            ),
        ),
    ),
}


def get_pack(name: str) -> Tuple[QualifyCase, ...]:
    """The cases of one registered pack (unknown names raise)."""
    try:
        return QUALIFY_PACKS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown qualification pack {name!r}; available: "
            f"{sorted(QUALIFY_PACKS)}"
        ) from exc
