"""Bounded caches behind the columnar streaming fast path.

Two module-level caches make repeated streaming of the *same seeded
workload* — benchmark repeats, shard sweeps, persistent shard workers
re-running a scenario — nearly free without touching determinism:

* the **creation cache** stores, per fleet configuration, each device's
  mutator states and the RNG state *after* the creation draws, so a fresh
  :class:`~repro.fleet.devices.DeviceFleet` can restore its devices instead
  of re-deriving 1000 generators from seed material;
* the **stream cache** stores, per fleet configuration, the per-tick
  columnar arrival draws (device rows, anomaly flags, pool indices,
  timestamps, per-window mutator draws).  The cached values *are* the values
  the per-device RNG streams produce, so a cache hit is bit-identical to
  regeneration by construction — only the window gather + mutator batch
  transforms run per call.

Both caches hold pure data derived deterministically from ``(master seed,
fleet spec, device ids, pool shape/sizes)``; the cached window *indices* are
independent of the pool contents, so two experiments sharing a spec but not
a pool still share a stream.  Entries are evicted LRU beyond a small bound,
and only fleets whose mutators are all built-ins participate (a custom
:class:`~repro.fleet.mutators.StreamMutator` subclass could close over
mutable state the cache cannot see).

The reference path stays cold: :meth:`~repro.fleet.devices.DeviceFleet.
arrivals` itself never reads these caches, and the streaming engine builds
its legacy-path fleets with ``cache=False`` so not even device construction
is shared — the oracle the equivalence tests pin the fast path against can
never inherit a defect from the caches it validates.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

#: Maximum cached fleet configurations per cache (LRU beyond this).
CREATION_CACHE_LIMIT = 8
STREAM_CACHE_LIMIT = 4
#: Maximum arrivals cached per stream entry.  Ticks beyond this budget are
#: generated without caching (the fleet's cursor discipline regenerates them
#: linearly on replay), so a long run degrades to uncached speed past the cap
#: instead of pinning an unbounded per-tick chunk list in memory.
STREAM_CACHE_MAX_ARRIVALS = 250_000

_creation_cache: "OrderedDict[tuple, list]" = OrderedDict()
_stream_cache: "OrderedDict[tuple, StreamCacheEntry]" = OrderedDict()
_enabled = True


@dataclass
class StreamChunk:
    """One tick's arrival draws in columnar form (windows not materialised)."""

    #: Fleet-position (not device-id) of each arrival's device, arrival order.
    rows: np.ndarray
    #: Whether each arrival sampled the anomalous pool.
    anomalous: np.ndarray
    #: Index of the sampled window inside its (normal or anomalous) pool.
    pool_indices: np.ndarray
    #: Simulated emission times (``tick`` plus the in-tick offset draw).
    timestamps: np.ndarray
    #: Per-mutator ``transform_draw`` results, keyed by mutator position.
    draws: Dict[int, List]
    #: Number of online devices at this tick.
    online: int


@dataclass
class StreamCacheEntry:
    """Per-tick chunks generated so far for one fleet configuration."""

    chunks: Dict[int, StreamChunk] = field(default_factory=dict)
    #: Total arrivals across the cached chunks (bounds the entry's memory).
    cached_arrivals: int = 0

    def store(self, tick: int, chunk: StreamChunk) -> None:
        """Cache ``chunk`` for ``tick`` if the entry's budget allows it."""
        arrivals = int(chunk.rows.shape[0])
        if tick in self.chunks:
            # Replay regeneration overwrites with identical data; no growth.
            self.chunks[tick] = chunk
            return
        if self.cached_arrivals + arrivals > STREAM_CACHE_MAX_ARRIVALS:
            return
        self.chunks[tick] = chunk
        self.cached_arrivals += arrivals


def enabled() -> bool:
    """Whether the caches are currently consulted."""
    return _enabled


def set_enabled(value: bool) -> bool:
    """Enable/disable both caches (for tests); returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(value)
    return previous


def clear() -> None:
    """Drop every cached entry (for tests and memory-sensitive callers)."""
    _creation_cache.clear()
    _stream_cache.clear()


def _get(cache: OrderedDict, key: tuple):
    entry = cache.get(key)
    if entry is not None:
        cache.move_to_end(key)
    return entry


def _put(cache: OrderedDict, key: tuple, value, limit: int) -> None:
    cache[key] = value
    cache.move_to_end(key)
    while len(cache) > limit:
        cache.popitem(last=False)


def creation_snapshots(key: tuple) -> Optional[list]:
    """Cached per-device ``(rng_state, states)`` snapshots, if any."""
    if not _enabled:
        return None
    return _get(_creation_cache, key)


def store_creation_snapshots(key: tuple, snapshots: list) -> None:
    """Cache per-device creation snapshots for ``key``."""
    if _enabled:
        _put(_creation_cache, key, snapshots, CREATION_CACHE_LIMIT)


def stream_entry(key: tuple) -> Optional[StreamCacheEntry]:
    """The (mutable) stream-cache entry for ``key``, created on first use."""
    if not _enabled:
        return None
    entry = _get(_stream_cache, key)
    if entry is None:
        entry = StreamCacheEntry()
        _put(_stream_cache, key, entry, STREAM_CACHE_LIMIT)
    return entry


def cache_stats() -> Tuple[int, int]:
    """(creation entries, stream entries) — introspection for tests."""
    return len(_creation_cache), len(_stream_cache)
