"""Fleet streaming subsystem: workload generators, sharded streaming engine
and online evaluation for thousand-device HEC simulations.

The offline experiments replay one pre-windowed dataset; this package turns
the same trained system into the paper's *premise* — an IoT fleet continuously
streaming sensor windows:

* :mod:`repro.fleet.spec` — declarative :class:`FleetSpec`/:class:`MutatorSpec`
  (the ``fleet`` node of an :class:`~repro.experiments.spec.ExperimentSpec`);
* :mod:`repro.fleet.devices` — :class:`DeviceFleet` workload generators with
  per-device RNG streams;
* :mod:`repro.fleet.mutators` — concept drift, bursty anomaly episodes,
  device churn and phase jitter;
* :mod:`repro.fleet.engine` — the event-clocked :class:`FleetEngine` (with a
  columnar struct-of-arrays fast path pinned bit-identical to the per-window
  reference loop) and the ``multiprocessing``-sharded
  :class:`ShardedFleetEngine`;
* :mod:`repro.fleet.sharding` — persistent worker pools and zero-copy shard
  payloads behind the sharded engine;
* :mod:`repro.fleet.stream_cache` — bounded creation/arrival-stream caches
  behind the columnar fast path;
* :mod:`repro.fleet.profiling` — the per-stage :class:`StageProfiler` behind
  ``repro fleet --profile``;
* :mod:`repro.fleet.metrics` / :mod:`repro.fleet.report` — bounded-memory
  online evaluation and the serialisable :class:`FleetReport`.

Fleet *scenarios* live in :mod:`repro.fleet.scenarios`, registered into the
shared scenario registry by :mod:`repro.experiments` (not imported here, to
keep the import graph acyclic).
"""

from repro.fleet.devices import (
    ColumnarArrivals,
    DeviceFleet,
    VirtualDevice,
    WindowArrival,
    WindowPool,
)
from repro.fleet.engine import FleetEngine, ShardedFleetEngine
from repro.fleet.metrics import DelayReservoir, StreamingMetrics
from repro.fleet.profiling import StageProfiler
from repro.fleet.mutators import (
    AnomalyBurst,
    ConceptDrift,
    DeviceChurn,
    PhaseJitter,
    StreamMutator,
)
from repro.fleet.report import (
    DelaySummary,
    FleetReport,
    TierUsage,
    WindowedMetrics,
    report_from_metrics,
)
from repro.fleet.spec import MUTATOR_KINDS, FleetSpec, MutatorSpec

__all__ = [
    "ColumnarArrivals",
    "DeviceFleet",
    "VirtualDevice",
    "WindowArrival",
    "WindowPool",
    "StageProfiler",
    "FleetEngine",
    "ShardedFleetEngine",
    "DelayReservoir",
    "StreamingMetrics",
    "StreamMutator",
    "ConceptDrift",
    "AnomalyBurst",
    "DeviceChurn",
    "PhaseJitter",
    "FleetReport",
    "TierUsage",
    "WindowedMetrics",
    "DelaySummary",
    "report_from_metrics",
    "FleetSpec",
    "MutatorSpec",
    "MUTATOR_KINDS",
]
