"""Per-stage wall-clock profiling for the streaming engines.

A :class:`StageProfiler` splits a fleet run's wall-clock into the five
streaming stages — arrivals, context+policy, detect, metrics, adapt — so a
perf investigation starts from a measured breakdown instead of guesses
(``repro fleet --profile`` prints it).  The engine only touches the profiler
through :meth:`StageProfiler.add`, and only when one is attached, so the
unprofiled hot loop pays a single ``is None`` check per stage per tick.

Since the observability layer landed, the profiler is a thin shim over
:class:`~repro.obs.metrics.MetricsRegistry` aggregation: the per-stage
seconds live in the registry's ``fleet_stage_seconds_total{stage=...}``
counter family (by default a registry the profiler owns; pass the telemetry
session's registry and the same numbers flow straight into the exported
``metrics.json``/``metrics.prom``), and :meth:`StageProfiler.summary` is a
view over those counters.  The printed breakdown is unchanged and pinned by
the CLI smoke tests.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry

#: The streaming stages, in loop order.
STAGES = ("arrivals", "context_policy", "detect", "metrics", "adapt")

_LABELS = {
    "arrivals": "arrivals (device draws + window assembly)",
    "context_policy": "context + policy (extract, select actions)",
    "detect": "detect (detector forward, scoring, delays)",
    "metrics": "metrics (online aggregation)",
    "adapt": "adapt (controller feed + tick boundary)",
}


class StageProfiler:
    """Accumulates wall-clock seconds per streaming stage."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        #: The registry holding the stage counters (the telemetry session's
        #: when profiling a telemetry-enabled run, else profiler-owned).
        self.registry = registry if registry is not None else MetricsRegistry()
        family = self.registry.counter(
            "fleet_stage_seconds_total",
            "Wall-clock seconds per streaming stage.",
            labelnames=("stage",),
        )
        self._cells = {stage: family.labels(stage=stage) for stage in STAGES}
        #: Wall-clock of the whole run (set by the engine; includes fleet
        #: construction and everything the stages do not cover).
        self.total_seconds: Optional[float] = None
        self.n_windows = 0
        self.ticks = 0

    def add(self, stage: str, seconds: float) -> None:
        """Fold ``seconds`` into ``stage`` (unknown stages are an error)."""
        self._cells[stage].value += float(seconds)

    @property
    def seconds(self) -> Dict[str, float]:
        """Seconds per stage (a read-through view of the registry counters)."""
        return {stage: cell.value for stage, cell in self._cells.items()}

    def stage_values(self) -> tuple:
        """The five stage totals in :data:`STAGES` order (cheap snapshot)."""
        return tuple(self._cells[stage].value for stage in STAGES)

    @property
    def accounted_seconds(self) -> float:
        """Seconds attributed to a stage (the rest is engine overhead)."""
        return float(sum(cell.value for cell in self._cells.values()))

    def summary(self) -> str:
        """A printable per-stage breakdown."""
        total = self.total_seconds if self.total_seconds else self.accounted_seconds
        lines = ["per-stage wall-clock breakdown:"]
        for stage in STAGES:
            seconds = self._cells[stage].value
            share = 100.0 * seconds / total if total else 0.0
            lines.append(f"  {_LABELS[stage]:<50s} {seconds:8.3f} s  ({share:5.1f}%)")
        if self.total_seconds is not None:
            other = max(0.0, self.total_seconds - self.accounted_seconds)
            share = 100.0 * other / total if total else 0.0
            lines.append(
                f"  {'other (fleet construction, engine glue)':<50s} "
                f"{other:8.3f} s  ({share:5.1f}%)"
            )
            lines.append(f"  {'total':<50s} {self.total_seconds:8.3f} s")
        if self.total_seconds and self.n_windows:
            lines.append(
                f"  throughput: {self.n_windows / self.total_seconds:,.0f} windows/s "
                f"({self.n_windows} windows over {self.ticks} ticks)"
            )
        return "\n".join(lines)
