"""Per-stage wall-clock profiling for the streaming engines.

A :class:`StageProfiler` splits a fleet run's wall-clock into the five
streaming stages — arrivals, context+policy, detect, metrics, adapt — so a
perf investigation starts from a measured breakdown instead of guesses
(``repro fleet --profile`` prints it).  The engine only touches the profiler
through :meth:`StageProfiler.add`, and only when one is attached, so the
unprofiled hot loop pays a single ``is None`` check per stage per tick.
"""

from __future__ import annotations

from typing import Dict, Optional

#: The streaming stages, in loop order.
STAGES = ("arrivals", "context_policy", "detect", "metrics", "adapt")

_LABELS = {
    "arrivals": "arrivals (device draws + window assembly)",
    "context_policy": "context + policy (extract, select actions)",
    "detect": "detect (detector forward, scoring, delays)",
    "metrics": "metrics (online aggregation)",
    "adapt": "adapt (controller feed + tick boundary)",
}


class StageProfiler:
    """Accumulates wall-clock seconds per streaming stage."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {stage: 0.0 for stage in STAGES}
        #: Wall-clock of the whole run (set by the engine; includes fleet
        #: construction and everything the stages do not cover).
        self.total_seconds: Optional[float] = None
        self.n_windows = 0
        self.ticks = 0

    def add(self, stage: str, seconds: float) -> None:
        """Fold ``seconds`` into ``stage`` (unknown stages are an error)."""
        self.seconds[stage] += float(seconds)

    @property
    def accounted_seconds(self) -> float:
        """Seconds attributed to a stage (the rest is engine overhead)."""
        return float(sum(self.seconds.values()))

    def summary(self) -> str:
        """A printable per-stage breakdown."""
        total = self.total_seconds if self.total_seconds else self.accounted_seconds
        lines = ["per-stage wall-clock breakdown:"]
        for stage in STAGES:
            seconds = self.seconds[stage]
            share = 100.0 * seconds / total if total else 0.0
            lines.append(f"  {_LABELS[stage]:<50s} {seconds:8.3f} s  ({share:5.1f}%)")
        if self.total_seconds is not None:
            other = max(0.0, self.total_seconds - self.accounted_seconds)
            share = 100.0 * other / total if total else 0.0
            lines.append(
                f"  {'other (fleet construction, engine glue)':<50s} "
                f"{other:8.3f} s  ({share:5.1f}%)"
            )
            lines.append(f"  {'total':<50s} {self.total_seconds:8.3f} s")
        if self.total_seconds and self.n_windows:
            lines.append(
                f"  throughput: {self.n_windows / self.total_seconds:,.0f} windows/s "
                f"({self.n_windows} windows over {self.ticks} ticks)"
            )
        return "\n".join(lines)
