"""Deterministic fault injection for streaming fleet runs.

A :class:`FaultSpec` is pure data hanging off
:class:`~repro.experiments.spec.ExperimentSpec` as the optional ``faults``
node: a tuple of :class:`FaultEvent` entries plus the failover retry policy
the :class:`~repro.hec.simulation.HECSystem` applies when a link is down.
:class:`FaultSchedule` turns the spec into per-tick actions for the streaming
engine.  Everything is a pure function of the tick number — no RNG, no
mutable schedule state — so a resumed run reconstructs the exact same fault
trajectory from the spec alone and checkpoints never need to serialise fault
state.

Four fault kinds are modelled:

* ``link-degrade`` — a :class:`~repro.hec.network.NetworkLink`'s one-way
  latency is multiplied by ``factor`` for ``[at_tick, until_tick)``;
* ``link-down`` — the link is unreachable for ``[at_tick, until_tick)``
  (``until_tick=None`` = a permanent partition); detection falls back to the
  best reachable tier with retry delay accounting (see
  :meth:`~repro.hec.simulation.HECSystem.configure_failover`);
* ``shard-crash`` — the shard worker raises :class:`WorkerCrash` at
  ``at_tick``; the sharded engine recovers by re-executing only that shard
  (from its last checkpoint when one exists);
* ``process-kill`` — the engine SIGKILLs its own process at ``at_tick``,
  modelling a hard mid-run crash for the checkpoint/resume tests.

``shard-crash`` and ``process-kill`` are one-shot: a *resumed* run disarms
them (the modelled crash already happened), otherwise resuming at or before
``at_tick`` would crash again forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_non_negative, checked_dataclass_kwargs

#: Fault kinds understood by :class:`FaultSchedule`.
FAULT_KINDS = ("link-degrade", "link-down", "shard-crash", "process-kill")


class WorkerCrash(Exception):
    """An injected shard-worker crash.

    Deliberately **not** a :class:`~repro.exceptions.ReproError`: the sharded
    engine's pool-failure ladder re-raises ``ReproError`` and falls back to
    serial on ``OSError``/``ValueError``; an injected crash must bypass both
    and reach the shard-recovery path instead.
    """


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``until_tick`` is exclusive and only read by the link kinds; ``None``
    means the fault is permanent.  ``link`` indexes the topology's uplink
    chain (0 = device->first tier), ``factor`` is the latency multiplier of
    ``link-degrade``, and ``shard`` addresses ``shard-crash`` events.
    """

    kind: str
    at_tick: int
    until_tick: Optional[int] = None
    link: int = 0
    factor: float = 4.0
    shard: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.at_tick < 0:
            raise ConfigurationError(f"at_tick must be non-negative, got {self.at_tick}")
        if self.until_tick is not None and self.until_tick <= self.at_tick:
            raise ConfigurationError(
                f"until_tick must exceed at_tick, got "
                f"[{self.at_tick}, {self.until_tick})"
            )
        if self.link < 0:
            raise ConfigurationError(f"link must be non-negative, got {self.link}")
        if self.factor < 1.0:
            raise ConfigurationError(
                f"factor must be >= 1 (a latency multiplier), got {self.factor}"
            )
        if self.shard < 0:
            raise ConfigurationError(f"shard must be non-negative, got {self.shard}")

    def active(self, tick: int) -> bool:
        """Whether a link fault covers ``tick`` (``until_tick`` exclusive)."""
        return tick >= self.at_tick and (self.until_tick is None or tick < self.until_tick)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultEvent":
        return cls(**checked_dataclass_kwargs(cls, payload, "fault event"))


@dataclass(frozen=True)
class FaultSpec:
    """The fault-injection plan of an experiment.

    ``failover_retries``/``retry_timeout_ms`` parameterise the delay penalty
    a request pays when the system redirects it off an unreachable tier:
    each redirected request is charged ``failover_retries * retry_timeout_ms``
    on top of the delay of the tier that actually serves it.
    """

    events: Tuple[FaultEvent, ...] = ()
    failover_retries: int = 1
    retry_timeout_ms: float = 200.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise ConfigurationError(
                    f"events must be FaultEvent instances, got {type(event).__name__}"
                )
        if self.failover_retries < 1:
            raise ConfigurationError(
                f"failover_retries must be >= 1, got {self.failover_retries}"
            )
        check_non_negative(self.retry_timeout_ms, "retry_timeout_ms")

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultSpec":
        kwargs = checked_dataclass_kwargs(cls, payload, "fault spec")
        events = kwargs.pop("events", ())
        return cls(
            events=tuple(FaultEvent.from_dict(entry) for entry in events),
            **kwargs,
        )


class FaultSchedule:
    """Per-tick fault actions derived from a :class:`FaultSpec`.

    Stateless by design: :meth:`apply_links` resets every link to healthy and
    re-applies the faults active at ``tick``, so calling it for any tick in
    any order produces the correct link state for that tick — the property
    that lets a resumed run rebuild the fault trajectory with no saved state.
    """

    def __init__(self, spec: FaultSpec) -> None:
        if not isinstance(spec, FaultSpec):
            raise ConfigurationError(
                f"FaultSchedule needs a FaultSpec, got {type(spec).__name__}"
            )
        self.spec = spec
        self._link_events = tuple(
            e for e in spec.events if e.kind in ("link-degrade", "link-down")
        )
        self._crash_events = tuple(e for e in spec.events if e.kind == "shard-crash")
        self._kill_events = tuple(e for e in spec.events if e.kind == "process-kill")

    @property
    def has_link_faults(self) -> bool:
        return bool(self._link_events)

    @property
    def link_events(self) -> Tuple[FaultEvent, ...]:
        """The link-degrade/link-down events (telemetry reads these)."""
        return self._link_events

    def apply_links(self, system, tick: int) -> None:
        """Set every topology link to its scheduled state for ``tick``."""
        links = system.topology.links
        for link in links:
            link.set_status("up")
        for event in self._link_events:
            if not event.active(tick):
                continue
            if event.link >= len(links):
                raise ConfigurationError(
                    f"fault event addresses link {event.link} but the topology "
                    f"has only {len(links)} link(s)"
                )
            if event.kind == "link-down":
                links[event.link].set_status("down")
            else:
                links[event.link].set_status("degraded", factor=event.factor)

    def down_links(self, tick: int) -> Tuple[int, ...]:
        """Indices of links scheduled hard-down at ``tick`` (pure, sorted).

        The serving front door uses this to decide — without touching the
        shared :class:`~repro.hec.simulation.HECSystem` from the event loop —
        whether a batch's target tier sits behind a partition and should
        retry with backoff before failing over.
        """
        return tuple(
            sorted(
                {
                    e.link
                    for e in self._link_events
                    if e.kind == "link-down" and e.active(tick)
                }
            )
        )

    def kills_process(self, tick: int) -> bool:
        """Whether a ``process-kill`` event fires exactly at ``tick``."""
        return any(e.at_tick == tick for e in self._kill_events)

    def crashes_shard(self, shard_index: int, tick: int) -> bool:
        """Whether a ``shard-crash`` event fires for ``shard_index`` at ``tick``."""
        return any(
            e.at_tick == tick and e.shard == shard_index for e in self._crash_events
        )

    def crashed_shards(self) -> Tuple[int, ...]:
        """The shard indices with a scheduled crash (any tick), sorted."""
        return tuple(sorted({e.shard for e in self._crash_events}))
