"""Workload generators: a fleet of heterogeneous virtual devices.

A :class:`DeviceFleet` turns the experiment's prepared (standardised) windows
into *live traffic*: each :class:`VirtualDevice` samples windows from a shared
:class:`WindowPool` — normal and anomalous pools cut from the synthetic
power/MHEALTH generators — perturbs them through the configured stream
mutators, and emits timestamped :class:`WindowArrival` batches per event-clock
tick.

Determinism is the load-bearing property: every device owns an RNG seeded
from ``(master seed, fleet seed, device id)``, so a device's stream is
bit-identical no matter which shard it lands on or how many other devices
exist.  That is what lets :class:`~repro.fleet.engine.ShardedFleetEngine`
partition the fleet across workers and still merge to the exact unsharded
result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.datasets import LabeledWindows
from repro.exceptions import ConfigurationError
from repro.fleet import stream_cache
from repro.fleet.mutators import (
    AdversarialCamouflage,
    AnomalyBurst,
    ConceptDrift,
    CorrelatedDrift,
    DeviceChurn,
    PhaseJitter,
    SensorDropout,
    SensorSpike,
    SensorStuck,
    StreamMutator,
)
from repro.fleet.spec import FleetSpec
from repro.fleet.stream_cache import StreamChunk

#: Mask folding arbitrary (possibly negative) ints into SeedSequence entropy.
_SEED_MASK = 0xFFFFFFFF

#: Mutator types whose hooks are pure data the stream caches may snapshot.
_BUILTIN_MUTATORS = (
    StreamMutator,
    ConceptDrift,
    CorrelatedDrift,
    AnomalyBurst,
    DeviceChurn,
    PhaseJitter,
    SensorStuck,
    SensorSpike,
    SensorDropout,
    AdversarialCamouflage,
)


def device_rng(master_seed: int, fleet_seed: int, device_id: int) -> np.random.Generator:
    """The RNG owned by one device: a pure function of the three seeds."""
    entropy = (int(master_seed) & _SEED_MASK, int(fleet_seed) & _SEED_MASK, int(device_id))
    return np.random.default_rng(np.random.SeedSequence(entropy))


def _rng_from_state(state: dict) -> np.random.Generator:
    """A PCG64 generator restored to a captured ``bit_generator.state``."""
    bit_generator = np.random.PCG64(0)
    bit_generator.state = state
    return np.random.Generator(bit_generator)


@dataclass(frozen=True)
class WindowArrival:
    """One window emitted by one device at one point in simulated time."""

    device_id: int
    tick: int
    #: Tick-relative simulated emission time (``tick`` plus an in-tick offset).
    timestamp: float
    window: np.ndarray
    label: int


@dataclass(frozen=True)
class ColumnarArrivals:
    """One tick's arrivals as parallel arrays (the struct-of-arrays view).

    The fast-path counterpart of a ``List[WindowArrival]``: windows arrive
    pre-stacked (mutators applied) with labels, device ids and timestamps as
    aligned arrays, so the engine never builds or tears down per-window
    objects.  Arrays may be shared with the stream cache — treat them as
    read-only.
    """

    #: ``(n, *window_shape)`` float64 stack, mutators applied, arrival order.
    windows: np.ndarray
    #: ``(n,)`` int64 labels (1 = drawn from the anomalous pool).
    labels: np.ndarray
    #: ``(n,)`` int64 emitting-device ids.
    device_ids: np.ndarray
    #: ``(n,)`` float64 simulated emission times.
    timestamps: np.ndarray
    #: Number of online devices at this tick.
    online: int

    @property
    def n(self) -> int:
        """Number of arrivals."""
        return int(self.labels.shape[0])


@dataclass(frozen=True)
class WindowPool:
    """The normal/anomalous window pools every device samples from."""

    normal: np.ndarray
    anomalous: np.ndarray

    def __post_init__(self) -> None:
        if self.normal.shape[0] == 0:
            raise ConfigurationError("a window pool needs at least one normal window")
        if (
            self.anomalous.shape[0]
            and self.anomalous.shape[1:] != self.normal.shape[1:]
        ):
            raise ConfigurationError(
                f"normal windows {self.normal.shape[1:]} and anomalous windows "
                f"{self.anomalous.shape[1:]} must share one shape"
            )

    @property
    def window_shape(self) -> Tuple[int, ...]:
        """Shape of one window."""
        return tuple(self.normal.shape[1:])

    @classmethod
    def from_labeled(cls, labeled: LabeledWindows) -> "WindowPool":
        """Split labelled (usually standardised) windows into the two pools."""
        windows = np.asarray(labeled.windows, dtype=float)
        labels = np.asarray(labeled.labels, dtype=int)
        return cls(normal=windows[labels == 0], anomalous=windows[labels == 1])


class VirtualDevice:
    """One simulated IoT device emitting perturbed windows from the pool."""

    def __init__(
        self,
        device_id: int,
        pool: WindowPool,
        mutators: Sequence[StreamMutator],
        spec: FleetSpec,
        master_seed: int = 0,
    ) -> None:
        self.device_id = int(device_id)
        self.pool = pool
        self.mutators = tuple(mutators)
        self.spec = spec
        self._rng: Optional[np.random.Generator] = device_rng(
            master_seed, spec.seed, device_id
        )
        self._rng_state: Optional[dict] = None
        self._init_class_params()
        # Per-mutator device parameters, drawn from this device's own RNG in
        # mutator order (creation draws precede every emission draw).
        self.states = [
            mutator.device_state_for(self.device_id, self._rng, pool.window_shape)
            for mutator in self.mutators
        ]

    def _init_class_params(self) -> None:
        """Resolve this device's heterogeneous-class parameters from the spec.

        Pure spec lookups (no RNG), so they are re-derived identically when a
        device is rebuilt from a cached creation snapshot.
        """
        self.arrival_rate = self.spec.device_arrival_rate(self.device_id)
        self.base_anomaly_rate = self.spec.device_anomaly_rate(self.device_id)
        self.amp_scale, self.amp_offset = self.spec.device_amplitude(self.device_id)

    @classmethod
    def from_snapshot(
        cls,
        device_id: int,
        pool: WindowPool,
        mutators: Sequence[StreamMutator],
        spec: FleetSpec,
        states: List[dict],
        rng_state: dict,
    ) -> "VirtualDevice":
        """Rebuild a device from cached creation draws (see the stream cache).

        ``rng_state`` is the bit-generator state captured right after the
        creation draws, so the restored emission stream is bit-identical to a
        freshly constructed device's.  The generator itself materialises
        lazily — a device whose whole stream comes from the cache never
        builds one.
        """
        device = cls.__new__(cls)
        device.device_id = int(device_id)
        device.pool = pool
        device.mutators = tuple(mutators)
        device.spec = spec
        device._init_class_params()
        device.states = states
        device._rng = None
        device._rng_state = rng_state
        return device

    @property
    def rng(self) -> np.random.Generator:
        """The device's emission RNG (restored from a snapshot on demand)."""
        if self._rng is None:
            self._rng = _rng_from_state(self._rng_state)
        return self._rng

    def creation_snapshot(self) -> Tuple[dict, List[dict]]:
        """``(rng state, mutator states)`` right after the creation draws."""
        return self.rng.bit_generator.state, self.states

    def online(self, tick: int) -> bool:
        """Whether the device emits at ``tick`` (pure, no RNG draws)."""
        return all(
            mutator.online(state, tick)
            for mutator, state in zip(self.mutators, self.states)
        )

    def _anomaly_rate(self, tick: int) -> float:
        rate = self.base_anomaly_rate
        for mutator, state in zip(self.mutators, self.states):
            rate = mutator.anomaly_rate(rate, state, tick)
        return rate

    def emit(self, tick: int) -> List[WindowArrival]:
        """The device's arrivals for ``tick`` (empty while offline)."""
        if not self.online(tick):
            return []
        return self._emit_online(tick)

    def _emit_online(self, tick: int) -> List[WindowArrival]:
        """Arrivals for ``tick``, assuming the caller already checked online."""
        count = int(self.rng.poisson(self.arrival_rate * self.spec.rate_multiplier(tick)))
        arrivals: List[WindowArrival] = []
        rate = self._anomaly_rate(tick)
        apply_amplitude = self.amp_scale != 1.0 or self.amp_offset != 0.0
        for _ in range(count):
            anomalous = bool(self.rng.random() < rate) and self.pool.anomalous.shape[0] > 0
            source = self.pool.anomalous if anomalous else self.pool.normal
            window = source[int(self.rng.integers(source.shape[0]))]
            for mutator, state in zip(self.mutators, self.states):
                window = mutator.transform(window, state, tick, self.rng)
            if apply_amplitude:
                # The class amplitude affine runs after all mutators and draws
                # no RNG; the columnar path replays the identical elementwise
                # expression in _assemble, preserving bit-identity.
                window = window * self.amp_scale + self.amp_offset
            arrivals.append(
                WindowArrival(
                    device_id=self.device_id,
                    tick=tick,
                    timestamp=float(tick + self.rng.random()),
                    window=np.asarray(window, dtype=float),
                    label=int(anomalous),
                )
            )
        return arrivals


class DeviceFleet:
    """An ordered collection of virtual devices (optionally a shard subset).

    Two arrival APIs share one determinism contract:

    * :meth:`arrivals` — the per-window reference path, one
      :class:`WindowArrival` object per emission;
    * :meth:`arrivals_columnar` — the struct-of-arrays fast path, returning
      a :class:`ColumnarArrivals` whose values (and the per-device RNG draw
      order producing them) are bit-identical to stacking the reference
      path's output.  It may serve repeated runs of the same configuration
      from the module-level stream cache; call it with non-decreasing ticks
      starting at 0 and do not interleave it with :meth:`arrivals` on the
      same instance (the two paths consume the same device streams).
    """

    def __init__(
        self,
        spec: FleetSpec,
        pool: WindowPool,
        master_seed: int = 0,
        device_ids: Optional[Sequence[int]] = None,
        cache: bool = True,
    ) -> None:
        self.spec = spec
        self.pool = pool
        self.master_seed = int(master_seed)
        ids = (
            list(range(spec.n_devices))
            if device_ids is None
            else [int(device_id) for device_id in device_ids]
        )
        mutators = spec.build_mutators()
        self.mutators = mutators
        #: ``cache=False`` keeps this fleet away from the module-level
        #: creation/stream caches entirely — the engine's legacy reference
        #: path builds its fleets this way, so the oracle can never share
        #: state (and thus a defect) with the fast path it validates.
        self._cacheable = bool(cache) and all(
            type(m) in _BUILTIN_MUTATORS for m in mutators
        )
        self._creation_key = (
            self.master_seed,
            spec,
            tuple(ids),
            pool.window_shape,
        ) if self._cacheable else None
        snapshots = (
            stream_cache.creation_snapshots(self._creation_key)
            if self._creation_key is not None
            else None
        )
        if snapshots is not None:
            self.devices = [
                VirtualDevice.from_snapshot(
                    device_id, pool, mutators, spec, states=states, rng_state=rng_state
                )
                for device_id, (rng_state, states) in zip(ids, snapshots)
            ]
        else:
            self.devices = [
                VirtualDevice(device_id, pool, mutators, spec, master_seed=master_seed)
                for device_id in ids
            ]
            if self._creation_key is not None:
                stream_cache.store_creation_snapshots(
                    self._creation_key,
                    [device.creation_snapshot() for device in self.devices],
                )
        #: Next tick whose draws this instance must generate (ticks below this
        #: have consumed the device RNG streams; cache hits do not).
        self._next_gen_tick = 0
        self._columnar_setup_done = False

    def __len__(self) -> int:
        return len(self.devices)

    @property
    def window_shape(self) -> Tuple[int, ...]:
        """Shape of one emitted window."""
        return self.pool.window_shape

    def arrivals(self, tick: int) -> Tuple[List[WindowArrival], int]:
        """All arrivals for ``tick`` in device-id order, plus the online count."""
        batch: List[WindowArrival] = []
        online = 0
        for device in self.devices:
            if device.online(tick):
                online += 1
                batch.extend(device._emit_online(tick))
        return batch, online

    # -- columnar fast path ------------------------------------------------------

    def columnar_supported(self) -> bool:
        """Whether every mutator provides a faithful batch transform.

        A subclass that overrides :meth:`~repro.fleet.mutators.StreamMutator.
        transform` without also overriding ``transform_batch`` cannot be
        vectorised; :meth:`arrivals_columnar` then routes through the
        per-window reference path.
        """
        for mutator in self.mutators:
            kind = type(mutator)
            if (
                kind.transform is not StreamMutator.transform
                and kind.transform_batch is StreamMutator.transform_batch
            ):
                return False
        return True

    def _ensure_columnar_setup(self) -> None:
        if self._columnar_setup_done:
            return
        devices = self.devices
        mutators = self.mutators
        self._states_cols = [
            [device.states[position] for device in devices]
            for position in range(len(mutators))
        ]
        self._stacked = [
            mutator.stack_states(states)
            for mutator, states in zip(mutators, self._states_cols)
        ]
        base_online = StreamMutator.online
        base_online_batch = StreamMutator.online_batch
        self._online_positions = [
            position
            for position, mutator in enumerate(mutators)
            if type(mutator).online is not base_online
            or type(mutator).online_batch is not base_online_batch
        ]
        base_rate = StreamMutator.anomaly_rate
        base_rate_batch = StreamMutator.anomaly_rate_batch
        self._rate_positions = [
            position
            for position, mutator in enumerate(mutators)
            if type(mutator).anomaly_rate is not base_rate
            or type(mutator).anomaly_rate_batch is not base_rate_batch
        ]
        self._draw_mutators = [
            (position, mutator)
            for position, mutator in enumerate(mutators)
            if type(mutator).transform_draw is not StreamMutator.transform_draw
        ]
        self._id_array = np.fromiter(
            (device.device_id for device in devices), dtype=np.int64, count=len(devices)
        )
        # Heterogeneous-class parameters, resolved once per fleet.  Plain
        # Python float lists where the per-row value feeds an RNG call, so
        # the columnar path hands the generators the exact same Python floats
        # the per-window reference path does.
        self._arrival_rates = [device.arrival_rate for device in devices]
        self._base_anomaly_rates = [device.base_anomaly_rate for device in devices]
        self._amp_scales = np.array(
            [device.amp_scale for device in devices], dtype=float
        )
        self._amp_offsets = np.array(
            [device.amp_offset for device in devices], dtype=float
        )
        self._has_amplitude = bool(
            np.any(self._amp_scales != 1.0) or np.any(self._amp_offsets != 0.0)
        )
        self._stream_key = (
            (*self._creation_key, self.pool.normal.shape[0], self.pool.anomalous.shape[0])
            if self._creation_key is not None
            else None
        )
        self._columnar_setup_done = True

    def arrivals_columnar(self, tick: int) -> ColumnarArrivals:
        """All arrivals for ``tick`` as a :class:`ColumnarArrivals`.

        Bit-identical to :meth:`arrivals` (same per-device RNG streams, same
        draw order, same values in the same arrival order) but without
        per-window objects: draws are collected as arrays, windows are
        gathered from the pool in one fancy-indexing pass, and mutators apply
        through their batch hooks.  Cached fleet configurations replay their
        draws from the stream cache without consuming any RNG.
        """
        tick = int(tick)
        if not self.columnar_supported():
            batch, online = self.arrivals(tick)
            return self._columnar_from_arrivals(batch, online)
        self._ensure_columnar_setup()
        entry = (
            stream_cache.stream_entry(self._stream_key)
            if self._stream_key is not None
            else None
        )
        if entry is None:
            if tick != self._next_gen_tick:
                raise ConfigurationError(
                    f"uncached columnar arrivals must be drawn sequentially from "
                    f"tick 0 (expected tick {self._next_gen_tick}, got {tick})"
                )
            chunk = self._generate_chunk(tick)
            self._next_gen_tick += 1
        else:
            chunk = entry.chunks.get(tick)
            if chunk is None:
                if tick < self._next_gen_tick:  # pragma: no cover - re-request
                    raise ConfigurationError(
                        f"tick {tick} is behind this fleet's stream cursor and "
                        "not cached (evicted or beyond the cache budget); "
                        "re-create the fleet to replay from tick 0"
                    )
                # Devices whose earlier ticks were cache hits have virgin RNG
                # streams, so generation can always replay from the cursor.
                # store() may decline chunks beyond the entry's memory budget,
                # so the freshly generated chunk is used directly.
                while self._next_gen_tick <= tick:
                    pending = self._next_gen_tick
                    chunk = self._generate_chunk(pending)
                    entry.store(pending, chunk)
                    self._next_gen_tick += 1
        return self._assemble(chunk, tick)

    def _columnar_from_arrivals(
        self, batch: List[WindowArrival], online: int
    ) -> ColumnarArrivals:
        """Pack reference-path arrivals into the columnar layout (fallback)."""
        if not batch:
            return self._empty_columnar(online)
        return ColumnarArrivals(
            windows=np.stack([arrival.window for arrival in batch]),
            labels=np.fromiter(
                (arrival.label for arrival in batch), dtype=np.int64, count=len(batch)
            ),
            device_ids=np.fromiter(
                (arrival.device_id for arrival in batch), dtype=np.int64, count=len(batch)
            ),
            timestamps=np.fromiter(
                (arrival.timestamp for arrival in batch), dtype=float, count=len(batch)
            ),
            online=online,
        )

    def _empty_columnar(self, online: int) -> ColumnarArrivals:
        return ColumnarArrivals(
            windows=np.empty((0, *self.pool.window_shape)),
            labels=np.empty(0, dtype=np.int64),
            device_ids=np.empty(0, dtype=np.int64),
            timestamps=np.empty(0, dtype=float),
            online=online,
        )

    def _generate_chunk(self, tick: int) -> StreamChunk:
        """Draw one tick's arrivals from the device RNG streams.

        The draw order per device is exactly the reference path's: one
        Poisson count, then per arrival the anomaly uniform, the pool index,
        any mutator transform draws (in mutator order), and the timestamp
        offset.  Devices are visited in fleet order, as :meth:`arrivals`
        does.
        """
        devices = self.devices
        n_devices = len(devices)
        mask: Optional[np.ndarray] = None
        for position in self._online_positions:
            sub = self.mutators[position].online_batch(
                self._stacked[position], self._states_cols[position], tick
            )
            mask = sub if mask is None else mask & sub
        if mask is None:
            online_rows = range(n_devices)
            online = n_devices
        else:
            online_rows = np.flatnonzero(mask).tolist()
            online = len(online_rows)

        base_rates = self._base_anomaly_rates
        rates_list = None
        if self._rate_positions:
            rates = np.array(base_rates, dtype=float)
            for position in self._rate_positions:
                rates = self.mutators[position].anomaly_rate_batch(
                    rates, self._stacked[position], self._states_cols[position], tick
                )
            rates_list = np.asarray(rates, dtype=float).tolist()

        arrival_rates = self._arrival_rates
        rate_multiplier = self.spec.rate_multiplier(tick)
        n_normal = self.pool.normal.shape[0]
        n_anomalous = self.pool.anomalous.shape[0]
        has_anomalies = n_anomalous > 0
        drawing = self._draw_mutators
        draws: Dict[int, List] = {position: [] for position, _ in drawing}
        rows: List[int] = []
        flags: List[bool] = []
        indices: List[int] = []
        stamps: List[float] = []
        for row in online_rows:
            device = devices[row]
            rng = device.rng
            count = rng.poisson(arrival_rates[row] * rate_multiplier)
            if not count:
                continue
            rate = rates_list[row] if rates_list is not None else base_rates[row]
            random = rng.random
            integers = rng.integers
            states = device.states
            for _ in range(count):
                anomalous = (random() < rate) and has_anomalies
                index = integers(n_anomalous) if anomalous else integers(n_normal)
                for position, mutator in drawing:
                    draws[position].append(mutator.transform_draw(states[position], rng))
                stamps.append(tick + random())
                rows.append(row)
                flags.append(anomalous)
                indices.append(index)
        return StreamChunk(
            rows=np.array(rows, dtype=np.int64),
            anomalous=np.array(flags, dtype=bool),
            pool_indices=np.array(indices, dtype=np.int64),
            timestamps=np.array(stamps, dtype=float),
            draws=draws,
            online=online,
        )

    def _assemble(self, chunk: StreamChunk, tick: int) -> ColumnarArrivals:
        """Gather the chunk's pool windows and apply the batch transforms."""
        n = chunk.rows.shape[0]
        if n == 0:
            return self._empty_columnar(chunk.online)
        pool = self.pool
        anomalous = chunk.anomalous
        if not anomalous.any():
            windows = pool.normal[chunk.pool_indices]
        elif anomalous.all():
            windows = pool.anomalous[chunk.pool_indices]
        else:
            windows = np.empty((n, *pool.window_shape))
            normal = ~anomalous
            windows[normal] = pool.normal[chunk.pool_indices[normal]]
            windows[anomalous] = pool.anomalous[chunk.pool_indices[anomalous]]
        for position, mutator in enumerate(self.mutators):
            windows = mutator.transform_batch(
                windows,
                self._stacked[position],
                chunk.rows,
                tick,
                chunk.draws.get(position),
            )
        if self._has_amplitude:
            # Mirror of the reference path's per-device affine: same skip
            # condition per device, same elementwise w*scale+offset float ops.
            scales = self._amp_scales[chunk.rows]
            offsets = self._amp_offsets[chunk.rows]
            affected = (scales != 1.0) | (offsets != 0.0)
            if affected.any():
                shape = (-1,) + (1,) * (windows.ndim - 1)
                windows[affected] = (
                    windows[affected] * scales[affected].reshape(shape)
                    + offsets[affected].reshape(shape)
                )
        return ColumnarArrivals(
            windows=windows,
            labels=anomalous.astype(np.int64),
            device_ids=self._id_array[chunk.rows],
            timestamps=chunk.timestamps,
            online=chunk.online,
        )
