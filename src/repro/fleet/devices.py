"""Workload generators: a fleet of heterogeneous virtual devices.

A :class:`DeviceFleet` turns the experiment's prepared (standardised) windows
into *live traffic*: each :class:`VirtualDevice` samples windows from a shared
:class:`WindowPool` — normal and anomalous pools cut from the synthetic
power/MHEALTH generators — perturbs them through the configured stream
mutators, and emits timestamped :class:`WindowArrival` batches per event-clock
tick.

Determinism is the load-bearing property: every device owns an RNG seeded
from ``(master seed, fleet seed, device id)``, so a device's stream is
bit-identical no matter which shard it lands on or how many other devices
exist.  That is what lets :class:`~repro.fleet.engine.ShardedFleetEngine`
partition the fleet across workers and still merge to the exact unsharded
result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.datasets import LabeledWindows
from repro.exceptions import ConfigurationError
from repro.fleet.mutators import StreamMutator
from repro.fleet.spec import FleetSpec

#: Mask folding arbitrary (possibly negative) ints into SeedSequence entropy.
_SEED_MASK = 0xFFFFFFFF


def device_rng(master_seed: int, fleet_seed: int, device_id: int) -> np.random.Generator:
    """The RNG owned by one device: a pure function of the three seeds."""
    entropy = (int(master_seed) & _SEED_MASK, int(fleet_seed) & _SEED_MASK, int(device_id))
    return np.random.default_rng(np.random.SeedSequence(entropy))


@dataclass(frozen=True)
class WindowArrival:
    """One window emitted by one device at one point in simulated time."""

    device_id: int
    tick: int
    #: Tick-relative simulated emission time (``tick`` plus an in-tick offset).
    timestamp: float
    window: np.ndarray
    label: int


@dataclass(frozen=True)
class WindowPool:
    """The normal/anomalous window pools every device samples from."""

    normal: np.ndarray
    anomalous: np.ndarray

    def __post_init__(self) -> None:
        if self.normal.shape[0] == 0:
            raise ConfigurationError("a window pool needs at least one normal window")
        if (
            self.anomalous.shape[0]
            and self.anomalous.shape[1:] != self.normal.shape[1:]
        ):
            raise ConfigurationError(
                f"normal windows {self.normal.shape[1:]} and anomalous windows "
                f"{self.anomalous.shape[1:]} must share one shape"
            )

    @property
    def window_shape(self) -> Tuple[int, ...]:
        """Shape of one window."""
        return tuple(self.normal.shape[1:])

    @classmethod
    def from_labeled(cls, labeled: LabeledWindows) -> "WindowPool":
        """Split labelled (usually standardised) windows into the two pools."""
        windows = np.asarray(labeled.windows, dtype=float)
        labels = np.asarray(labeled.labels, dtype=int)
        return cls(normal=windows[labels == 0], anomalous=windows[labels == 1])


class VirtualDevice:
    """One simulated IoT device emitting perturbed windows from the pool."""

    def __init__(
        self,
        device_id: int,
        pool: WindowPool,
        mutators: Sequence[StreamMutator],
        spec: FleetSpec,
        master_seed: int = 0,
    ) -> None:
        self.device_id = int(device_id)
        self.pool = pool
        self.mutators = tuple(mutators)
        self.spec = spec
        self.rng = device_rng(master_seed, spec.seed, device_id)
        # Per-mutator device parameters, drawn from this device's own RNG in
        # mutator order (creation draws precede every emission draw).
        self.states = [
            mutator.device_state(self.rng, pool.window_shape) for mutator in self.mutators
        ]

    def online(self, tick: int) -> bool:
        """Whether the device emits at ``tick`` (pure, no RNG draws)."""
        return all(
            mutator.online(state, tick)
            for mutator, state in zip(self.mutators, self.states)
        )

    def _anomaly_rate(self, tick: int) -> float:
        rate = self.spec.anomaly_rate
        for mutator, state in zip(self.mutators, self.states):
            rate = mutator.anomaly_rate(rate, state, tick)
        return rate

    def emit(self, tick: int) -> List[WindowArrival]:
        """The device's arrivals for ``tick`` (empty while offline)."""
        if not self.online(tick):
            return []
        return self._emit_online(tick)

    def _emit_online(self, tick: int) -> List[WindowArrival]:
        """Arrivals for ``tick``, assuming the caller already checked online."""
        count = int(self.rng.poisson(self.spec.arrival_rate))
        arrivals: List[WindowArrival] = []
        rate = self._anomaly_rate(tick)
        for _ in range(count):
            anomalous = bool(self.rng.random() < rate) and self.pool.anomalous.shape[0] > 0
            source = self.pool.anomalous if anomalous else self.pool.normal
            window = source[int(self.rng.integers(source.shape[0]))]
            for mutator, state in zip(self.mutators, self.states):
                window = mutator.transform(window, state, tick, self.rng)
            arrivals.append(
                WindowArrival(
                    device_id=self.device_id,
                    tick=tick,
                    timestamp=float(tick + self.rng.random()),
                    window=np.asarray(window, dtype=float),
                    label=int(anomalous),
                )
            )
        return arrivals


class DeviceFleet:
    """An ordered collection of virtual devices (optionally a shard subset)."""

    def __init__(
        self,
        spec: FleetSpec,
        pool: WindowPool,
        master_seed: int = 0,
        device_ids: Optional[Sequence[int]] = None,
    ) -> None:
        self.spec = spec
        self.pool = pool
        self.master_seed = int(master_seed)
        ids = range(spec.n_devices) if device_ids is None else device_ids
        mutators = spec.build_mutators()
        self.devices = [
            VirtualDevice(device_id, pool, mutators, spec, master_seed=master_seed)
            for device_id in ids
        ]

    def __len__(self) -> int:
        return len(self.devices)

    @property
    def window_shape(self) -> Tuple[int, ...]:
        """Shape of one emitted window."""
        return self.pool.window_shape

    def arrivals(self, tick: int) -> Tuple[List[WindowArrival], int]:
        """All arrivals for ``tick`` in device-id order, plus the online count."""
        batch: List[WindowArrival] = []
        online = 0
        for device in self.devices:
            if device.online(tick):
                online += 1
                batch.extend(device._emit_online(tick))
        return batch, online
