"""The streaming engines: event-clocked fleet traffic through the HEC system.

:class:`FleetEngine` drains per-tick arrival queues from a
:class:`~repro.fleet.devices.DeviceFleet` through the trained bandit policy
and :meth:`~repro.hec.simulation.HECSystem.detect_batch` — one context
extraction and one policy forward per tick, one batched detector call per
selected layer — feeding a :class:`~repro.fleet.metrics.StreamingMetrics`
aggregator so the full trace is never materialised.

:class:`ShardedFleetEngine` partitions the device ids across
``multiprocessing`` workers, runs one :class:`FleetEngine` per shard and
merges the per-shard aggregators in shard order.  Because every device owns
an RNG derived from its id (not from its shard), the merged counts are
independent of the partitioning, and a single-shard run is bit-identical to
the unsharded engine — a property pinned by the equivalence tests.

Both engines accept an optional adaptation ``controller`` (see
:mod:`repro.adapt.controller`): per tick the engine feeds it every detected
batch and calls its ``end_tick`` hook at the tick boundary, which is where
drift-triggered retrains and atomic detector hot-swaps happen.  With no
controller the streaming loop is unchanged — not a single extra RNG draw —
so a run with adaptation disabled stays bit-identical to the pre-adaptation
engine (pinned by test).
"""

from __future__ import annotations

import multiprocessing
import warnings
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.bandit.context import ContextExtractor
from repro.bandit.policy_network import PolicyNetwork
from repro.exceptions import ConfigurationError
from repro.fleet.devices import DeviceFleet, WindowPool
from repro.fleet.metrics import StreamingMetrics
from repro.fleet.report import FleetReport, report_from_metrics
from repro.fleet.spec import FleetSpec
from repro.hec.simulation import HECSystem


def _default_tier_names(n_layers: int) -> Tuple[str, ...]:
    return tuple(f"layer-{layer}" for layer in range(n_layers))


class FleetEngine:
    """Stream one (subset of a) device fleet through a deployed HEC system."""

    def __init__(
        self,
        system: HECSystem,
        policy: PolicyNetwork,
        context_extractor: ContextExtractor,
        spec: FleetSpec,
        pool: WindowPool,
        master_seed: int = 0,
        name: str = "fleet",
        tier_names: Optional[Sequence[str]] = None,
        device_ids: Optional[Sequence[int]] = None,
        controller=None,
    ) -> None:
        if policy.n_actions != system.n_layers:
            raise ConfigurationError(
                f"policy has {policy.n_actions} actions but the HEC system has "
                f"{system.n_layers} layers"
            )
        self.system = system
        self.policy = policy
        self.context_extractor = context_extractor
        self.spec = spec
        self.pool = pool
        self.master_seed = int(master_seed)
        self.name = name
        self.tier_names = tuple(tier_names) if tier_names else _default_tier_names(
            system.n_layers
        )
        if len(self.tier_names) != system.n_layers:
            raise ConfigurationError(
                f"got {len(self.tier_names)} tier names for {system.n_layers} layers"
            )
        self.device_ids = (
            tuple(int(d) for d in device_ids) if device_ids is not None else None
        )
        #: Optional :class:`~repro.adapt.controller.AdaptationController`.
        #: ``None`` keeps the streaming loop bit-identical to the
        #: pre-adaptation engine (no extra draws, no extra branches taken).
        self.controller = controller

    @property
    def n_devices(self) -> int:
        """Devices this engine simulates (the subset size when sharded)."""
        if self.device_ids is not None:
            return len(self.device_ids)
        return self.spec.n_devices

    def run_metrics(self) -> StreamingMetrics:
        """The core streaming loop; returns the filled metrics aggregator."""
        spec = self.spec
        system = self.system
        system.reset()
        # Streams run against a warmed system: keep-alive connections are
        # established up front, so every request sees steady-state delays and
        # the per-request delay stream is independent of shard partitioning.
        system.topology.warm_links()
        # The event log would grow with the stream; the aggregator is the
        # bounded-memory replacement, so logging is suspended for the run.
        previous_record_log = system.record_log
        system.record_log = False
        try:
            fleet = DeviceFleet(
                spec, self.pool, master_seed=self.master_seed, device_ids=self.device_ids
            )
            metrics = StreamingMetrics(
                ticks=spec.ticks,
                metrics_window=spec.metrics_window,
                n_layers=system.n_layers,
                reservoir_size=spec.reservoir_size,
                seed_entropy=(self.master_seed, spec.seed),
            )
            for tick in range(spec.ticks):
                arrivals, online = fleet.arrivals(tick)
                metrics.record_uptime(online, len(fleet) - online)
                if arrivals:
                    windows = np.stack([arrival.window for arrival in arrivals])
                    labels = np.asarray(
                        [arrival.label for arrival in arrivals], dtype=int
                    )
                    contexts = self.context_extractor.extract(windows)
                    actions = self.policy.select_actions(contexts, greedy=True)
                    for action in np.unique(actions):
                        chosen = np.flatnonzero(actions == action)
                        records = system.detect_batch(
                            int(action), windows[chosen], ground_truths=labels[chosen]
                        )
                        predictions = np.asarray([r.prediction for r in records])
                        metrics.observe(
                            tick,
                            int(action),
                            predictions=predictions,
                            labels=labels[chosen],
                            delays_ms=np.asarray([r.delay_ms for r in records]),
                        )
                        if self.controller is not None:
                            self.controller.observe_batch(
                                tick,
                                int(action),
                                windows=windows[chosen],
                                predictions=predictions,
                                labels=labels[chosen],
                                scores=np.asarray(
                                    [r.anomaly_score for r in records]
                                ),
                            )
                if self.controller is not None:
                    # The tick boundary: drift decisions, gated retrains and
                    # atomic detector swaps happen between ticks, never
                    # inside one, so no batch sees a half-updated model.
                    self.controller.end_tick(tick)
        finally:
            system.record_log = previous_record_log
        return metrics

    def run(self) -> FleetReport:
        """Stream the fleet and assemble the :class:`FleetReport`."""
        metrics = self.run_metrics()
        timeline = self.controller.timeline() if self.controller is not None else None
        return report_from_metrics(
            self.name,
            metrics,
            self.tier_names,
            n_devices=self.n_devices,
            adaptation=timeline,
        )


def _run_shard_worker(payload: dict) -> StreamingMetrics:
    """Module-level shard entry point (must be picklable for the pool)."""
    engine = FleetEngine(**payload)
    return engine.run_metrics()


class ShardedFleetEngine:
    """Partition the fleet across worker processes and merge deterministically.

    Multi-shard runs require jitter-free links (the paper's configuration):
    per-transfer jitter draws would come from each shard's own link replicas
    and so depend on the partitioning, which would break the merge contract.
    """

    def __init__(
        self,
        system: HECSystem,
        policy: PolicyNetwork,
        context_extractor: ContextExtractor,
        spec: FleetSpec,
        pool: WindowPool,
        master_seed: int = 0,
        name: str = "fleet",
        tier_names: Optional[Sequence[str]] = None,
        n_shards: Optional[int] = None,
        parallel: bool = True,
        controller=None,
    ) -> None:
        self.n_shards = int(n_shards) if n_shards is not None else spec.n_shards
        if self.n_shards <= 0:
            raise ConfigurationError(f"n_shards must be positive, got {self.n_shards}")
        if self.n_shards > spec.n_devices:
            raise ConfigurationError(
                f"n_shards ({self.n_shards}) cannot exceed n_devices ({spec.n_devices})"
            )
        self.system = system
        self.policy = policy
        self.context_extractor = context_extractor
        self.spec = spec
        self.pool = pool
        self.master_seed = int(master_seed)
        self.name = name
        self.tier_names = tuple(tier_names) if tier_names else _default_tier_names(
            system.n_layers
        )
        self.parallel = bool(parallel)
        self.controller = controller
        if self.n_shards > 1 and any(
            link.jitter_ms > 0.0 for link in system.topology.links
        ):
            # Jittery links draw per-transfer RNG from each shard's own link
            # replicas, so the delay stream would depend on the partitioning —
            # the determinism contract only holds on jitter-free links.
            raise ConfigurationError(
                "ShardedFleetEngine requires jitter-free links for n_shards > 1 "
                "(per-transfer jitter draws would depend on the device "
                "partitioning); set link jitter_ms=0 or use n_shards=1"
            )

    def _shard_payloads(self) -> List[dict]:
        partitions = np.array_split(np.arange(self.spec.n_devices), self.n_shards)
        return [
            {
                "system": self.system,
                "policy": self.policy,
                "context_extractor": self.context_extractor,
                "spec": self.spec,
                "pool": self.pool,
                "master_seed": self.master_seed,
                "name": self.name,
                "tier_names": self.tier_names,
                "device_ids": partition.tolist(),
            }
            for partition in partitions
        ]

    def _run_shards(self) -> List[StreamingMetrics]:
        payloads = self._shard_payloads()
        if self.n_shards == 1 or not self.parallel:
            # In-process path: FleetEngine.run_metrics resets the shared
            # system before each shard, so sequential shards stay isolated.
            return [_run_shard_worker(payload) for payload in payloads]
        try:
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else methods[0]
            )
            with context.Pool(processes=self.n_shards) as worker_pool:
                # map() preserves shard order, which the merge relies on.
                return worker_pool.map(_run_shard_worker, payloads)
        except (OSError, ValueError, multiprocessing.ProcessError):
            return [_run_shard_worker(payload) for payload in payloads]

    def run(self) -> FleetReport:
        """Run every shard, merge in shard order and assemble the report."""
        if self.controller is not None:
            # Adaptation is tick-synchronous global state (monitors, a shared
            # registry, live detector swaps), so an adaptive run streams the
            # whole fleet through one in-process engine.  Device streams are
            # partition-independent, so every count matches what a sharded
            # merge would have produced; only the delay-reservoir subsampling
            # (which sharded merges re-draw) uses the unsharded path.
            if self.n_shards > 1:
                warnings.warn(
                    f"adaptive streaming is tick-synchronous; running the "
                    f"{self.n_shards}-shard fleet through one in-process "
                    "engine (counts are partition-independent and identical; "
                    "delay percentiles use the unsharded reservoir)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return FleetEngine(
                system=self.system,
                policy=self.policy,
                context_extractor=self.context_extractor,
                spec=self.spec,
                pool=self.pool,
                master_seed=self.master_seed,
                name=self.name,
                tier_names=self.tier_names,
                controller=self.controller,
            ).run()
        parts = self._run_shards()
        metrics = StreamingMetrics.merge(
            parts, seed_entropy=(self.master_seed, self.spec.seed)
        )
        return report_from_metrics(
            self.name, metrics, self.tier_names, n_devices=self.spec.n_devices
        )
