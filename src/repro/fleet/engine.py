"""The streaming engines: event-clocked fleet traffic through the HEC system.

:class:`FleetEngine` drains per-tick arrival queues from a
:class:`~repro.fleet.devices.DeviceFleet` through the trained bandit policy
and the HEC system — one context extraction and one policy forward per tick,
one batched detector call per selected layer — feeding a
:class:`~repro.fleet.metrics.StreamingMetrics` aggregator so the full trace
is never materialised.

Two streaming paths share one determinism contract:

* the **columnar fast path** (default) — struct-of-arrays end to end:
  :meth:`~repro.fleet.devices.DeviceFleet.arrivals_columnar` arrays in,
  :meth:`~repro.hec.simulation.HECSystem.detect_batch_columnar` arrays out,
  tick-batched metric/controller feeds, zero per-window objects;
* the **legacy per-window path** (``columnar=False``) — the reference
  implementation the fast path is pinned bit-identical against (same
  per-device RNG streams, same per-tick forward batches, same counts,
  confusions, utilisation and delay sums, hence an equal
  :class:`~repro.fleet.report.FleetReport`).

:class:`ShardedFleetEngine` partitions the device ids across worker
processes, runs one :class:`FleetEngine` per shard and merges the per-shard
aggregators in shard order.  Because every device owns an RNG derived from
its id (not from its shard), the merged counts are independent of the
partitioning, and a single-shard run is bit-identical to the unsharded
engine — a property pinned by the equivalence tests.  Worker pools persist
across runs and shard payloads ship zero-copy (see
:mod:`repro.fleet.sharding`); with ``parallel="auto"`` the engine only forks
when more than one CPU is actually available — on a single-core host the
shards run serially in-process, which is strictly cheaper than time-slicing
workers plus IPC.

Both engines accept an optional adaptation ``controller`` (see
:mod:`repro.adapt.controller`): per tick the engine feeds it every detected
batch and calls its ``end_tick`` hook at the tick boundary, which is where
drift-triggered retrains and atomic detector hot-swaps happen.  With no
controller the streaming loop is unchanged — not a single extra RNG draw —
so a run with adaptation disabled stays bit-identical to the pre-adaptation
engine (pinned by test).

Fault tolerance rides on the same boundaries.  With a ``checkpoint_dir`` the
engine durably snapshots its state (metrics, system, controller) every
``checkpoint_cadence`` ticks through :class:`~repro.fleet.checkpoint.
CheckpointStore`; ``run(resume=True)`` (or :meth:`FleetEngine.resume`)
rebuilds the devices, *replays* their arrival draws up to the checkpointed
tick — per-device RNG streams are pure functions of the seeds, so replay is
cheaper and safer than snapshotting thousands of generator states — and
continues bit-identical to an uninterrupted run.  A
:class:`~repro.fleet.faults.FaultSpec` on the engine drives deterministic
fault injection at tick boundaries: link degradation/outage (the system fails
over to the best reachable tier), injected shard crashes
(:class:`~repro.fleet.faults.WorkerCrash`, recovered by the sharded engine
from the shard's own checkpoints) and mid-run process kills.  One-shot
kill/crash events are disarmed on resumed runs so recovery cannot re-trigger
the fault that killed the original run.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import warnings
from time import perf_counter
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.bandit.context import ContextExtractor
from repro.bandit.policy_network import PolicyNetwork
from repro.exceptions import ConfigurationError, ReproError
from repro.fleet import sharding
from repro.fleet.checkpoint import CheckpointStore, shard_checkpoint_dir
from repro.fleet.devices import DeviceFleet, WindowPool
from repro.fleet.faults import FaultSchedule, FaultSpec, WorkerCrash
from repro.fleet.metrics import StreamingMetrics
from repro.fleet.profiling import STAGES, StageProfiler
from repro.fleet.report import FleetReport, report_from_metrics
from repro.fleet.spec import FleetSpec
from repro.hec.simulation import HECSystem
from repro.obs.export import Telemetry

#: Bucket bounds for the checkpoint save/load timing histograms (seconds).
_SECONDS_BUCKETS = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0,
)


def _default_tier_names(n_layers: int) -> Tuple[str, ...]:
    return tuple(f"layer-{layer}" for layer in range(n_layers))


#: Whether the degraded-parallelism warning already fired this process.
_pool_fallback_warned = False


def _warn_pool_fallback_once(exc: BaseException) -> None:
    """Satellite contract: a silent serial fallback hides broken parallelism
    from benchmarks and CI logs, so name the failure — once per process."""
    global _pool_fallback_warned
    if _pool_fallback_warned:
        return
    _pool_fallback_warned = True
    warnings.warn(
        f"sharded fleet worker pool failed ({type(exc).__name__}: {exc}); "
        "falling back to serial in-process shards — throughput numbers from "
        "this run do not measure parallel scaling",
        RuntimeWarning,
        stacklevel=3,
    )


class FleetEngine:
    """Stream one (subset of a) device fleet through a deployed HEC system."""

    def __init__(
        self,
        system: HECSystem,
        policy: PolicyNetwork,
        context_extractor: ContextExtractor,
        spec: FleetSpec,
        pool: WindowPool,
        master_seed: int = 0,
        name: str = "fleet",
        tier_names: Optional[Sequence[str]] = None,
        device_ids: Optional[Sequence[int]] = None,
        controller=None,
        columnar: bool = True,
        profiler: Optional[StageProfiler] = None,
        telemetry: Optional[Telemetry] = None,
        faults: Optional[FaultSpec] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_cadence: int = 0,
        shard_index: int = 0,
    ) -> None:
        if policy.n_actions != system.n_layers:
            raise ConfigurationError(
                f"policy has {policy.n_actions} actions but the HEC system has "
                f"{system.n_layers} layers"
            )
        if checkpoint_cadence < 0:
            raise ConfigurationError(
                f"checkpoint_cadence must be non-negative, got {checkpoint_cadence}"
            )
        self.system = system
        self.policy = policy
        self.context_extractor = context_extractor
        self.spec = spec
        self.pool = pool
        self.master_seed = int(master_seed)
        self.name = name
        self.tier_names = tuple(tier_names) if tier_names else _default_tier_names(
            system.n_layers
        )
        if len(self.tier_names) != system.n_layers:
            raise ConfigurationError(
                f"got {len(self.tier_names)} tier names for {system.n_layers} layers"
            )
        self.device_ids = (
            tuple(int(d) for d in device_ids) if device_ids is not None else None
        )
        #: Optional :class:`~repro.adapt.controller.AdaptationController`.
        #: ``None`` keeps the streaming loop bit-identical to the
        #: pre-adaptation engine (no extra draws, no extra branches taken).
        self.controller = controller
        #: Whether to stream through the columnar fast path (bit-identical to
        #: the legacy per-window path; ``False`` runs the reference loop).
        self.columnar = bool(columnar)
        #: Optional :class:`~repro.fleet.profiling.StageProfiler`.
        self.profiler = profiler
        #: Optional :class:`~repro.obs.export.Telemetry` session.  ``None``
        #: keeps every instrumentation site down to one ``is None`` check;
        #: a session never draws RNG, so a telemetry-enabled run streams
        #: bit-identical to a disabled one (pinned by test).
        self.telemetry = telemetry
        #: The root span of the current run (tracing-enabled sessions only).
        self._run_span = None
        #: Optional deterministic fault injection (see :mod:`repro.fleet.faults`).
        self.faults = faults
        self._schedule = FaultSchedule(faults) if faults is not None else None
        #: Directory for durable checkpoints (``None`` disables checkpointing).
        self.checkpoint_dir = str(checkpoint_dir) if checkpoint_dir else None
        #: Save a checkpoint every this many ticks (0 = never save; resume
        #: from an existing directory still works).
        self.checkpoint_cadence = int(checkpoint_cadence)
        #: Which shard of a sharded run this engine is (0 when unsharded);
        #: shard-crash fault events fire only on their matching shard.
        self.shard_index = int(shard_index)
        # One-shot kill/crash events are armed only on non-resumed runs —
        # set per run_metrics() call; True here so a bare engine is armed.
        self._armed = True

    @property
    def n_devices(self) -> int:
        """Devices this engine simulates (the subset size when sharded)."""
        if self.device_ids is not None:
            return len(self.device_ids)
        return self.spec.n_devices

    def run_metrics(self, resume: bool = False) -> StreamingMetrics:
        """The core streaming loop; returns the filled metrics aggregator.

        ``resume=True`` continues from the newest durable checkpoint in
        :attr:`checkpoint_dir` (bit-identical to an uninterrupted run) and
        disarms one-shot kill/crash fault events so recovery cannot re-die
        on the fault that ended the original run.  With no checkpoint on
        disk (or no checkpoint directory at all) a resumed run simply
        streams from tick 0, faults disarmed.
        """
        spec = self.spec
        system = self.system
        started = perf_counter()
        self._armed = not resume
        telemetry = self.telemetry
        if telemetry is not None:
            if self.profiler is None:
                # Stage attribution doubles as the substrate of the per-tick
                # spans, so a telemetry run always profiles — into the session
                # registry, so the same numbers land in the exported metrics.
                self.profiler = StageProfiler(registry=telemetry.registry)
            if self.controller is not None:
                self.controller.telemetry = telemetry
            if telemetry.trace_enabled:
                self._run_span = telemetry.tracer.start_span(
                    "fleet.run",
                    run=self.name,
                    shard=self.shard_index,
                    ticks=spec.ticks,
                    devices=self.n_devices,
                    resume=bool(resume),
                )
        store = (
            CheckpointStore(self.checkpoint_dir)
            if self.checkpoint_dir is not None
            else None
        )
        system.reset()
        # Streams run against a warmed system: keep-alive connections are
        # established up front, so every request sees steady-state delays and
        # the per-request delay stream is independent of shard partitioning.
        system.topology.warm_links()
        if self.faults is not None:
            system.configure_failover(
                retries=self.faults.failover_retries,
                timeout_ms=self.faults.retry_timeout_ms,
            )
        # The event log would grow with the stream; the aggregator is the
        # bounded-memory replacement, so logging is suspended for the run.
        previous_record_log = system.record_log
        system.record_log = False
        try:
            # The legacy reference path builds its fleet cold (cache=False):
            # the oracle must not share creation/stream-cache state with the
            # fast path it is the oracle *for*.
            fleet = DeviceFleet(
                spec,
                self.pool,
                master_seed=self.master_seed,
                device_ids=self.device_ids,
                cache=self.columnar,
            )
            metrics = StreamingMetrics(
                ticks=spec.ticks,
                metrics_window=spec.metrics_window,
                n_layers=system.n_layers,
                reservoir_size=spec.reservoir_size,
                seed_entropy=(self.master_seed, spec.seed),
            )
            start_tick = 0
            if resume and store is not None:
                mark = perf_counter()
                payload = store.latest()
                if payload is not None:
                    start_tick = self._restore_checkpoint(payload, metrics)
                    self._fast_forward(fleet, start_tick)
                    if telemetry is not None:
                        elapsed = perf_counter() - mark
                        telemetry.registry.histogram(
                            "checkpoint_load_seconds",
                            "Checkpoint restore + arrival-replay latency.",
                            buckets=_SECONDS_BUCKETS,
                        ).observe(elapsed)
                        telemetry.event(
                            "checkpoint.load",
                            tick=start_tick,
                            shard=self.shard_index,
                            seconds=elapsed,
                        )
            if self.columnar:
                self._stream_columnar(fleet, metrics, start_tick, store)
            else:
                self._stream_legacy(fleet, metrics, start_tick, store)
        finally:
            system.record_log = previous_record_log
        if self.profiler is not None:
            # Accumulate: serial shard engines share one profiler, so totals
            # and window counts add up across shards.
            self.profiler.total_seconds = (
                self.profiler.total_seconds or 0.0
            ) + (perf_counter() - started)
            self.profiler.n_windows += metrics.n_windows
            self.profiler.ticks = spec.ticks
        if telemetry is not None:
            registry = telemetry.registry
            registry.counter(
                "fleet_windows_total", "Windows streamed by the fleet engines."
            ).inc(metrics.n_windows)
            registry.counter(
                "fleet_run_seconds_total", "Wall-clock seconds of fleet runs."
            ).inc(perf_counter() - started)
            if self._run_span is not None:
                self._run_span.end(windows=metrics.n_windows)
                self._run_span = None
        return metrics

    # -- fault injection & checkpointing ------------------------------------------

    def _begin_tick(self, tick: int) -> None:
        """Apply the fault schedule at the start of ``tick`` (no-op unfaulted)."""
        schedule = self._schedule
        if schedule.has_link_faults:
            schedule.apply_links(self.system, tick)
        telemetry = self.telemetry
        if telemetry is not None:
            self._record_fault_telemetry(schedule, tick)
        if not self._armed:
            return
        if schedule.crashes_shard(self.shard_index, tick):
            if telemetry is not None:
                telemetry.event(
                    "fault.shard-crash", tick=tick, shard=self.shard_index
                )
            raise WorkerCrash(
                f"injected crash of shard {self.shard_index} at tick {tick}"
            )
        if schedule.kills_process(tick):
            if telemetry is not None:
                # Best-effort: the sink's tmp file dies with the process —
                # exactly what a real crash would lose.
                telemetry.event(
                    "fault.process-kill", tick=tick, shard=self.shard_index
                )
            # The whole point: die the way a real crash does — no cleanup, no
            # exception unwinding — so resume is exercised against SIGKILL.
            os.kill(os.getpid(), signal.SIGKILL)

    def _record_fault_telemetry(self, schedule: FaultSchedule, tick: int) -> None:
        """Count active link faults; log each activation edge once."""
        telemetry = self.telemetry
        counter = telemetry.registry.counter(
            "fleet_fault_active_ticks_total",
            "Ticks spent under an active injected fault.",
            labelnames=("kind",),
        )
        for event in schedule.link_events:
            if not event.active(tick):
                continue
            counter.labels(kind=event.kind).value += 1
            if tick == event.at_tick:
                telemetry.event(
                    "fault.link",
                    fault=event.kind,
                    tick=tick,
                    link=event.link,
                    factor=event.factor,
                    until_tick=event.until_tick,
                )

    def _maybe_checkpoint(
        self, store: Optional[CheckpointStore], tick: int, metrics: StreamingMetrics
    ) -> None:
        """Durably checkpoint at the boundary after ``tick`` when it is due.

        Runs after ``controller.end_tick`` (the snapshot must include the
        boundary's swaps) and draws no RNG, so a checkpointed run streams
        bit-identical to an uncheckpointed one.  The final boundary is never
        saved — a finished run has nothing to resume.
        """
        if store is None or self.checkpoint_cadence <= 0:
            return
        boundary = tick + 1
        if boundary % self.checkpoint_cadence == 0 and boundary < self.spec.ticks:
            telemetry = self.telemetry
            if telemetry is None:
                store.save(self._checkpoint_payload(boundary, metrics), boundary)
                return
            mark = perf_counter()
            path = store.save(self._checkpoint_payload(boundary, metrics), boundary)
            elapsed = perf_counter() - mark
            size = path.stat().st_size
            registry = telemetry.registry
            registry.histogram(
                "checkpoint_save_seconds",
                "Durable checkpoint save latency.",
                buckets=_SECONDS_BUCKETS,
            ).observe(elapsed)
            registry.counter(
                "checkpoint_saves_total", "Durable checkpoints written."
            ).inc()
            registry.counter(
                "checkpoint_saved_bytes_total", "Bytes of checkpoints written."
            ).inc(size)
            telemetry.event(
                "checkpoint.save",
                tick=boundary,
                shard=self.shard_index,
                bytes=size,
                seconds=elapsed,
            )

    def _checkpoint_payload(self, tick: int, metrics: StreamingMetrics) -> dict:
        from repro.fleet.checkpoint import CHECKPOINT_FORMAT

        return {
            "format": CHECKPOINT_FORMAT,
            "tick": int(tick),
            "name": self.name,
            "shard_index": self.shard_index,
            "metrics": metrics.snapshot_state(),
            "system": self.system.snapshot_state(),
            "controller": (
                self.controller.snapshot_state()
                if self.controller is not None
                else None
            ),
        }

    def _restore_checkpoint(self, payload: dict, metrics: StreamingMetrics) -> int:
        """Load a checkpoint payload into this run's state; returns the tick."""
        if payload.get("controller") is not None and self.controller is None:
            raise ConfigurationError(
                "checkpoint was written by an adaptive run; resume with the "
                "adaptation controller enabled"
            )
        if self.controller is not None and payload.get("controller") is None:
            raise ConfigurationError(
                "checkpoint was written without adaptation; resume with the "
                "adaptation controller disabled"
            )
        metrics.restore_state(payload["metrics"])
        self.system.restore_state(payload["system"])
        if self.controller is not None:
            self.controller.restore_state(payload["controller"])
        return int(payload["tick"])

    def _fast_forward(self, fleet: DeviceFleet, start_tick: int) -> None:
        """Replay (and discard) arrivals for ticks ``0..start_tick - 1``.

        Checkpoints never store per-device RNG states; a device's stream is a
        pure function of the seeds, so replaying the draws restores every
        generator to exactly where the checkpointed run left it — and cached
        fleet configurations replay from the stream cache without consuming
        RNG at all, which is the same bookkeeping the live loop relies on.
        """
        for tick in range(start_tick):
            if self.columnar:
                fleet.arrivals_columnar(tick)
            else:
                fleet.arrivals(tick)

    # -- streaming loops ----------------------------------------------------------

    def _stream_columnar(
        self,
        fleet: DeviceFleet,
        metrics: StreamingMetrics,
        start_tick: int = 0,
        store: Optional[CheckpointStore] = None,
    ) -> None:
        """The struct-of-arrays loop: arrays in, arrays out, no objects."""
        system = self.system
        controller = self.controller
        profiler = self.profiler
        telemetry = self.telemetry
        tracing = telemetry is not None and telemetry.trace_enabled
        watcher = telemetry.watcher if telemetry is not None else None
        tier_cells = self._tier_cells()
        faulted = self._schedule is not None
        extract = self.context_extractor.extract
        select_actions = self.policy.select_actions
        n_fleet = len(fleet)
        for tick in range(start_tick, self.spec.ticks):
            if tracing:
                tick_span = telemetry.tracer.start_span(
                    "fleet.tick", parent=self._run_span, tick=tick
                )
                stage_mark = profiler.stage_values()
            if faulted:
                self._begin_tick(tick)
            if profiler is not None:
                mark = perf_counter()
            batch = fleet.arrivals_columnar(tick)
            if profiler is not None:
                profiler.add("arrivals", perf_counter() - mark)
            metrics.record_uptime(batch.online, n_fleet - batch.online)
            if batch.n:
                windows = batch.windows
                labels = batch.labels
                if profiler is not None:
                    mark = perf_counter()
                contexts = extract(windows)
                actions = select_actions(contexts, greedy=True)
                if profiler is not None:
                    profiler.add("context_policy", perf_counter() - mark)
                for action in np.unique(actions):
                    chosen = np.flatnonzero(actions == action)
                    if chosen.size == actions.shape[0]:
                        # One tier took the whole tick — skip the re-index
                        # copies (the arrays are already exactly the batch).
                        tier_windows, tier_labels = windows, labels
                    else:
                        tier_windows = windows[chosen]
                        tier_labels = labels[chosen]
                    if profiler is not None:
                        mark = perf_counter()
                    detected = system.detect_batch_columnar(int(action), tier_windows)
                    # Failover may have served the batch at a lower tier than
                    # the policy chose; account at the tier that did the work.
                    served = int(detected.layer)
                    if tier_cells is not None:
                        tier_cells[served].value += int(detected.n)
                    if profiler is not None:
                        now = perf_counter()
                        profiler.add("detect", now - mark)
                        mark = now
                    metrics.observe(
                        tick,
                        served,
                        predictions=detected.predictions,
                        labels=tier_labels,
                        delays_ms=detected.delays_ms,
                        redirected=detected.n if served != int(action) else 0,
                    )
                    if profiler is not None:
                        profiler.add("metrics", perf_counter() - mark)
                    if controller is not None:
                        if profiler is not None:
                            mark = perf_counter()
                        controller.observe_batch(
                            tick,
                            served,
                            windows=tier_windows,
                            predictions=detected.predictions,
                            labels=tier_labels,
                            scores=detected.anomaly_scores,
                        )
                        if profiler is not None:
                            profiler.add("adapt", perf_counter() - mark)
            if controller is not None:
                # The tick boundary: drift decisions, gated retrains and
                # atomic detector swaps happen between ticks, never inside
                # one, so no batch sees a half-updated model.
                if profiler is not None:
                    mark = perf_counter()
                if tracing:
                    # Activating the tick span parents the controller's
                    # adapt.retrain spans under this tick in the trace.
                    with telemetry.tracer.activate(tick_span):
                        controller.end_tick(tick)
                else:
                    controller.end_tick(tick)
                if profiler is not None:
                    profiler.add("adapt", perf_counter() - mark)
            self._maybe_checkpoint(store, tick, metrics)
            if tracing:
                self._end_tick_span(
                    tick_span, stage_mark, int(batch.n), int(batch.online)
                )
            if watcher is not None:
                # After the span closes: the watcher reads the registry and
                # may emit its own events, which must not nest under the tick.
                watcher.observe(tick + 1)

    def _tier_cells(self):
        """Pre-resolved per-tier window counters (``None`` untelemetered)."""
        if self.telemetry is None:
            return None
        family = self.telemetry.registry.counter(
            "fleet_tier_windows_total",
            "Windows served per tier (post-failover accounting).",
            labelnames=("tier",),
        )
        return [family.labels(tier=tier) for tier in self.tier_names]

    def _end_tick_span(self, span, stage_mark, windows: int, online: int) -> None:
        """Close a per-tick span with the stage-seconds deltas as attributes."""
        deltas = self.profiler.stage_values()
        span.end(
            windows=windows,
            online=online,
            **{
                f"{stage}_ms": (after - before) * 1000.0
                for stage, before, after in zip(STAGES, stage_mark, deltas)
            },
        )

    def _stream_legacy(
        self,
        fleet: DeviceFleet,
        metrics: StreamingMetrics,
        start_tick: int = 0,
        store: Optional[CheckpointStore] = None,
    ) -> None:
        """The per-window reference loop (the fast path's oracle)."""
        system = self.system
        controller = self.controller
        profiler = self.profiler
        telemetry = self.telemetry
        tracing = telemetry is not None and telemetry.trace_enabled
        watcher = telemetry.watcher if telemetry is not None else None
        tier_cells = self._tier_cells()
        faulted = self._schedule is not None
        for tick in range(start_tick, self.spec.ticks):
            if tracing:
                tick_span = telemetry.tracer.start_span(
                    "fleet.tick", parent=self._run_span, tick=tick
                )
                stage_mark = profiler.stage_values()
            if faulted:
                self._begin_tick(tick)
            if profiler is not None:
                mark = perf_counter()
            arrivals, online = fleet.arrivals(tick)
            if profiler is not None:
                profiler.add("arrivals", perf_counter() - mark)
            metrics.record_uptime(online, len(fleet) - online)
            if arrivals:
                if profiler is not None:
                    mark = perf_counter()
                windows = np.stack([arrival.window for arrival in arrivals])
                labels = np.asarray(
                    [arrival.label for arrival in arrivals], dtype=int
                )
                contexts = self.context_extractor.extract(windows)
                actions = self.policy.select_actions(contexts, greedy=True)
                if profiler is not None:
                    profiler.add("context_policy", perf_counter() - mark)
                for action in np.unique(actions):
                    chosen = np.flatnonzero(actions == action)
                    if profiler is not None:
                        mark = perf_counter()
                    records = system.detect_batch(
                        int(action), windows[chosen], ground_truths=labels[chosen]
                    )
                    served = int(records[0].layer) if records else int(action)
                    if tier_cells is not None:
                        tier_cells[served].value += len(records)
                    predictions = np.asarray([r.prediction for r in records])
                    if profiler is not None:
                        now = perf_counter()
                        profiler.add("detect", now - mark)
                        mark = now
                    metrics.observe(
                        tick,
                        served,
                        predictions=predictions,
                        labels=labels[chosen],
                        delays_ms=np.asarray([r.delay_ms for r in records]),
                        redirected=len(records) if served != int(action) else 0,
                    )
                    if profiler is not None:
                        profiler.add("metrics", perf_counter() - mark)
                    if self.controller is not None:
                        if profiler is not None:
                            mark = perf_counter()
                        self.controller.observe_batch(
                            tick,
                            served,
                            windows=windows[chosen],
                            predictions=predictions,
                            labels=labels[chosen],
                            scores=np.asarray(
                                [r.anomaly_score for r in records]
                            ),
                        )
                        if profiler is not None:
                            profiler.add("adapt", perf_counter() - mark)
            if controller is not None:
                if profiler is not None:
                    mark = perf_counter()
                if tracing:
                    with telemetry.tracer.activate(tick_span):
                        controller.end_tick(tick)
                else:
                    controller.end_tick(tick)
                if profiler is not None:
                    profiler.add("adapt", perf_counter() - mark)
            self._maybe_checkpoint(store, tick, metrics)
            if tracing:
                self._end_tick_span(
                    tick_span, stage_mark, len(arrivals), int(online)
                )
            if watcher is not None:
                watcher.observe(tick + 1)

    def run(self, resume: bool = False) -> FleetReport:
        """Stream the fleet and assemble the :class:`FleetReport`."""
        metrics = self.run_metrics(resume=resume)
        timeline = self.controller.timeline() if self.controller is not None else None
        return report_from_metrics(
            self.name,
            metrics,
            self.tier_names,
            n_devices=self.n_devices,
            adaptation=timeline,
        )

    def resume(self, path: Optional[str] = None) -> FleetReport:
        """Continue a killed run from its newest durable checkpoint.

        ``path`` overrides the engine's configured :attr:`checkpoint_dir`.
        The resumed run's report is bit-identical to what the uninterrupted
        run would have produced.
        """
        if path is not None:
            self.checkpoint_dir = str(path)
        if self.checkpoint_dir is None:
            raise ConfigurationError(
                "resume needs a checkpoint directory (constructor "
                "checkpoint_dir or resume(path=...))"
            )
        return self.run(resume=True)


def _run_shard_worker(payload: dict, resume: bool = False) -> "sharding.ShardResult":
    """In-process shard entry point (serial shards and the pool fallback).

    Mirrors the pooled workers' protocol: on telemetered runs the shard gets
    its own child session built from the ``obs`` recipe, and the result
    carries its compact payload for the parent to absorb.  The input dict is
    never mutated, so crash recovery can re-run from the same payload with a
    *fresh* child session (whose sink overwrites the crashed shard's
    half-written ``.tmp``).
    """
    payload = dict(payload)
    config = payload.pop("obs", None)
    child = None
    if config is not None:
        child = config.child(payload.get("shard_index", 0))
        payload["telemetry"] = child
    engine = FleetEngine(**payload)
    metrics = engine.run_metrics(resume=resume)
    return sharding.ShardResult(
        metrics=metrics,
        obs=child.shard_payload() if child is not None else None,
    )


class ShardedFleetEngine:
    """Partition the fleet across worker processes and merge deterministically.

    Multi-shard runs require jitter-free links (the paper's configuration):
    per-transfer jitter draws would come from each shard's own link replicas
    and so depend on the partitioning, which would break the merge contract.

    ``parallel`` accepts ``True`` (always fork the worker pool), ``False``
    (always run shards serially in-process) and ``"auto"`` (the default:
    fork only when the host actually has more than one CPU to run workers
    on — a single-core host pays fork/IPC overhead for pure time-slicing,
    which is exactly what made multi-shard runs *slower* than one shard).
    Attaching a profiler forces serial shards (per-stage wall-clock across
    forked workers would not add up to anything meaningful).  A telemetry
    session does *not*: each shard — pooled or serial — runs its own child
    session (``shard-NN/`` sinks mirroring the checkpoint layout, shard-
    scoped trace ids) and the parent absorbs the children in shard order
    through the deterministic registry merge algebra, so the merged metrics
    equal what a serial unsharded run records.
    """

    def __init__(
        self,
        system: HECSystem,
        policy: PolicyNetwork,
        context_extractor: ContextExtractor,
        spec: FleetSpec,
        pool: WindowPool,
        master_seed: int = 0,
        name: str = "fleet",
        tier_names: Optional[Sequence[str]] = None,
        n_shards: Optional[int] = None,
        parallel: Union[bool, str] = "auto",
        controller=None,
        columnar: bool = True,
        profiler: Optional[StageProfiler] = None,
        telemetry: Optional[Telemetry] = None,
        faults: Optional[FaultSpec] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_cadence: int = 0,
    ) -> None:
        self.n_shards = int(n_shards) if n_shards is not None else spec.n_shards
        if self.n_shards <= 0:
            raise ConfigurationError(f"n_shards must be positive, got {self.n_shards}")
        if self.n_shards > spec.n_devices:
            raise ConfigurationError(
                f"n_shards ({self.n_shards}) cannot exceed n_devices ({spec.n_devices})"
            )
        if parallel not in (True, False, "auto"):
            raise ConfigurationError(
                f"parallel must be True, False or 'auto', got {parallel!r}"
            )
        self.system = system
        self.policy = policy
        self.context_extractor = context_extractor
        self.spec = spec
        self.pool = pool
        self.master_seed = int(master_seed)
        self.name = name
        self.tier_names = tuple(tier_names) if tier_names else _default_tier_names(
            system.n_layers
        )
        self.parallel = parallel
        self.controller = controller
        self.columnar = bool(columnar)
        self.profiler = profiler
        self.telemetry = telemetry
        self.faults = faults
        #: Base checkpoint directory; shard ``i`` checkpoints under
        #: ``<dir>/shard-<i>`` so per-shard recovery never mixes stores.
        self.checkpoint_dir = str(checkpoint_dir) if checkpoint_dir else None
        self.checkpoint_cadence = int(checkpoint_cadence)
        if self.checkpoint_cadence < 0:
            raise ConfigurationError(
                f"checkpoint_cadence must be non-negative, got {checkpoint_cadence}"
            )
        if self.n_shards > 1 and any(
            link.jitter_ms > 0.0 for link in system.topology.links
        ):
            # Jittery links draw per-transfer RNG from each shard's own link
            # replicas, so the delay stream would depend on the partitioning —
            # the determinism contract only holds on jitter-free links.
            raise ConfigurationError(
                "ShardedFleetEngine requires jitter-free links for n_shards > 1 "
                "(per-transfer jitter draws would depend on the device "
                "partitioning); set link jitter_ms=0 or use n_shards=1"
            )

    def _resolve_parallel(self) -> bool:
        if self.parallel is False or self.profiler is not None:
            return False
        if self.parallel == "auto":
            # Only the CPU count matters: run_sharded itself picks the
            # transport (fork-shared state where fork exists, SharedMemory
            # pool shipping on spawn-only platforms).
            return sharding.available_cpus() > 1
        return True

    def _shared_kwargs(self) -> dict:
        return {
            "system": self.system,
            "policy": self.policy,
            "context_extractor": self.context_extractor,
            "spec": self.spec,
            "pool": self.pool,
            "master_seed": self.master_seed,
            "name": self.name,
            "tier_names": self.tier_names,
            "columnar": self.columnar,
            "faults": self.faults,
            "checkpoint_dir": self.checkpoint_dir,
            "checkpoint_cadence": self.checkpoint_cadence,
            # The frozen recipe shard workers build child telemetry sessions
            # from (None on untelemetered runs); also part of the fork-pool
            # structural key, via sharding._structural_key.
            "obs": (
                self.telemetry.shard_config() if self.telemetry is not None else None
            ),
        }

    def _partitions(self) -> List[List[int]]:
        return [
            partition.tolist()
            for partition in np.array_split(np.arange(self.spec.n_devices), self.n_shards)
        ]

    def _shard_payloads(self) -> List[dict]:
        shared = self._shared_kwargs()
        payloads = []
        for index, partition in enumerate(self._partitions()):
            payload = {
                **shared,
                "device_ids": partition,
                "profiler": self.profiler,
                "shard_index": index,
            }
            if self.n_shards == 1:
                # A 1-shard "sharded" run is just the serial run: the parent
                # session records directly (tick spans, unscoped ids) instead
                # of routing through a pointless shard-00 child.
                payload["obs"] = None
                payload["telemetry"] = self.telemetry
            if self.checkpoint_dir is not None:
                payload["checkpoint_dir"] = shard_checkpoint_dir(
                    self.checkpoint_dir, index
                )
            payloads.append(payload)
        return payloads

    def _recover_shard(self, payload: dict) -> "sharding.ShardResult":
        """Re-run a crashed shard in-process from its last durable checkpoint.

        At-most-once by construction: the dead worker returned nothing, so its
        partial stream was never merged, and the recovery run (resumed from
        the shard's own checkpoint store, crash events disarmed) produces the
        shard's complete metrics exactly once.  On telemetered runs the
        recovery builds a fresh child session whose sink overwrites the
        crashed shard's half-written ``trace.jsonl.tmp`` — the merged parent
        only ever sees the complete recovered shard.
        """
        warnings.warn(
            f"shard {payload.get('shard_index', 0)} crashed; recovering it "
            "in-process from its last checkpoint",
            RuntimeWarning,
            stacklevel=3,
        )
        return _run_shard_worker(payload, resume=True)

    def _absorb_shards(self, results: list) -> List[StreamingMetrics]:
        """Fold child telemetry into the parent session, in shard order.

        Child registries merge through the deterministic algebra (counters
        add, gauges max, histogram buckets add elementwise); in-memory
        children's spans/events re-emit through the parent sink with their
        shard-scoped ids.  Each merge is logged as a ``shard.merge`` event,
        and the parent's watcher (``--watch``) observes shard completions.
        """
        telemetry = self.telemetry
        metrics = []
        for index, result in enumerate(results):
            metrics.append(result.metrics)
            if telemetry is None or result.obs is None:
                continue
            telemetry.absorb_shard(result.obs)
            telemetry.event(
                "shard.merge", shard=index, scope=result.obs.get("scope")
            )
            if telemetry.watcher is not None:
                telemetry.watcher.observe(float(index + 1))
        return metrics

    def _run_shards(self, resume: bool = False) -> List[StreamingMetrics]:
        payloads = self._shard_payloads()
        if self.n_shards == 1 or resume or not self._resolve_parallel():
            # In-process path: FleetEngine.run_metrics resets the shared
            # system before each shard, so sequential shards stay isolated.
            # Resumed runs always take it — each shard must read its own
            # checkpoint store with the resume semantics, which the pooled
            # task protocol does not carry.
            results = []
            for payload in payloads:
                try:
                    results.append(_run_shard_worker(payload, resume=resume))
                except WorkerCrash:
                    results.append(self._recover_shard(payload))
            return self._absorb_shards(results)
        try:
            parts = sharding.run_sharded(
                self._shared_kwargs(), self._partitions(), self.n_shards
            )
        except ReproError:
            # Application errors raised inside a worker (configuration/shape
            # problems) are not pool failures: re-running them serially would
            # double the wall-clock only to raise the same error, behind a
            # warning blaming parallelism.  ConfigurationError/ShapeError also
            # subclass ValueError, so this re-raise must precede the catch.
            raise
        except (OSError, ValueError, multiprocessing.ProcessError) as exc:
            _warn_pool_fallback_once(exc)
            results = []
            for payload in payloads:
                try:
                    results.append(_run_shard_worker(payload))
                except WorkerCrash:
                    results.append(self._recover_shard(payload))
            return self._absorb_shards(results)
        # Injected shard crashes surface as WorkerCrash placeholders in the
        # pooled results; recover each from its shard checkpoint store.
        return self._absorb_shards(
            [
                self._recover_shard(payloads[index])
                if isinstance(part, WorkerCrash)
                else part
                for index, part in enumerate(parts)
            ]
        )

    def run(self, resume: bool = False) -> FleetReport:
        """Run every shard, merge in shard order and assemble the report."""
        if self.controller is not None:
            # Adaptation is tick-synchronous global state (monitors, a shared
            # registry, live detector swaps), so an adaptive run streams the
            # whole fleet through one in-process engine.  Device streams are
            # partition-independent, so every count matches what a sharded
            # merge would have produced; only the delay-reservoir subsampling
            # (which sharded merges re-draw) uses the unsharded path.
            if self.n_shards > 1:
                warnings.warn(
                    f"adaptive streaming is tick-synchronous; running the "
                    f"{self.n_shards}-shard fleet through one in-process "
                    "engine (counts are partition-independent and identical; "
                    "delay percentiles use the unsharded reservoir)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return FleetEngine(
                system=self.system,
                policy=self.policy,
                context_extractor=self.context_extractor,
                spec=self.spec,
                pool=self.pool,
                master_seed=self.master_seed,
                name=self.name,
                tier_names=self.tier_names,
                controller=self.controller,
                columnar=self.columnar,
                profiler=self.profiler,
                telemetry=self.telemetry,
                faults=self.faults,
                checkpoint_dir=(
                    shard_checkpoint_dir(self.checkpoint_dir, 0)
                    if self.checkpoint_dir is not None
                    else None
                ),
                checkpoint_cadence=self.checkpoint_cadence,
            ).run(resume=resume)
        parts = self._run_shards(resume=resume)
        metrics = StreamingMetrics.merge(
            parts, seed_entropy=(self.master_seed, self.spec.seed)
        )
        return report_from_metrics(
            self.name, metrics, self.tier_names, n_devices=self.spec.n_devices
        )

    def resume(self, path: Optional[str] = None) -> FleetReport:
        """Continue a killed sharded run from its per-shard checkpoints."""
        if path is not None:
            self.checkpoint_dir = str(path)
        if self.checkpoint_dir is None:
            raise ConfigurationError(
                "resume needs a checkpoint directory (constructor "
                "checkpoint_dir or resume(path=...))"
            )
        return self.run(resume=True)
