"""The streaming engines: event-clocked fleet traffic through the HEC system.

:class:`FleetEngine` drains per-tick arrival queues from a
:class:`~repro.fleet.devices.DeviceFleet` through the trained bandit policy
and the HEC system — one context extraction and one policy forward per tick,
one batched detector call per selected layer — feeding a
:class:`~repro.fleet.metrics.StreamingMetrics` aggregator so the full trace
is never materialised.

Two streaming paths share one determinism contract:

* the **columnar fast path** (default) — struct-of-arrays end to end:
  :meth:`~repro.fleet.devices.DeviceFleet.arrivals_columnar` arrays in,
  :meth:`~repro.hec.simulation.HECSystem.detect_batch_columnar` arrays out,
  tick-batched metric/controller feeds, zero per-window objects;
* the **legacy per-window path** (``columnar=False``) — the reference
  implementation the fast path is pinned bit-identical against (same
  per-device RNG streams, same per-tick forward batches, same counts,
  confusions, utilisation and delay sums, hence an equal
  :class:`~repro.fleet.report.FleetReport`).

:class:`ShardedFleetEngine` partitions the device ids across worker
processes, runs one :class:`FleetEngine` per shard and merges the per-shard
aggregators in shard order.  Because every device owns an RNG derived from
its id (not from its shard), the merged counts are independent of the
partitioning, and a single-shard run is bit-identical to the unsharded
engine — a property pinned by the equivalence tests.  Worker pools persist
across runs and shard payloads ship zero-copy (see
:mod:`repro.fleet.sharding`); with ``parallel="auto"`` the engine only forks
when more than one CPU is actually available — on a single-core host the
shards run serially in-process, which is strictly cheaper than time-slicing
workers plus IPC.

Both engines accept an optional adaptation ``controller`` (see
:mod:`repro.adapt.controller`): per tick the engine feeds it every detected
batch and calls its ``end_tick`` hook at the tick boundary, which is where
drift-triggered retrains and atomic detector hot-swaps happen.  With no
controller the streaming loop is unchanged — not a single extra RNG draw —
so a run with adaptation disabled stays bit-identical to the pre-adaptation
engine (pinned by test).
"""

from __future__ import annotations

import multiprocessing
import warnings
from time import perf_counter
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.bandit.context import ContextExtractor
from repro.bandit.policy_network import PolicyNetwork
from repro.exceptions import ConfigurationError, ReproError
from repro.fleet import sharding
from repro.fleet.devices import DeviceFleet, WindowPool
from repro.fleet.metrics import StreamingMetrics
from repro.fleet.profiling import StageProfiler
from repro.fleet.report import FleetReport, report_from_metrics
from repro.fleet.spec import FleetSpec
from repro.hec.simulation import HECSystem


def _default_tier_names(n_layers: int) -> Tuple[str, ...]:
    return tuple(f"layer-{layer}" for layer in range(n_layers))


#: Whether the degraded-parallelism warning already fired this process.
_pool_fallback_warned = False


def _warn_pool_fallback_once(exc: BaseException) -> None:
    """Satellite contract: a silent serial fallback hides broken parallelism
    from benchmarks and CI logs, so name the failure — once per process."""
    global _pool_fallback_warned
    if _pool_fallback_warned:
        return
    _pool_fallback_warned = True
    warnings.warn(
        f"sharded fleet worker pool failed ({type(exc).__name__}: {exc}); "
        "falling back to serial in-process shards — throughput numbers from "
        "this run do not measure parallel scaling",
        RuntimeWarning,
        stacklevel=3,
    )


class FleetEngine:
    """Stream one (subset of a) device fleet through a deployed HEC system."""

    def __init__(
        self,
        system: HECSystem,
        policy: PolicyNetwork,
        context_extractor: ContextExtractor,
        spec: FleetSpec,
        pool: WindowPool,
        master_seed: int = 0,
        name: str = "fleet",
        tier_names: Optional[Sequence[str]] = None,
        device_ids: Optional[Sequence[int]] = None,
        controller=None,
        columnar: bool = True,
        profiler: Optional[StageProfiler] = None,
    ) -> None:
        if policy.n_actions != system.n_layers:
            raise ConfigurationError(
                f"policy has {policy.n_actions} actions but the HEC system has "
                f"{system.n_layers} layers"
            )
        self.system = system
        self.policy = policy
        self.context_extractor = context_extractor
        self.spec = spec
        self.pool = pool
        self.master_seed = int(master_seed)
        self.name = name
        self.tier_names = tuple(tier_names) if tier_names else _default_tier_names(
            system.n_layers
        )
        if len(self.tier_names) != system.n_layers:
            raise ConfigurationError(
                f"got {len(self.tier_names)} tier names for {system.n_layers} layers"
            )
        self.device_ids = (
            tuple(int(d) for d in device_ids) if device_ids is not None else None
        )
        #: Optional :class:`~repro.adapt.controller.AdaptationController`.
        #: ``None`` keeps the streaming loop bit-identical to the
        #: pre-adaptation engine (no extra draws, no extra branches taken).
        self.controller = controller
        #: Whether to stream through the columnar fast path (bit-identical to
        #: the legacy per-window path; ``False`` runs the reference loop).
        self.columnar = bool(columnar)
        #: Optional :class:`~repro.fleet.profiling.StageProfiler`.
        self.profiler = profiler

    @property
    def n_devices(self) -> int:
        """Devices this engine simulates (the subset size when sharded)."""
        if self.device_ids is not None:
            return len(self.device_ids)
        return self.spec.n_devices

    def run_metrics(self) -> StreamingMetrics:
        """The core streaming loop; returns the filled metrics aggregator."""
        spec = self.spec
        system = self.system
        started = perf_counter()
        system.reset()
        # Streams run against a warmed system: keep-alive connections are
        # established up front, so every request sees steady-state delays and
        # the per-request delay stream is independent of shard partitioning.
        system.topology.warm_links()
        # The event log would grow with the stream; the aggregator is the
        # bounded-memory replacement, so logging is suspended for the run.
        previous_record_log = system.record_log
        system.record_log = False
        try:
            # The legacy reference path builds its fleet cold (cache=False):
            # the oracle must not share creation/stream-cache state with the
            # fast path it is the oracle *for*.
            fleet = DeviceFleet(
                spec,
                self.pool,
                master_seed=self.master_seed,
                device_ids=self.device_ids,
                cache=self.columnar,
            )
            metrics = StreamingMetrics(
                ticks=spec.ticks,
                metrics_window=spec.metrics_window,
                n_layers=system.n_layers,
                reservoir_size=spec.reservoir_size,
                seed_entropy=(self.master_seed, spec.seed),
            )
            if self.columnar:
                self._stream_columnar(fleet, metrics)
            else:
                self._stream_legacy(fleet, metrics)
        finally:
            system.record_log = previous_record_log
        if self.profiler is not None:
            # Accumulate: serial shard engines share one profiler, so totals
            # and window counts add up across shards.
            self.profiler.total_seconds = (
                self.profiler.total_seconds or 0.0
            ) + (perf_counter() - started)
            self.profiler.n_windows += metrics.n_windows
            self.profiler.ticks = spec.ticks
        return metrics

    def _stream_columnar(self, fleet: DeviceFleet, metrics: StreamingMetrics) -> None:
        """The struct-of-arrays loop: arrays in, arrays out, no objects."""
        system = self.system
        controller = self.controller
        profiler = self.profiler
        extract = self.context_extractor.extract
        select_actions = self.policy.select_actions
        n_fleet = len(fleet)
        for tick in range(self.spec.ticks):
            if profiler is not None:
                mark = perf_counter()
            batch = fleet.arrivals_columnar(tick)
            if profiler is not None:
                profiler.add("arrivals", perf_counter() - mark)
            metrics.record_uptime(batch.online, n_fleet - batch.online)
            if batch.n:
                windows = batch.windows
                labels = batch.labels
                if profiler is not None:
                    mark = perf_counter()
                contexts = extract(windows)
                actions = select_actions(contexts, greedy=True)
                if profiler is not None:
                    profiler.add("context_policy", perf_counter() - mark)
                for action in np.unique(actions):
                    chosen = np.flatnonzero(actions == action)
                    if chosen.size == actions.shape[0]:
                        # One tier took the whole tick — skip the re-index
                        # copies (the arrays are already exactly the batch).
                        tier_windows, tier_labels = windows, labels
                    else:
                        tier_windows = windows[chosen]
                        tier_labels = labels[chosen]
                    if profiler is not None:
                        mark = perf_counter()
                    detected = system.detect_batch_columnar(int(action), tier_windows)
                    if profiler is not None:
                        now = perf_counter()
                        profiler.add("detect", now - mark)
                        mark = now
                    metrics.observe(
                        tick,
                        int(action),
                        predictions=detected.predictions,
                        labels=tier_labels,
                        delays_ms=detected.delays_ms,
                    )
                    if profiler is not None:
                        profiler.add("metrics", perf_counter() - mark)
                    if controller is not None:
                        if profiler is not None:
                            mark = perf_counter()
                        controller.observe_batch(
                            tick,
                            int(action),
                            windows=tier_windows,
                            predictions=detected.predictions,
                            labels=tier_labels,
                            scores=detected.anomaly_scores,
                        )
                        if profiler is not None:
                            profiler.add("adapt", perf_counter() - mark)
            if controller is not None:
                # The tick boundary: drift decisions, gated retrains and
                # atomic detector swaps happen between ticks, never inside
                # one, so no batch sees a half-updated model.
                if profiler is not None:
                    mark = perf_counter()
                controller.end_tick(tick)
                if profiler is not None:
                    profiler.add("adapt", perf_counter() - mark)

    def _stream_legacy(self, fleet: DeviceFleet, metrics: StreamingMetrics) -> None:
        """The per-window reference loop (the fast path's oracle)."""
        system = self.system
        controller = self.controller
        profiler = self.profiler
        for tick in range(self.spec.ticks):
            if profiler is not None:
                mark = perf_counter()
            arrivals, online = fleet.arrivals(tick)
            if profiler is not None:
                profiler.add("arrivals", perf_counter() - mark)
            metrics.record_uptime(online, len(fleet) - online)
            if arrivals:
                if profiler is not None:
                    mark = perf_counter()
                windows = np.stack([arrival.window for arrival in arrivals])
                labels = np.asarray(
                    [arrival.label for arrival in arrivals], dtype=int
                )
                contexts = self.context_extractor.extract(windows)
                actions = self.policy.select_actions(contexts, greedy=True)
                if profiler is not None:
                    profiler.add("context_policy", perf_counter() - mark)
                for action in np.unique(actions):
                    chosen = np.flatnonzero(actions == action)
                    if profiler is not None:
                        mark = perf_counter()
                    records = system.detect_batch(
                        int(action), windows[chosen], ground_truths=labels[chosen]
                    )
                    predictions = np.asarray([r.prediction for r in records])
                    if profiler is not None:
                        now = perf_counter()
                        profiler.add("detect", now - mark)
                        mark = now
                    metrics.observe(
                        tick,
                        int(action),
                        predictions=predictions,
                        labels=labels[chosen],
                        delays_ms=np.asarray([r.delay_ms for r in records]),
                    )
                    if profiler is not None:
                        profiler.add("metrics", perf_counter() - mark)
                    if self.controller is not None:
                        if profiler is not None:
                            mark = perf_counter()
                        self.controller.observe_batch(
                            tick,
                            int(action),
                            windows=windows[chosen],
                            predictions=predictions,
                            labels=labels[chosen],
                            scores=np.asarray(
                                [r.anomaly_score for r in records]
                            ),
                        )
                        if profiler is not None:
                            profiler.add("adapt", perf_counter() - mark)
            if controller is not None:
                if profiler is not None:
                    mark = perf_counter()
                controller.end_tick(tick)
                if profiler is not None:
                    profiler.add("adapt", perf_counter() - mark)

    def run(self) -> FleetReport:
        """Stream the fleet and assemble the :class:`FleetReport`."""
        metrics = self.run_metrics()
        timeline = self.controller.timeline() if self.controller is not None else None
        return report_from_metrics(
            self.name,
            metrics,
            self.tier_names,
            n_devices=self.n_devices,
            adaptation=timeline,
        )


def _run_shard_worker(payload: dict) -> StreamingMetrics:
    """In-process shard entry point (serial shards and the pool fallback)."""
    engine = FleetEngine(**payload)
    return engine.run_metrics()


class ShardedFleetEngine:
    """Partition the fleet across worker processes and merge deterministically.

    Multi-shard runs require jitter-free links (the paper's configuration):
    per-transfer jitter draws would come from each shard's own link replicas
    and so depend on the partitioning, which would break the merge contract.

    ``parallel`` accepts ``True`` (always fork the worker pool), ``False``
    (always run shards serially in-process) and ``"auto"`` (the default:
    fork only when the host actually has more than one CPU to run workers
    on — a single-core host pays fork/IPC overhead for pure time-slicing,
    which is exactly what made multi-shard runs *slower* than one shard).
    Attaching a profiler forces serial shards (per-stage wall-clock across
    forked workers would not add up to anything meaningful).
    """

    def __init__(
        self,
        system: HECSystem,
        policy: PolicyNetwork,
        context_extractor: ContextExtractor,
        spec: FleetSpec,
        pool: WindowPool,
        master_seed: int = 0,
        name: str = "fleet",
        tier_names: Optional[Sequence[str]] = None,
        n_shards: Optional[int] = None,
        parallel: Union[bool, str] = "auto",
        controller=None,
        columnar: bool = True,
        profiler: Optional[StageProfiler] = None,
    ) -> None:
        self.n_shards = int(n_shards) if n_shards is not None else spec.n_shards
        if self.n_shards <= 0:
            raise ConfigurationError(f"n_shards must be positive, got {self.n_shards}")
        if self.n_shards > spec.n_devices:
            raise ConfigurationError(
                f"n_shards ({self.n_shards}) cannot exceed n_devices ({spec.n_devices})"
            )
        if parallel not in (True, False, "auto"):
            raise ConfigurationError(
                f"parallel must be True, False or 'auto', got {parallel!r}"
            )
        self.system = system
        self.policy = policy
        self.context_extractor = context_extractor
        self.spec = spec
        self.pool = pool
        self.master_seed = int(master_seed)
        self.name = name
        self.tier_names = tuple(tier_names) if tier_names else _default_tier_names(
            system.n_layers
        )
        self.parallel = parallel
        self.controller = controller
        self.columnar = bool(columnar)
        self.profiler = profiler
        if self.n_shards > 1 and any(
            link.jitter_ms > 0.0 for link in system.topology.links
        ):
            # Jittery links draw per-transfer RNG from each shard's own link
            # replicas, so the delay stream would depend on the partitioning —
            # the determinism contract only holds on jitter-free links.
            raise ConfigurationError(
                "ShardedFleetEngine requires jitter-free links for n_shards > 1 "
                "(per-transfer jitter draws would depend on the device "
                "partitioning); set link jitter_ms=0 or use n_shards=1"
            )

    def _resolve_parallel(self) -> bool:
        if self.parallel is False or self.profiler is not None:
            return False
        if self.parallel == "auto":
            # Only the CPU count matters: run_sharded itself picks the
            # transport (fork-shared state where fork exists, SharedMemory
            # pool shipping on spawn-only platforms).
            return sharding.available_cpus() > 1
        return True

    def _shared_kwargs(self) -> dict:
        return {
            "system": self.system,
            "policy": self.policy,
            "context_extractor": self.context_extractor,
            "spec": self.spec,
            "pool": self.pool,
            "master_seed": self.master_seed,
            "name": self.name,
            "tier_names": self.tier_names,
            "columnar": self.columnar,
        }

    def _partitions(self) -> List[List[int]]:
        return [
            partition.tolist()
            for partition in np.array_split(np.arange(self.spec.n_devices), self.n_shards)
        ]

    def _shard_payloads(self) -> List[dict]:
        shared = self._shared_kwargs()
        payloads = [
            {**shared, "device_ids": partition, "profiler": self.profiler}
            for partition in self._partitions()
        ]
        return payloads

    def _run_shards(self) -> List[StreamingMetrics]:
        if self.n_shards == 1 or not self._resolve_parallel():
            # In-process path: FleetEngine.run_metrics resets the shared
            # system before each shard, so sequential shards stay isolated.
            return [_run_shard_worker(payload) for payload in self._shard_payloads()]
        try:
            return sharding.run_sharded(
                self._shared_kwargs(), self._partitions(), self.n_shards
            )
        except ReproError:
            # Application errors raised inside a worker (configuration/shape
            # problems) are not pool failures: re-running them serially would
            # double the wall-clock only to raise the same error, behind a
            # warning blaming parallelism.  ConfigurationError/ShapeError also
            # subclass ValueError, so this re-raise must precede the catch.
            raise
        except (OSError, ValueError, multiprocessing.ProcessError) as exc:
            _warn_pool_fallback_once(exc)
            return [_run_shard_worker(payload) for payload in self._shard_payloads()]

    def run(self) -> FleetReport:
        """Run every shard, merge in shard order and assemble the report."""
        if self.controller is not None:
            # Adaptation is tick-synchronous global state (monitors, a shared
            # registry, live detector swaps), so an adaptive run streams the
            # whole fleet through one in-process engine.  Device streams are
            # partition-independent, so every count matches what a sharded
            # merge would have produced; only the delay-reservoir subsampling
            # (which sharded merges re-draw) uses the unsharded path.
            if self.n_shards > 1:
                warnings.warn(
                    f"adaptive streaming is tick-synchronous; running the "
                    f"{self.n_shards}-shard fleet through one in-process "
                    "engine (counts are partition-independent and identical; "
                    "delay percentiles use the unsharded reservoir)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return FleetEngine(
                system=self.system,
                policy=self.policy,
                context_extractor=self.context_extractor,
                spec=self.spec,
                pool=self.pool,
                master_seed=self.master_seed,
                name=self.name,
                tier_names=self.tier_names,
                controller=self.controller,
                columnar=self.columnar,
                profiler=self.profiler,
            ).run()
        parts = self._run_shards()
        metrics = StreamingMetrics.merge(
            parts, seed_entropy=(self.master_seed, self.spec.seed)
        )
        return report_from_metrics(
            self.name, metrics, self.tier_names, n_devices=self.spec.n_devices
        )
