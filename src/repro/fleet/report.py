"""The serialisable result of one fleet streaming run.

A :class:`FleetReport` is pure data summarising what
:class:`~repro.fleet.engine.FleetEngine` observed: stream totals, the
windowed online accuracy/F1 trajectory, per-tier utilisation, and delay
percentiles from the bounded reservoir.  It round-trips through JSON via
:mod:`repro.utils.serialization` and compares by value, which is what the
sharded/unsharded equivalence tests pin.

Wall-clock timing deliberately stays *out* of the report (the benchmark
harness records it separately): a report describes the simulated stream, so
two runs of the same spec — sharded or not — must produce equal reports.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.adapt.events import AdaptationTimeline
from repro.exceptions import ConfigurationError
from repro.fleet.metrics import StreamingMetrics, rates_from_confusion
from repro.utils.serialization import load_json, save_json, to_jsonable

PathLike = Union[str, Path]


@dataclass(frozen=True)
class WindowedMetrics:
    """Online metrics over one block of ``metrics_window`` ticks."""

    index: int
    tick_start: int
    n_windows: int
    accuracy: float
    f1: float
    anomaly_fraction: float
    mean_delay_ms: float

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WindowedMetrics":
        return cls(**dict(payload))


@dataclass(frozen=True)
class TierUsage:
    """How much of the stream one tier handled, and at what delay."""

    layer: int
    tier: str
    requests: int
    fraction: float
    mean_delay_ms: float
    anomalies_reported: int
    #: Requests that were redirected *to* this tier by failover because the
    #: policy's chosen tier was unreachable (zero on healthy runs; defaulted
    #: so reports written before fault injection still load).
    redirected: int = 0

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TierUsage":
        return cls(**dict(payload))


@dataclass(frozen=True)
class DelaySummary:
    """End-to-end delay statistics (percentiles from the bounded reservoir)."""

    mean_ms: float
    p50_ms: float
    p90_ms: float
    p99_ms: float
    max_ms: float
    samples_seen: int
    reservoir_size: int

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DelaySummary":
        return cls(**dict(payload))


@dataclass(frozen=True)
class FleetReport:
    """Everything one fleet streaming run produced."""

    name: str
    n_devices: int
    ticks: int
    metrics_window: int
    n_windows: int
    n_anomalous: int
    accuracy: float
    precision: float
    recall: float
    f1: float
    windowed: Tuple[WindowedMetrics, ...]
    tiers: Tuple[TierUsage, ...]
    delay: DelaySummary
    online_device_ticks: int
    offline_device_ticks: int
    #: What the adaptation loop did during the run (``None`` when the run
    #: streamed without a controller — reports from such runs stay equal to
    #: pre-adaptation reports, field for field).
    adaptation: Optional[AdaptationTimeline] = None

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready nested dictionary."""
        return to_jsonable(dataclasses.asdict(self))

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FleetReport":
        kwargs = dict(payload)
        unknown = sorted(set(kwargs) - {f.name for f in dataclasses.fields(cls)})
        if unknown:
            raise ConfigurationError(
                f"unknown key(s) {unknown} in fleet report payload"
            )
        kwargs["windowed"] = tuple(
            w if isinstance(w, WindowedMetrics) else WindowedMetrics.from_dict(w)
            for w in kwargs.get("windowed", ())
        )
        kwargs["tiers"] = tuple(
            t if isinstance(t, TierUsage) else TierUsage.from_dict(t)
            for t in kwargs.get("tiers", ())
        )
        delay = kwargs.get("delay")
        if delay is not None and not isinstance(delay, DelaySummary):
            kwargs["delay"] = DelaySummary.from_dict(delay)
        adaptation = kwargs.get("adaptation")
        if adaptation is not None and not isinstance(adaptation, AdaptationTimeline):
            kwargs["adaptation"] = AdaptationTimeline.from_dict(adaptation)
        return cls(**kwargs)

    def to_json(self, path: PathLike) -> Path:
        """Write the report as pretty-printed JSON; returns the path."""
        return save_json(path, self.to_dict())

    @classmethod
    def from_json(cls, path: PathLike) -> "FleetReport":
        """Load a report written by :meth:`to_json`."""
        return cls.from_dict(load_json(path))

    # -- presentation ------------------------------------------------------------

    def summary(self) -> str:
        """Short plain-text summary of the run."""
        lines = [
            f"Fleet report for {self.name}:",
            f"  {self.n_devices} devices x {self.ticks} ticks -> "
            f"{self.n_windows} windows ({self.n_anomalous} anomalous)",
            f"  accuracy={100 * self.accuracy:.2f}%  F1={self.f1:.3f}  "
            f"precision={self.precision:.3f}  recall={self.recall:.3f}",
            f"  delay mean={self.delay.mean_ms:.1f} ms  p50={self.delay.p50_ms:.1f}  "
            f"p90={self.delay.p90_ms:.1f}  p99={self.delay.p99_ms:.1f}",
        ]
        total_ticks = self.online_device_ticks + self.offline_device_ticks
        if total_ticks:
            lines.append(
                f"  device uptime: {100 * self.online_device_ticks / total_ticks:.1f}% "
                f"({self.offline_device_ticks} offline device-ticks)"
            )
        for tier in self.tiers:
            lines.append(
                f"  tier {tier.tier:<8s} {tier.requests:>8d} requests "
                f"({100 * tier.fraction:5.1f}%)  mean delay {tier.mean_delay_ms:8.1f} ms"
            )
        if self.adaptation is not None:
            timeline = self.adaptation
            lines.append(
                f"  adaptation: {len(timeline.drifts)} drift signal(s), "
                f"{len(timeline.retrains)} retrain(s), {len(timeline.swaps)} swap(s)"
            )
            for swap in timeline.swaps:
                lines.append(
                    f"    tick {swap.tick:>4d}  {swap.tier}: {swap.from_version} -> "
                    f"{swap.to_version}"
                    + ("  [fp16]" if swap.quantized else "")
                )
        return "\n".join(lines)


def report_from_metrics(
    name: str,
    metrics: StreamingMetrics,
    tier_names: Tuple[str, ...],
    n_devices: int,
    adaptation: Optional[AdaptationTimeline] = None,
) -> FleetReport:
    """Assemble the immutable :class:`FleetReport` from a finished aggregator."""
    if len(tier_names) != metrics.n_layers:
        raise ConfigurationError(
            f"got {len(tier_names)} tier names for {metrics.n_layers} layers"
        )
    total = rates_from_confusion(metrics.confusion)
    n_windows = metrics.n_windows

    windowed = []
    for index in range(metrics.n_metric_windows):
        counts = metrics.windowed_confusion[index]
        block = rates_from_confusion(counts)
        block_n = int(counts.sum())
        windowed.append(
            WindowedMetrics(
                index=index,
                tick_start=index * metrics.metrics_window,
                n_windows=block_n,
                accuracy=block["accuracy"],
                f1=block["f1"],
                anomaly_fraction=block["anomaly_fraction"],
                mean_delay_ms=(
                    float(metrics.windowed_delay_sum[index] / block_n) if block_n else 0.0
                ),
            )
        )

    tiers = []
    for layer, tier in enumerate(tier_names):
        requests = int(metrics.layer_requests[layer])
        tiers.append(
            TierUsage(
                layer=layer,
                tier=tier,
                requests=requests,
                fraction=float(requests / n_windows) if n_windows else 0.0,
                mean_delay_ms=(
                    float(metrics.layer_delay_sum[layer] / requests) if requests else 0.0
                ),
                anomalies_reported=int(metrics.layer_anomalies[layer]),
                redirected=int(metrics.layer_redirected[layer]),
            )
        )

    delay = DelaySummary(
        mean_ms=float(metrics.delay_sum / n_windows) if n_windows else 0.0,
        p50_ms=metrics.reservoir.percentile(50.0),
        p90_ms=metrics.reservoir.percentile(90.0),
        p99_ms=metrics.reservoir.percentile(99.0),
        max_ms=metrics.delay_max,
        samples_seen=int(metrics.reservoir.seen),
        reservoir_size=int(metrics.reservoir.capacity),
    )

    tp, fp, tn, fn = (int(c) for c in metrics.confusion)
    return FleetReport(
        name=name,
        n_devices=int(n_devices),
        ticks=metrics.ticks,
        metrics_window=metrics.metrics_window,
        n_windows=n_windows,
        n_anomalous=tp + fn,
        accuracy=total["accuracy"],
        precision=total["precision"],
        recall=total["recall"],
        f1=total["f1"],
        windowed=tuple(windowed),
        tiers=tuple(tiers),
        delay=delay,
        online_device_ticks=int(metrics.online_device_ticks),
        offline_device_ticks=int(metrics.offline_device_ticks),
        adaptation=adaptation,
    )
