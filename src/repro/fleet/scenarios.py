"""Built-in fleet scenarios.

Each scenario is an ordinary registered :class:`~repro.experiments.spec.ExperimentSpec`
whose ``fleet`` node describes the streaming workload, so the usual machinery
(``repro describe``, ``--set`` overrides, ``--seed``) applies unchanged and
``repro fleet <scenario>`` streams it after training:

* ``fleet-1k-drift`` — a thousand power-metering devices whose streams slowly
  drift away from the training distribution;
* ``fleet-burst-storm`` — fleet-wide anomaly storms hitting every device at
  once, stressing the upper tiers in bursts;
* ``fleet-churn-mixed-detectors`` — a churning fleet (devices dropping out and
  returning, windows phase-jittered) served by the mixed AE/seq2seq
  deployment.

The module is imported (and thereby registered) by :mod:`repro.experiments`,
next to the offline built-ins.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.registry import register_scenario
from repro.experiments.scenarios import mixed_detectors, univariate_power
from repro.experiments.spec import ExperimentSpec
from repro.fleet.spec import FleetSpec, MutatorSpec


@register_scenario("fleet-1k-drift", tags=("fleet", "extended"))
def fleet_1k_drift() -> ExperimentSpec:
    """1000 drifting power devices streaming through the trained 3-tier system."""
    return replace(
        univariate_power(),
        name="fleet-1k-drift",
        description=(
            "thousand-device power fleet under gradual concept drift; "
            "windowed online metrics show the deployed detectors degrading"
        ),
        fleet=FleetSpec(
            n_devices=1000,
            ticks=40,
            arrival_rate=0.2,
            anomaly_rate=0.08,
            metrics_window=8,
            mutators=(MutatorSpec(kind="concept-drift", drift_per_tick=0.02),),
        ),
    )


@register_scenario("fleet-burst-storm", tags=("fleet", "extended"))
def fleet_burst_storm() -> ExperimentSpec:
    """Fleet-wide anomaly storms: bursts of anomalous windows every few ticks."""
    return replace(
        univariate_power(),
        name="fleet-burst-storm",
        description=(
            "200-device power fleet hit by periodic fleet-wide anomaly storms "
            "(anomaly rate jumps to 60% for 4 of every 16 ticks)"
        ),
        fleet=FleetSpec(
            n_devices=200,
            ticks=48,
            arrival_rate=0.5,
            anomaly_rate=0.05,
            metrics_window=4,
            mutators=(
                MutatorSpec(
                    kind="anomaly-burst",
                    burst_period=16,
                    burst_ticks=4,
                    burst_anomaly_rate=0.6,
                ),
            ),
        ),
    )


@register_scenario("fleet-churn-mixed-detectors", tags=("fleet", "extended"))
def fleet_churn_mixed_detectors() -> ExperimentSpec:
    """A churning, phase-jittered fleet on the mixed AE/seq2seq deployment."""
    return replace(
        mixed_detectors(),
        name="fleet-churn-mixed-detectors",
        description=(
            "300-device fleet with churn (30% of devices cycle offline) and "
            "per-device phase jitter, served by AE tiers plus a seq2seq cloud"
        ),
        fleet=FleetSpec(
            n_devices=300,
            ticks=32,
            arrival_rate=0.3,
            anomaly_rate=0.1,
            metrics_window=8,
            mutators=(
                MutatorSpec(
                    kind="device-churn",
                    churn_fraction=0.3,
                    offline_ticks=4,
                    churn_period=16,
                ),
                MutatorSpec(kind="phase-jitter", max_shift=3),
            ),
        ),
    )
