"""Built-in fleet scenarios.

Each scenario is an ordinary registered :class:`~repro.experiments.spec.ExperimentSpec`
whose ``fleet`` node describes the streaming workload, so the usual machinery
(``repro describe``, ``--set`` overrides, ``--seed``) applies unchanged and
``repro fleet <scenario>`` streams it after training:

* ``fleet-1k-drift`` — a thousand power-metering devices whose streams slowly
  drift away from the training distribution;
* ``fleet-burst-storm`` — fleet-wide anomaly storms hitting every device at
  once, stressing the upper tiers in bursts;
* ``fleet-churn-mixed-detectors`` — a churning fleet (devices dropping out and
  returning, windows phase-jittered) served by the mixed AE/seq2seq
  deployment;
* ``fleet-link-outage`` — the edge->cloud uplink partitions mid-run and the
  system fails over to the best reachable tier (retry/timeout accounting);
* ``fleet-degraded-uplink`` — the device->edge uplink degrades (latency x6)
  for a stretch of the run;
* ``fleet-sensor-faults`` — stuck-at, spike and dropout sensor faults corrupt
  the observable signal while the ground truth stays intact;
* ``fleet-crash-resume`` — a sharded run whose shard 1 crashes mid-run and a
  process kill for the CI crash/resume smoke test.

The module is imported (and thereby registered) by :mod:`repro.experiments`,
next to the offline built-ins.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.registry import register_scenario
from repro.experiments.scenarios import mixed_detectors, univariate_power
from repro.experiments.spec import ExperimentSpec
from repro.fleet.faults import FaultEvent, FaultSpec
from repro.fleet.spec import FleetSpec, MutatorSpec


@register_scenario("fleet-1k-drift", tags=("fleet", "extended"))
def fleet_1k_drift() -> ExperimentSpec:
    """1000 drifting power devices streaming through the trained 3-tier system."""
    return replace(
        univariate_power(),
        name="fleet-1k-drift",
        description=(
            "thousand-device power fleet under gradual concept drift; "
            "windowed online metrics show the deployed detectors degrading"
        ),
        fleet=FleetSpec(
            n_devices=1000,
            ticks=40,
            arrival_rate=0.2,
            anomaly_rate=0.08,
            metrics_window=8,
            mutators=(MutatorSpec(kind="concept-drift", drift_per_tick=0.02),),
        ),
    )


@register_scenario("fleet-burst-storm", tags=("fleet", "extended"))
def fleet_burst_storm() -> ExperimentSpec:
    """Fleet-wide anomaly storms: bursts of anomalous windows every few ticks."""
    return replace(
        univariate_power(),
        name="fleet-burst-storm",
        description=(
            "200-device power fleet hit by periodic fleet-wide anomaly storms "
            "(anomaly rate jumps to 60% for 4 of every 16 ticks)"
        ),
        fleet=FleetSpec(
            n_devices=200,
            ticks=48,
            arrival_rate=0.5,
            anomaly_rate=0.05,
            metrics_window=4,
            mutators=(
                MutatorSpec(
                    kind="anomaly-burst",
                    burst_period=16,
                    burst_ticks=4,
                    burst_anomaly_rate=0.6,
                ),
            ),
        ),
    )


@register_scenario("fleet-churn-mixed-detectors", tags=("fleet", "extended"))
def fleet_churn_mixed_detectors() -> ExperimentSpec:
    """A churning, phase-jittered fleet on the mixed AE/seq2seq deployment."""
    return replace(
        mixed_detectors(),
        name="fleet-churn-mixed-detectors",
        description=(
            "300-device fleet with churn (30% of devices cycle offline) and "
            "per-device phase jitter, served by AE tiers plus a seq2seq cloud"
        ),
        fleet=FleetSpec(
            n_devices=300,
            ticks=32,
            arrival_rate=0.3,
            anomaly_rate=0.1,
            metrics_window=8,
            mutators=(
                MutatorSpec(
                    kind="device-churn",
                    churn_fraction=0.3,
                    offline_ticks=4,
                    churn_period=16,
                ),
                MutatorSpec(kind="phase-jitter", max_shift=3),
            ),
        ),
    )


@register_scenario("fleet-link-outage", tags=("fleet", "faults", "extended"))
def fleet_link_outage() -> ExperimentSpec:
    """The edge->cloud uplink partitions mid-run; requests fail over downward.

    Recovery contract (pinned by the fault-tolerance tests): while the link is
    down, tier utilisation shifts off the cloud onto the best reachable tier,
    every redirected request is charged ``failover_retries * retry_timeout_ms``
    of retry delay, and detection quality holds at the serving tier's level.
    """
    return replace(
        univariate_power(),
        name="fleet-link-outage",
        description=(
            "200-device power fleet whose edge->cloud uplink is partitioned "
            "for ticks [12, 28); cloud-bound requests fail over to the edge "
            "with retry/timeout delay accounting"
        ),
        fleet=FleetSpec(
            n_devices=200,
            ticks=40,
            arrival_rate=0.4,
            anomaly_rate=0.08,
            metrics_window=8,
        ),
        faults=FaultSpec(
            events=(FaultEvent(kind="link-down", at_tick=12, until_tick=28, link=1),),
            failover_retries=2,
            retry_timeout_ms=150.0,
        ),
    )


@register_scenario("fleet-degraded-uplink", tags=("fleet", "faults", "extended"))
def fleet_degraded_uplink() -> ExperimentSpec:
    """The device->edge uplink degrades (latency x6) for a stretch of the run."""
    return replace(
        univariate_power(),
        name="fleet-degraded-uplink",
        description=(
            "200-device power fleet whose device->edge uplink runs at 6x "
            "latency for ticks [8, 24); escalated requests pay the degraded "
            "transfer delay but no tier becomes unreachable"
        ),
        fleet=FleetSpec(
            n_devices=200,
            ticks=32,
            arrival_rate=0.4,
            anomaly_rate=0.08,
            metrics_window=8,
        ),
        faults=FaultSpec(
            events=(
                FaultEvent(kind="link-degrade", at_tick=8, until_tick=24, link=0, factor=6.0),
            ),
        ),
    )


@register_scenario("fleet-sensor-faults", tags=("fleet", "faults", "extended"))
def fleet_sensor_faults() -> ExperimentSpec:
    """Stuck-at, spike and dropout sensor faults corrupt the observable signal."""
    return replace(
        univariate_power(),
        name="fleet-sensor-faults",
        description=(
            "200-device power fleet with faulty sensors: 10% stuck at a "
            "constant reading, random single-sample spikes, and 10% of "
            "devices going silent mid-run; labels stay intact so the online "
            "metrics expose the detection-quality cost of sensor faults"
        ),
        fleet=FleetSpec(
            n_devices=200,
            ticks=32,
            arrival_rate=0.4,
            anomaly_rate=0.08,
            metrics_window=8,
            mutators=(
                MutatorSpec(kind="sensor-stuck", stuck_fraction=0.1, stuck_scale=1.0),
                MutatorSpec(kind="sensor-spike", spike_rate=0.05, spike_magnitude=6.0),
                MutatorSpec(kind="sensor-dropout", dropout_fraction=0.1, dropout_horizon=32),
            ),
        ),
    )


@register_scenario("fleet-shard-crash", tags=("fleet", "faults", "extended"))
def fleet_shard_crash() -> ExperimentSpec:
    """A sharded fleet whose shard 1 worker crashes mid-run and is re-executed.

    Recovery contract (pinned by the fault-tolerance tests): the sharded
    engine re-runs only the lost shard (from its last checkpoint when one
    exists) and merges it at-most-once — the final report carries the exact
    same counts as a crash-free run.
    """
    return replace(
        univariate_power(),
        name="fleet-shard-crash",
        description=(
            "128-device fleet across 2 shards; the shard-1 worker crashes at "
            "tick 9 and the engine recovers it without double-counting"
        ),
        fleet=FleetSpec(
            n_devices=128,
            ticks=24,
            arrival_rate=0.5,
            anomaly_rate=0.1,
            metrics_window=4,
            n_shards=2,
        ),
        faults=FaultSpec(
            events=(FaultEvent(kind="shard-crash", at_tick=9, shard=1),),
        ),
    )


@register_scenario("fleet-crash-resume", tags=("fleet", "faults", "extended"))
def fleet_crash_resume() -> ExperimentSpec:
    """The streaming process is SIGKILLed mid-run; ``repro resume`` continues it.

    Recovery contract (pinned by the fault-tolerance tests and the CI
    crash/resume smoke job): run with ``--checkpoint-dir``/``--checkpoint-cadence``,
    die at tick 13, resume from the newest checkpoint — the final report is
    bit-identical to an uninterrupted run of the same spec.
    """
    return replace(
        univariate_power(),
        name="fleet-crash-resume",
        description=(
            "64-device power fleet hard-killed (SIGKILL) at tick 13; resuming "
            "from the last durable checkpoint reproduces the uninterrupted "
            "run bit-for-bit"
        ),
        fleet=FleetSpec(
            n_devices=64,
            ticks=24,
            arrival_rate=0.5,
            anomaly_rate=0.1,
            metrics_window=4,
        ),
        faults=FaultSpec(
            events=(FaultEvent(kind="process-kill", at_tick=13),),
        ),
    )
