"""Declarative fleet specifications.

A :class:`FleetSpec` describes a streaming workload: how many virtual devices
emit windows, at what rate, for how many event-clock ticks, and which stream
mutators (concept drift, bursty anomaly episodes, device churn, per-device
phase jitter) perturb the streams.  Like the rest of the experiment-spec tree
it is pure data — frozen, comparable, JSON round-trippable and overridable
with the CLI's dotted ``--set`` paths — and it hangs off
:class:`~repro.experiments.spec.ExperimentSpec` as the optional ``fleet``
node consumed by the runner's ``stream`` stage.

This module deliberately imports nothing from :mod:`repro.experiments` so the
spec tree can import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Tuple

from repro.exceptions import ConfigurationError
from repro.utils.validation import checked_dataclass_kwargs

#: Stream-mutator kinds understood by :meth:`MutatorSpec.build`.
MUTATOR_KINDS = (
    "concept-drift",
    "anomaly-burst",
    "device-churn",
    "phase-jitter",
    "sensor-stuck",
    "sensor-spike",
    "sensor-dropout",
)


@dataclass(frozen=True)
class MutatorSpec:
    """One stream mutator: a ``kind`` plus the knobs that kind reads.

    Fields that do not apply to the chosen ``kind`` are ignored, mirroring how
    :class:`~repro.experiments.spec.DataSpec` treats source-specific fields.
    """

    kind: str
    # concept-drift: every device's windows drift along a per-device random
    # direction, ``drift_per_tick`` units of standardised amplitude per tick,
    # plateauing at ``drift_saturation_tick`` (0 = the drift never saturates).
    drift_per_tick: float = 0.01
    drift_saturation_tick: int = 0
    # anomaly-burst: every ``burst_period`` ticks the fleet-wide anomaly
    # probability is raised to ``burst_anomaly_rate`` for ``burst_ticks`` ticks.
    burst_period: int = 20
    burst_ticks: int = 5
    burst_anomaly_rate: float = 0.5
    # device-churn: a ``churn_fraction`` of devices goes offline for
    # ``offline_ticks`` out of every ``churn_period`` ticks (per-device phase).
    churn_fraction: float = 0.2
    offline_ticks: int = 4
    churn_period: int = 16
    # phase-jitter: each device's windows are circularly shifted by a fixed
    # per-device offset plus a per-window draw, both bounded by ``max_shift``.
    max_shift: int = 4
    # sensor-stuck: a ``stuck_fraction`` of devices emit a constant reading
    # drawn per device from N(0, ``stuck_scale``²) in standardised units.
    stuck_fraction: float = 0.1
    stuck_scale: float = 1.0
    # sensor-spike: each emitted window carries, with probability
    # ``spike_rate``, a ``spike_magnitude``-unit glitch at one random timestep.
    spike_rate: float = 0.05
    spike_magnitude: float = 6.0
    # sensor-dropout: a ``dropout_fraction`` of devices fail permanently at a
    # per-device tick drawn uniformly from [0, ``dropout_horizon``).
    dropout_fraction: float = 0.1
    dropout_horizon: int = 32

    def __post_init__(self) -> None:
        if self.kind not in MUTATOR_KINDS:
            raise ConfigurationError(
                f"mutator kind must be one of {MUTATOR_KINDS}, got {self.kind!r}"
            )
        if self.drift_per_tick < 0:
            raise ConfigurationError(
                f"drift_per_tick must be non-negative, got {self.drift_per_tick}"
            )
        if self.drift_saturation_tick < 0:
            raise ConfigurationError(
                f"drift_saturation_tick must be non-negative, "
                f"got {self.drift_saturation_tick}"
            )
        if self.burst_period <= 0 or self.burst_ticks < 0:
            raise ConfigurationError(
                f"burst_period must be positive and burst_ticks non-negative, "
                f"got {self.burst_period}/{self.burst_ticks}"
            )
        if not 0.0 <= self.burst_anomaly_rate <= 1.0:
            raise ConfigurationError(
                f"burst_anomaly_rate must lie in [0, 1], got {self.burst_anomaly_rate}"
            )
        if not 0.0 <= self.churn_fraction <= 1.0:
            raise ConfigurationError(
                f"churn_fraction must lie in [0, 1], got {self.churn_fraction}"
            )
        if self.churn_period <= 0 or not 0 <= self.offline_ticks <= self.churn_period:
            raise ConfigurationError(
                f"churn needs 0 <= offline_ticks <= churn_period, got "
                f"{self.offline_ticks}/{self.churn_period}"
            )
        if self.max_shift < 0:
            raise ConfigurationError(f"max_shift must be non-negative, got {self.max_shift}")
        for name in ("stuck_fraction", "spike_rate", "dropout_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")
        if self.stuck_scale < 0:
            raise ConfigurationError(
                f"stuck_scale must be non-negative, got {self.stuck_scale}"
            )
        if self.dropout_horizon <= 0:
            raise ConfigurationError(
                f"dropout_horizon must be positive, got {self.dropout_horizon}"
            )

    def build(self):
        """The concrete :mod:`repro.fleet.mutators` instance for this spec."""
        from repro.fleet.mutators import (
            AnomalyBurst,
            ConceptDrift,
            DeviceChurn,
            PhaseJitter,
            SensorDropout,
            SensorSpike,
            SensorStuck,
        )

        if self.kind == "sensor-stuck":
            return SensorStuck(
                stuck_fraction=self.stuck_fraction, stuck_scale=self.stuck_scale
            )
        if self.kind == "sensor-spike":
            return SensorSpike(
                spike_rate=self.spike_rate, spike_magnitude=self.spike_magnitude
            )
        if self.kind == "sensor-dropout":
            return SensorDropout(
                dropout_fraction=self.dropout_fraction, horizon=self.dropout_horizon
            )
        if self.kind == "concept-drift":
            return ConceptDrift(
                drift_per_tick=self.drift_per_tick,
                saturation_tick=self.drift_saturation_tick,
            )
        if self.kind == "anomaly-burst":
            return AnomalyBurst(
                period=self.burst_period,
                burst_ticks=self.burst_ticks,
                burst_anomaly_rate=self.burst_anomaly_rate,
            )
        if self.kind == "device-churn":
            return DeviceChurn(
                churn_fraction=self.churn_fraction,
                offline_ticks=self.offline_ticks,
                period=self.churn_period,
            )
        return PhaseJitter(max_shift=self.max_shift)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MutatorSpec":
        return cls(**checked_dataclass_kwargs(cls, payload, "fleet mutator"))


@dataclass(frozen=True)
class FleetSpec:
    """A streaming fleet workload attached to an experiment.

    ``seed`` is the fleet's own stream seed; the engine folds it together with
    the experiment's master seed and each device id, so ``repro fleet --seed``
    reseeds every device stream while two devices never share one.
    """

    n_devices: int = 100
    ticks: int = 40
    #: Mean windows emitted per online device per tick (Poisson arrivals).
    arrival_rate: float = 0.5
    #: Baseline probability that an emitted window is drawn from the anomaly pool.
    anomaly_rate: float = 0.08
    seed: int = 0
    #: Ticks aggregated into one online-metrics window (windowed accuracy/F1).
    metrics_window: int = 8
    #: Capacity of the bounded delay reservoir behind the percentile estimates.
    reservoir_size: int = 2048
    #: Worker processes for :class:`~repro.fleet.engine.ShardedFleetEngine`.
    n_shards: int = 1
    mutators: Tuple[MutatorSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.n_devices <= 0:
            raise ConfigurationError(f"n_devices must be positive, got {self.n_devices}")
        if self.ticks <= 0:
            raise ConfigurationError(f"ticks must be positive, got {self.ticks}")
        if self.arrival_rate <= 0:
            raise ConfigurationError(
                f"arrival_rate must be positive, got {self.arrival_rate}"
            )
        if not 0.0 <= self.anomaly_rate <= 1.0:
            raise ConfigurationError(
                f"anomaly_rate must lie in [0, 1], got {self.anomaly_rate}"
            )
        if self.metrics_window <= 0:
            raise ConfigurationError(
                f"metrics_window must be positive, got {self.metrics_window}"
            )
        if self.reservoir_size <= 0:
            raise ConfigurationError(
                f"reservoir_size must be positive, got {self.reservoir_size}"
            )
        if self.n_shards <= 0:
            raise ConfigurationError(f"n_shards must be positive, got {self.n_shards}")
        if self.n_shards > self.n_devices:
            raise ConfigurationError(
                f"n_shards ({self.n_shards}) cannot exceed n_devices ({self.n_devices})"
            )
        object.__setattr__(self, "mutators", tuple(self.mutators))

    def build_mutators(self):
        """Concrete mutator instances, in spec order."""
        return tuple(mutator.build() for mutator in self.mutators)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FleetSpec":
        kwargs = checked_dataclass_kwargs(cls, payload, "fleet")
        if "mutators" in kwargs:
            kwargs["mutators"] = tuple(
                m if isinstance(m, MutatorSpec) else MutatorSpec.from_dict(m)
                for m in kwargs["mutators"]
            )
        return cls(**kwargs)
