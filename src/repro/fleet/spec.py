"""Declarative fleet specifications.

A :class:`FleetSpec` describes a streaming workload: how many virtual devices
emit windows, at what rate, for how many event-clock ticks, and which stream
mutators (concept drift, bursty anomaly episodes, device churn, per-device
phase jitter) perturb the streams.  Like the rest of the experiment-spec tree
it is pure data — frozen, comparable, JSON round-trippable and overridable
with the CLI's dotted ``--set`` paths — and it hangs off
:class:`~repro.experiments.spec.ExperimentSpec` as the optional ``fleet``
node consumed by the runner's ``stream`` stage.

This module deliberately imports nothing from :mod:`repro.experiments` so the
spec tree can import it without cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.utils.validation import checked_dataclass_kwargs

#: Stream-mutator kinds understood by :meth:`MutatorSpec.build`.
MUTATOR_KINDS = (
    "concept-drift",
    "anomaly-burst",
    "device-churn",
    "phase-jitter",
    "sensor-stuck",
    "sensor-spike",
    "sensor-dropout",
    "correlated-drift",
    "camouflage",
)


@dataclass(frozen=True)
class MutatorSpec:
    """One stream mutator: a ``kind`` plus the knobs that kind reads.

    Fields that do not apply to the chosen ``kind`` are ignored, mirroring how
    :class:`~repro.experiments.spec.DataSpec` treats source-specific fields.
    """

    kind: str
    # concept-drift: every device's windows drift along a per-device random
    # direction, ``drift_per_tick`` units of standardised amplitude per tick,
    # plateauing at ``drift_saturation_tick`` (0 = the drift never saturates).
    drift_per_tick: float = 0.01
    drift_saturation_tick: int = 0
    # anomaly-burst: every ``burst_period`` ticks the fleet-wide anomaly
    # probability is raised to ``burst_anomaly_rate`` for ``burst_ticks`` ticks.
    burst_period: int = 20
    burst_ticks: int = 5
    burst_anomaly_rate: float = 0.5
    # device-churn: a ``churn_fraction`` of devices goes offline for
    # ``offline_ticks`` out of every ``churn_period`` ticks (per-device phase).
    churn_fraction: float = 0.2
    offline_ticks: int = 4
    churn_period: int = 16
    # phase-jitter: each device's windows are circularly shifted by a fixed
    # per-device offset plus a per-window draw, both bounded by ``max_shift``.
    max_shift: int = 4
    # sensor-stuck: a ``stuck_fraction`` of devices emit a constant reading
    # drawn per device from N(0, ``stuck_scale``²) in standardised units.
    stuck_fraction: float = 0.1
    stuck_scale: float = 1.0
    # sensor-spike: each emitted window carries, with probability
    # ``spike_rate``, a ``spike_magnitude``-unit glitch at one random timestep.
    spike_rate: float = 0.05
    spike_magnitude: float = 6.0
    # sensor-dropout: a ``dropout_fraction`` of devices fail permanently at a
    # per-device tick drawn uniformly from [0, ``dropout_horizon``).
    dropout_fraction: float = 0.1
    dropout_horizon: int = 32
    # correlated-drift: devices share one drift direction per cohort
    # (``device_id % drift_cohorts``); directions derive from ``drift_seed``
    # alone so every shard agrees without consuming device RNG draws.
    # Reuses ``drift_per_tick``/``drift_saturation_tick`` for magnitude.
    drift_cohorts: int = 4
    drift_seed: int = 0
    # camouflage: anomalous-looking windows whose RMS amplitude exceeds
    # ``camouflage_target`` are shrunk toward it by ``camouflage_strength``
    # (1.0 = pinned exactly to the target envelope, 0.0 = untouched).
    camouflage_target: float = 1.0
    camouflage_strength: float = 0.8

    def __post_init__(self) -> None:
        if self.kind not in MUTATOR_KINDS:
            raise ConfigurationError(
                f"mutator kind must be one of {MUTATOR_KINDS}, got {self.kind!r}"
            )
        if self.drift_per_tick < 0:
            raise ConfigurationError(
                f"drift_per_tick must be non-negative, got {self.drift_per_tick}"
            )
        if self.drift_saturation_tick < 0:
            raise ConfigurationError(
                f"drift_saturation_tick must be non-negative, "
                f"got {self.drift_saturation_tick}"
            )
        if self.burst_period <= 0 or self.burst_ticks < 0:
            raise ConfigurationError(
                f"burst_period must be positive and burst_ticks non-negative, "
                f"got {self.burst_period}/{self.burst_ticks}"
            )
        if not 0.0 <= self.burst_anomaly_rate <= 1.0:
            raise ConfigurationError(
                f"burst_anomaly_rate must lie in [0, 1], got {self.burst_anomaly_rate}"
            )
        if not 0.0 <= self.churn_fraction <= 1.0:
            raise ConfigurationError(
                f"churn_fraction must lie in [0, 1], got {self.churn_fraction}"
            )
        if self.churn_period <= 0 or not 0 <= self.offline_ticks <= self.churn_period:
            raise ConfigurationError(
                f"churn needs 0 <= offline_ticks <= churn_period, got "
                f"{self.offline_ticks}/{self.churn_period}"
            )
        if self.max_shift < 0:
            raise ConfigurationError(f"max_shift must be non-negative, got {self.max_shift}")
        for name in ("stuck_fraction", "spike_rate", "dropout_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")
        if self.stuck_scale < 0:
            raise ConfigurationError(
                f"stuck_scale must be non-negative, got {self.stuck_scale}"
            )
        if self.dropout_horizon <= 0:
            raise ConfigurationError(
                f"dropout_horizon must be positive, got {self.dropout_horizon}"
            )
        if self.drift_cohorts <= 0:
            raise ConfigurationError(
                f"drift_cohorts must be positive, got {self.drift_cohorts}"
            )
        if self.camouflage_target <= 0:
            raise ConfigurationError(
                f"camouflage_target must be positive, got {self.camouflage_target}"
            )
        if not 0.0 <= self.camouflage_strength <= 1.0:
            raise ConfigurationError(
                f"camouflage_strength must lie in [0, 1], "
                f"got {self.camouflage_strength}"
            )

    def build(self):
        """The concrete :mod:`repro.fleet.mutators` instance for this spec."""
        from repro.fleet.mutators import (
            AdversarialCamouflage,
            AnomalyBurst,
            ConceptDrift,
            CorrelatedDrift,
            DeviceChurn,
            PhaseJitter,
            SensorDropout,
            SensorSpike,
            SensorStuck,
        )

        if self.kind == "correlated-drift":
            return CorrelatedDrift(
                drift_per_tick=self.drift_per_tick,
                saturation_tick=self.drift_saturation_tick,
                n_cohorts=self.drift_cohorts,
                seed=self.drift_seed,
            )
        if self.kind == "camouflage":
            return AdversarialCamouflage(
                target_amplitude=self.camouflage_target,
                strength=self.camouflage_strength,
            )
        if self.kind == "sensor-stuck":
            return SensorStuck(
                stuck_fraction=self.stuck_fraction, stuck_scale=self.stuck_scale
            )
        if self.kind == "sensor-spike":
            return SensorSpike(
                spike_rate=self.spike_rate, spike_magnitude=self.spike_magnitude
            )
        if self.kind == "sensor-dropout":
            return SensorDropout(
                dropout_fraction=self.dropout_fraction, horizon=self.dropout_horizon
            )
        if self.kind == "concept-drift":
            return ConceptDrift(
                drift_per_tick=self.drift_per_tick,
                saturation_tick=self.drift_saturation_tick,
            )
        if self.kind == "anomaly-burst":
            return AnomalyBurst(
                period=self.burst_period,
                burst_ticks=self.burst_ticks,
                burst_anomaly_rate=self.burst_anomaly_rate,
            )
        if self.kind == "device-churn":
            return DeviceChurn(
                churn_fraction=self.churn_fraction,
                offline_ticks=self.offline_ticks,
                period=self.churn_period,
            )
        return PhaseJitter(max_shift=self.max_shift)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MutatorSpec":
        return cls(**checked_dataclass_kwargs(cls, payload, "fleet mutator"))


@dataclass(frozen=True)
class DeviceClassSpec:
    """One heterogeneous slice of the fleet population.

    Devices are partitioned into classes by cumulative ``weight`` over the id
    range (a pure function of the spec and the device id), so shard
    partitioning never changes which class a device belongs to.  ``None``
    rate fields inherit the fleet-level value; the amplitude affine
    (``window * amplitude_scale + amplitude_offset``) reshapes the class's
    signal envelope without consuming any RNG draws.
    """

    name: str
    weight: float = 1.0
    arrival_rate: Optional[float] = None
    anomaly_rate: Optional[float] = None
    amplitude_scale: float = 1.0
    amplitude_offset: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("device class name must be non-empty")
        if self.weight <= 0:
            raise ConfigurationError(
                f"device class {self.name!r}: weight must be positive, "
                f"got {self.weight}"
            )
        if self.arrival_rate is not None and self.arrival_rate <= 0:
            raise ConfigurationError(
                f"device class {self.name!r}: arrival_rate must be positive, "
                f"got {self.arrival_rate}"
            )
        if self.anomaly_rate is not None and not 0.0 <= self.anomaly_rate <= 1.0:
            raise ConfigurationError(
                f"device class {self.name!r}: anomaly_rate must lie in [0, 1], "
                f"got {self.anomaly_rate}"
            )
        if self.amplitude_scale <= 0:
            raise ConfigurationError(
                f"device class {self.name!r}: amplitude_scale must be positive, "
                f"got {self.amplitude_scale}"
            )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DeviceClassSpec":
        return cls(**checked_dataclass_kwargs(cls, payload, "device class"))


@dataclass(frozen=True)
class LoadCurveSpec:
    """A time-varying multiplier on the fleet's Poisson arrival rates.

    ``rate_multiplier(tick)`` is a pure function shared by
    :class:`~repro.fleet.devices.DeviceFleet` (both the legacy and columnar
    paths apply the identical float expression, preserving bit-identity) and
    the serving load generator, so the diurnal swing and the flash-crowd
    spike hit fleet simulation and the front door in the same tick windows.
    """

    #: Sinusoidal swing: rate × (1 + amplitude·sin(2π·tick/period)).
    diurnal_amplitude: float = 0.0
    diurnal_period: int = 24
    #: Flash crowd: rate × flash_multiplier for ticks in
    #: [flash_at_tick, flash_at_tick + flash_ticks).
    flash_multiplier: float = 1.0
    flash_at_tick: int = 0
    flash_ticks: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ConfigurationError(
                f"diurnal_amplitude must lie in [0, 1), "
                f"got {self.diurnal_amplitude}"
            )
        if self.diurnal_period <= 0:
            raise ConfigurationError(
                f"diurnal_period must be positive, got {self.diurnal_period}"
            )
        if self.flash_multiplier < 1.0:
            raise ConfigurationError(
                f"flash_multiplier must be >= 1, got {self.flash_multiplier}"
            )
        if self.flash_at_tick < 0 or self.flash_ticks < 0:
            raise ConfigurationError(
                f"flash window must be non-negative, got "
                f"{self.flash_at_tick}/{self.flash_ticks}"
            )

    def rate_multiplier(self, tick: int) -> float:
        """The (positive) arrival-rate multiplier in effect at ``tick``."""
        multiplier = 1.0
        if self.diurnal_amplitude > 0.0:
            multiplier *= 1.0 + self.diurnal_amplitude * math.sin(
                2.0 * math.pi * tick / self.diurnal_period
            )
        if self.flash_ticks > 0 and (
            self.flash_at_tick <= tick < self.flash_at_tick + self.flash_ticks
        ):
            multiplier *= self.flash_multiplier
        return multiplier

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LoadCurveSpec":
        return cls(**checked_dataclass_kwargs(cls, payload, "load curve"))


@dataclass(frozen=True)
class FleetSpec:
    """A streaming fleet workload attached to an experiment.

    ``seed`` is the fleet's own stream seed; the engine folds it together with
    the experiment's master seed and each device id, so ``repro fleet --seed``
    reseeds every device stream while two devices never share one.
    """

    n_devices: int = 100
    ticks: int = 40
    #: Mean windows emitted per online device per tick (Poisson arrivals).
    arrival_rate: float = 0.5
    #: Baseline probability that an emitted window is drawn from the anomaly pool.
    anomaly_rate: float = 0.08
    seed: int = 0
    #: Ticks aggregated into one online-metrics window (windowed accuracy/F1).
    metrics_window: int = 8
    #: Capacity of the bounded delay reservoir behind the percentile estimates.
    reservoir_size: int = 2048
    #: Worker processes for :class:`~repro.fleet.engine.ShardedFleetEngine`.
    n_shards: int = 1
    mutators: Tuple[MutatorSpec, ...] = ()
    #: Heterogeneous population slices; empty = one homogeneous class.
    device_classes: Tuple[DeviceClassSpec, ...] = ()
    #: Time-varying arrival-rate driver; ``None`` = constant rate.
    load_curve: Optional[LoadCurveSpec] = None

    def __post_init__(self) -> None:
        if self.n_devices <= 0:
            raise ConfigurationError(f"n_devices must be positive, got {self.n_devices}")
        if self.ticks <= 0:
            raise ConfigurationError(f"ticks must be positive, got {self.ticks}")
        if self.arrival_rate <= 0:
            raise ConfigurationError(
                f"arrival_rate must be positive, got {self.arrival_rate}"
            )
        if not 0.0 <= self.anomaly_rate <= 1.0:
            raise ConfigurationError(
                f"anomaly_rate must lie in [0, 1], got {self.anomaly_rate}"
            )
        if self.metrics_window <= 0:
            raise ConfigurationError(
                f"metrics_window must be positive, got {self.metrics_window}"
            )
        if self.reservoir_size <= 0:
            raise ConfigurationError(
                f"reservoir_size must be positive, got {self.reservoir_size}"
            )
        if self.n_shards <= 0:
            raise ConfigurationError(f"n_shards must be positive, got {self.n_shards}")
        if self.n_shards > self.n_devices:
            raise ConfigurationError(
                f"n_shards ({self.n_shards}) cannot exceed n_devices ({self.n_devices})"
            )
        object.__setattr__(self, "mutators", tuple(self.mutators))
        object.__setattr__(self, "device_classes", tuple(self.device_classes))
        names = [cls.name for cls in self.device_classes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate device class names: {sorted(names)}")

    def build_mutators(self):
        """Concrete mutator instances, in spec order."""
        return tuple(mutator.build() for mutator in self.mutators)

    # -- heterogeneous classes -------------------------------------------

    def class_boundaries(self) -> Tuple[int, ...]:
        """Exclusive upper device-id bound of each class, last == n_devices.

        Pure function of the spec: cumulative class weights mapped onto the
        id range, so the class of a device never depends on sharding.
        """
        if not self.device_classes:
            return ()
        total = sum(cls.weight for cls in self.device_classes)
        cumulative = 0.0
        bounds = []
        for cls in self.device_classes:
            cumulative += cls.weight
            bounds.append(int(math.floor(cumulative / total * self.n_devices)))
        bounds[-1] = self.n_devices
        return tuple(bounds)

    def device_class(self, device_id: int) -> Optional[DeviceClassSpec]:
        """The class a device belongs to (``None`` for homogeneous fleets)."""
        if not self.device_classes:
            return None
        for bound, cls in zip(self.class_boundaries(), self.device_classes):
            if device_id < bound:
                return cls
        return self.device_classes[-1]

    def device_arrival_rate(self, device_id: int) -> float:
        cls = self.device_class(device_id)
        if cls is None or cls.arrival_rate is None:
            return self.arrival_rate
        return cls.arrival_rate

    def device_anomaly_rate(self, device_id: int) -> float:
        cls = self.device_class(device_id)
        if cls is None or cls.anomaly_rate is None:
            return self.anomaly_rate
        return cls.anomaly_rate

    def device_amplitude(self, device_id: int) -> Tuple[float, float]:
        """``(scale, offset)`` of the class amplitude affine for a device."""
        cls = self.device_class(device_id)
        if cls is None:
            return (1.0, 0.0)
        return (cls.amplitude_scale, cls.amplitude_offset)

    def rate_multiplier(self, tick: int) -> float:
        """Load-curve arrival multiplier at ``tick`` (1.0 without a curve)."""
        if self.load_curve is None:
            return 1.0
        return self.load_curve.rate_multiplier(tick)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FleetSpec":
        kwargs = checked_dataclass_kwargs(cls, payload, "fleet")
        if "mutators" in kwargs:
            kwargs["mutators"] = tuple(
                m if isinstance(m, MutatorSpec) else MutatorSpec.from_dict(m)
                for m in kwargs["mutators"]
            )
        if "device_classes" in kwargs:
            kwargs["device_classes"] = tuple(
                c if isinstance(c, DeviceClassSpec) else DeviceClassSpec.from_dict(c)
                for c in kwargs["device_classes"]
            )
        if "load_curve" in kwargs and kwargs["load_curve"] is not None:
            if not isinstance(kwargs["load_curve"], LoadCurveSpec):
                kwargs["load_curve"] = LoadCurveSpec.from_dict(kwargs["load_curve"])
        return cls(**kwargs)
