"""Cheap sharded execution: persistent pools and zero-copy shard payloads.

The original sharded path forked a fresh worker pool per ``run()`` and
pickled the full engine state — detector weights *and* the window pool,
easily tens of megabytes — into every shard, every run, then pickled whole
:class:`~repro.fleet.metrics.StreamingMetrics` objects back.  On small or
single-core hosts that overhead dwarfed the per-shard compute (the committed
``fleet.json`` showed 2- and 4-shard runs at 0.60×/0.57× of one shard).

This module replaces that with:

* a **persistent worker-pool cache** — one ``fork`` pool per shard count,
  reused across :meth:`~repro.fleet.engine.ShardedFleetEngine.run` calls and
  re-forked only when the published engine state changes;
* **zero-copy heavy state** — the shared engine kwargs (system, policy,
  context extractor, window pool, spec) are *published* into a module-level
  table before the pool forks, so workers inherit them through
  copy-on-write; a shard task ships only ``(token, device_ids)``;
* **compact result payloads** — workers return
  :meth:`~repro.fleet.metrics.StreamingMetrics.to_payload` arrays (a few KB)
  instead of pickled aggregator objects.

Where ``fork`` is unavailable (spawn-only platforms) the window pool — the
bulk of the payload — ships once per run through
:class:`multiprocessing.shared_memory.SharedMemory` segments and only the
model state pickles per shard.

Tokens are unique for the process lifetime, so a pool forked against an old
published table can never resolve a new token — the cache detects that and
re-forks (object identity alone would be unsound: ids can be reused after
garbage collection).  Published state is a *snapshot*: the structural key
includes :attr:`~repro.hec.simulation.HECSystem.state_version`, which
hot-swap deployments bump, so an adaptive run between two sharded runs
re-keys (and re-forks) automatically; if you mutate published objects in
place through some *other* side channel, call :func:`invalidate` before the
next sharded run.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import signal
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fleet.faults import WorkerCrash

#: Published heavy-state entries kept alive (LRU beyond this).
PUBLISH_LIMIT = 4

#: token -> shared engine kwargs (strong refs keep ids unique while published).
_TOKENS: "OrderedDict[int, dict]" = OrderedDict()
#: structural key -> token (scanned on eviction; bounded by PUBLISH_LIMIT).
_KEYS: Dict[tuple, int] = {}
_token_counter = itertools.count(1)


@dataclass
class _PoolEntry:
    pool: multiprocessing.pool.Pool
    #: Tokens that existed when this pool forked (resolvable in its workers).
    tokens: frozenset


_POOLS: Dict[int, _PoolEntry] = {}


def available_cpus() -> int:
    """CPUs this process may schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def fork_available() -> bool:
    """Whether the zero-copy ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def parallel_transport() -> str:
    """The worker-pool transport :func:`run_sharded` would use here.

    ``"fork-pool"`` (persistent pool + copy-on-write state) where fork
    exists, ``"spawn-pool"`` (per-run pool + SharedMemory window shipping)
    elsewhere — the label benchmarks record per shard entry.
    """
    return "fork-pool" if fork_available() else "spawn-pool"


def _structural_key(heavy: dict) -> tuple:
    return (
        id(heavy["system"]),
        # Hot-swaps mutate the system in place; the version stamp makes the
        # post-swap system a new key, so a pool forked before the swap can
        # never serve its stale copy-on-write weights.
        getattr(heavy["system"], "state_version", 0),
        id(heavy["policy"]),
        id(heavy["context_extractor"]),
        id(heavy["pool"]),
        heavy["spec"],
        heavy["master_seed"],
        heavy["name"],
        heavy["tier_names"],
        heavy.get("columnar", True),
        # FaultSpec is frozen (hashable); different fault schedules or
        # checkpoint configurations must never share a forked snapshot.
        heavy.get("faults"),
        heavy.get("checkpoint_dir"),
        heavy.get("checkpoint_cadence", 0),
        # ShardObsConfig is frozen too: a telemetered run and an
        # untelemetered one must never share a forked snapshot (the child
        # sessions are built inside the worker from this recipe).
        heavy.get("obs"),
    )


def _publish(heavy: dict) -> int:
    """Register the shared engine kwargs; returns their (stable) token."""
    key = _structural_key(heavy)
    token = _KEYS.get(key)
    if token is not None and token in _TOKENS:
        _TOKENS.move_to_end(token)
        return token
    token = next(_token_counter)
    _KEYS[key] = token
    _TOKENS[token] = heavy
    while len(_TOKENS) > PUBLISH_LIMIT:
        stale, _ = _TOKENS.popitem(last=False)
        for stale_key, stale_token in list(_KEYS.items()):
            if stale_token == stale:
                del _KEYS[stale_key]
    return token


def invalidate() -> None:
    """Forget all published state (next sharded run re-publishes and re-forks).

    Call after mutating a published system/policy/pool in place outside the
    engine APIs — forked workers hold a copy-on-write snapshot from
    publication time and would otherwise stream against stale state.
    """
    _TOKENS.clear()
    _KEYS.clear()


def _pool_for(processes: int, token: int) -> multiprocessing.pool.Pool:
    entry = _POOLS.get(processes)
    if entry is not None and token in entry.tokens:
        return entry.pool
    if entry is not None:
        entry.pool.terminate()
        entry.pool.join()
    context = multiprocessing.get_context("fork")
    pool = context.Pool(processes=processes)
    _POOLS[processes] = _PoolEntry(pool=pool, tokens=frozenset(_TOKENS))
    return pool


def _drop_pool(processes: int) -> None:
    entry = _POOLS.pop(processes, None)
    if entry is not None:
        entry.pool.terminate()
        entry.pool.join()


#: SharedMemory segments exported by this process and not yet unlinked.
_ACTIVE_SEGMENTS: List = []


def shutdown() -> None:
    """Terminate every cached pool, unlink exported SharedMemory segments and
    forget published state (tests/atexit/SIGTERM)."""
    for processes in list(_POOLS):
        _drop_pool(processes)
    for segment in list(_ACTIVE_SEGMENTS):
        try:
            segment.close()
            segment.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - already gone
            pass
    _ACTIVE_SEGMENTS.clear()
    invalidate()


atexit.register(shutdown)

_signal_cleanup_installed = False


def _install_signal_cleanup() -> None:
    """Make SIGTERM run :func:`shutdown` before dying (once, main thread only).

    atexit does not run on SIGTERM's default disposition, so a terminated
    parent would orphan live fork workers and leak SharedMemory segments.
    The handler cleans up, then re-raises SIGTERM under the default
    disposition so the process still dies with the conventional exit status.
    """
    global _signal_cleanup_installed
    if _signal_cleanup_installed:
        return
    if threading.current_thread() is not threading.main_thread():
        return  # signal.signal raises off the main thread; workers skip it
    previous = signal.getsignal(signal.SIGTERM)

    def _handle(signum, frame):
        shutdown()
        if callable(previous) and previous not in (signal.SIG_IGN, signal.SIG_DFL):
            previous(signum, frame)
        else:
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
            os.kill(os.getpid(), signal.SIGTERM)

    try:
        signal.signal(signal.SIGTERM, _handle)
    except (ValueError, OSError):  # pragma: no cover - exotic embedding
        return
    _signal_cleanup_installed = True


@dataclass
class ShardResult:
    """One shard's compact return: metrics arrays plus telemetry payload.

    ``obs`` is ``None`` on untelemetered runs, else the child session's
    :meth:`~repro.obs.export.Telemetry.shard_payload` for the parent to
    absorb through the deterministic merge algebra.
    """

    metrics: object
    obs: Optional[dict] = None


def _shard_child_telemetry(kwargs: dict, shard_index: int):
    """Pop the shard-telemetry recipe (if any) and build the child session."""
    config = kwargs.pop("obs", None)
    if config is None:
        return None
    child = config.child(shard_index)
    kwargs["telemetry"] = child
    return child


def _worker_run_shard(task: Tuple[int, int, List[int]]) -> dict:
    """Fork-pool entry point: resolve inherited state, stream, return arrays."""
    token, shard_index, device_ids = task
    heavy = _TOKENS[token]
    from repro.fleet.checkpoint import shard_checkpoint_dir
    from repro.fleet.engine import FleetEngine

    kwargs = dict(heavy)
    base = kwargs.get("checkpoint_dir")
    if base:
        kwargs["checkpoint_dir"] = shard_checkpoint_dir(base, shard_index)
    kwargs["shard_index"] = shard_index
    child = _shard_child_telemetry(kwargs, shard_index)
    engine = FleetEngine(device_ids=device_ids, **kwargs)
    metrics = engine.run_metrics().to_payload()
    return {
        "metrics": metrics,
        "obs": child.shard_payload() if child is not None else None,
    }


def run_sharded(heavy: dict, partitions: Sequence[Sequence[int]], processes: int) -> list:
    """Run one :class:`~repro.fleet.engine.FleetEngine` per partition in the pool.

    Returns, in partition order, per-shard :class:`ShardResult` (metrics plus
    the child telemetry payload on telemetered runs) — or the
    :class:`~repro.fleet.faults.WorkerCrash` a shard died with (an *injected*
    crash is an application event, not a pool failure: the worker survives
    and the caller recovers the shard from its checkpoints).  Anything else
    raises after dropping the pool — the caller
    (``ShardedFleetEngine._run_shards``) owns the serial fallback, and a
    ``KeyboardInterrupt``/``SystemExit`` mid-run must not leave a cached pool
    of orphaned workers behind.
    """
    _install_signal_cleanup()
    if fork_available():
        token = _publish(heavy)
        pool = _pool_for(processes, token)
        tasks = [
            (token, index, list(partition))
            for index, partition in enumerate(partitions)
        ]
        results = []
        try:
            handles = [pool.apply_async(_worker_run_shard, (task,)) for task in tasks]
            for handle in handles:
                try:
                    results.append(handle.get())
                except WorkerCrash as crash:
                    results.append(crash)
        except BaseException:
            # A broken pool (dead worker, torn-down queue) must not be
            # reused; on KeyboardInterrupt this also reaps the workers.
            _drop_pool(processes)
            raise
        return _revive_results(results)
    return _run_sharded_spawn(heavy, partitions, processes)


def _revive_results(results: list) -> list:
    """Turn worker payload dicts back into :class:`ShardResult` objects."""
    from repro.fleet.metrics import StreamingMetrics

    revived = []
    for result in results:
        if isinstance(result, WorkerCrash):
            revived.append(result)
        else:
            revived.append(
                ShardResult(
                    metrics=StreamingMetrics.from_payload(result["metrics"]),
                    obs=result.get("obs"),
                )
            )
    return revived


# -- spawn fallback: the window pool ships once through SharedMemory ------------


@dataclass(frozen=True)
class SharedArraySpec:
    """How to re-attach one exported array in another process."""

    name: str
    shape: tuple
    dtype: str


def export_array(array: np.ndarray):
    """Copy ``array`` into a SharedMemory segment; returns ``(shm, spec)``."""
    from multiprocessing import shared_memory

    array = np.ascontiguousarray(array)
    segment = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
    view[...] = array
    _ACTIVE_SEGMENTS.append(segment)
    return segment, SharedArraySpec(
        name=segment.name, shape=tuple(array.shape), dtype=str(array.dtype)
    )


def attach_array(spec: SharedArraySpec, untrack: bool = False):
    """Attach an exported array; returns ``(shm, read-only ndarray view)``.

    On POSIX Pythons before 3.13, *attaching* also registers the segment with
    the attaching process's resource tracker, which would try to unlink it
    again at exit even though the exporter owns unlinking.  Worker processes
    therefore pass ``untrack=True`` to withdraw that registration (via
    ``track=False`` where supported, else an explicit unregister).  Leave it
    off when attaching inside the exporting process — exporter and attacher
    share one tracker there, and untracking would orphan the exporter's own
    registration.
    """
    from multiprocessing import shared_memory

    if untrack:
        try:
            segment = shared_memory.SharedMemory(
                name=spec.name, create=False, track=False
            )
        except TypeError:  # Python < 3.13: no track parameter
            segment = shared_memory.SharedMemory(name=spec.name, create=False)
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker layout varies
                pass
    else:
        segment = shared_memory.SharedMemory(name=spec.name, create=False)
    view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf)
    view.flags.writeable = False
    return segment, view


def _worker_run_shard_spawn(payload: dict) -> dict:
    """Spawn-pool entry point: rebuild the pool from SharedMemory, stream."""
    from repro.fleet.devices import WindowPool
    from repro.fleet.engine import FleetEngine

    normal_spec = payload.pop("_normal_spec")
    anomalous_spec = payload.pop("_anomalous_spec")
    normal_segment, normal = attach_array(normal_spec, untrack=True)
    anomalous_segment, anomalous = attach_array(anomalous_spec, untrack=True)
    try:
        payload["pool"] = WindowPool(normal=normal, anomalous=anomalous)
        child = _shard_child_telemetry(payload, payload["shard_index"])
        engine = FleetEngine(**payload)
        metrics = engine.run_metrics().to_payload()
        return {
            "metrics": metrics,
            "obs": child.shard_payload() if child is not None else None,
        }
    finally:
        normal_segment.close()
        anomalous_segment.close()


def _run_sharded_spawn(heavy: dict, partitions, processes: int) -> list:
    from repro.fleet.checkpoint import shard_checkpoint_dir

    _install_signal_cleanup()
    pool_obj = heavy["pool"]
    normal_segment, normal_spec = export_array(pool_obj.normal)
    anomalous_segment, anomalous_spec = export_array(pool_obj.anomalous)
    light = {key: value for key, value in heavy.items() if key != "pool"}
    base = light.get("checkpoint_dir")
    payloads = []
    for index, partition in enumerate(partitions):
        payload = {
            **light,
            "device_ids": list(partition),
            "shard_index": index,
            "_normal_spec": normal_spec,
            "_anomalous_spec": anomalous_spec,
        }
        if base:
            payload["checkpoint_dir"] = shard_checkpoint_dir(base, index)
        payloads.append(payload)
    context = multiprocessing.get_context()
    try:
        with context.Pool(processes=processes) as worker_pool:
            handles = [
                worker_pool.apply_async(_worker_run_shard_spawn, (payload,))
                for payload in payloads
            ]
            results = []
            for handle in handles:
                try:
                    results.append(handle.get())
                except WorkerCrash as crash:
                    results.append(crash)
    finally:
        for segment in (normal_segment, anomalous_segment):
            segment.close()
            segment.unlink()
            if segment in _ACTIVE_SEGMENTS:
                _ACTIVE_SEGMENTS.remove(segment)
    return _revive_results(results)
