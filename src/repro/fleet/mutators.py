"""Stream mutators: controlled non-stationarity for device window streams.

A mutator perturbs one aspect of a virtual device's stream and is driven by
three hooks:

* :meth:`StreamMutator.device_state` — called once when a device is created,
  drawing any per-device parameters from the *device's own* RNG (so the
  perturbation is independent of how devices are partitioned across shards);
* :meth:`StreamMutator.anomaly_rate` / :meth:`StreamMutator.online` — pure
  functions of the device state and the tick (no RNG draws, so an offline
  device consumes exactly the same stream as an online one would have);
* :meth:`StreamMutator.transform` — applied to each emitted window, with the
  device RNG available for per-window draws.

The concrete mutators cover the scenarios the paper's fleet premise implies
but the offline replay could never exercise: gradual concept drift, bursty
fleet-wide anomaly episodes, device churn/dropout, per-device phase jitter,
and the sensor-level fault models used by fault injection (stuck-at sensors,
transient spikes, permanent sensor dropout).

Each hook also has a *columnar* counterpart consumed by the streaming fast
path (:meth:`~repro.fleet.devices.DeviceFleet.arrivals_columnar`):
:meth:`StreamMutator.online_batch` / :meth:`StreamMutator.anomaly_rate_batch`
evaluate the pure per-device hooks over the whole fleet at once,
:meth:`StreamMutator.transform_draw` makes exactly the RNG draws
:meth:`StreamMutator.transform` would make for one window (so the per-device
streams stay bit-identical), and :meth:`StreamMutator.transform_batch`
applies the window math to a stacked ``(n, *window_shape)`` batch.  The
columnar hooks must mirror the per-window hooks element for element — the
built-ins do, and the fast path falls back to the per-window reference for
subclasses that override :meth:`StreamMutator.transform` without providing a
batch counterpart.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np


class StreamMutator:
    """Base class: a no-op perturbation of a device stream."""

    def device_state(self, rng: np.random.Generator, window_shape: tuple) -> Dict[str, Any]:
        """Per-device parameters, drawn from the device's own RNG at creation."""
        return {}

    def device_state_for(
        self, device_id: int, rng: np.random.Generator, window_shape: tuple
    ) -> Dict[str, Any]:
        """Per-device parameters with the device's identity in scope.

        Most mutators ignore the id and delegate to :meth:`device_state`;
        cohort-structured mutators (e.g. :class:`CorrelatedDrift`) use it to
        derive *shared* parameters without consuming device RNG draws, which
        keeps the streams partition-independent.
        """
        return self.device_state(rng, window_shape)

    def anomaly_rate(self, base_rate: float, state: Dict[str, Any], tick: int) -> float:
        """The effective anomaly probability for this device at ``tick``."""
        return base_rate

    def online(self, state: Dict[str, Any], tick: int) -> bool:
        """Whether the device emits at ``tick``."""
        return True

    def transform(
        self,
        window: np.ndarray,
        state: Dict[str, Any],
        tick: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """The emitted view of a sampled pool window."""
        return window

    # -- columnar counterparts (the streaming fast path) -------------------------

    def stack_states(self, states: Sequence[Dict[str, Any]]):
        """A columnar view of the per-device states (``None`` when not needed).

        Computed once per fleet and handed back to every
        :meth:`online_batch` / :meth:`anomaly_rate_batch` /
        :meth:`transform_batch` call, so batch hooks never re-stack per tick.
        """
        return None

    def online_batch(self, stacked, states: Sequence[Dict[str, Any]], tick: int) -> np.ndarray:
        """Per-device online mask at ``tick`` (mirrors :meth:`online` row-wise)."""
        return np.fromiter(
            (self.online(state, tick) for state in states), dtype=bool, count=len(states)
        )

    def anomaly_rate_batch(
        self, base_rates: np.ndarray, stacked, states: Sequence[Dict[str, Any]], tick: int
    ) -> np.ndarray:
        """Per-device anomaly rates at ``tick`` (mirrors :meth:`anomaly_rate`)."""
        return np.fromiter(
            (
                self.anomaly_rate(float(rate), state, tick)
                for rate, state in zip(base_rates, states)
            ),
            dtype=float,
            count=len(states),
        )

    def transform_draw(self, state: Dict[str, Any], rng: np.random.Generator):
        """The RNG values :meth:`transform` would draw for one window.

        Called at the exact stream position where :meth:`transform` would have
        drawn, keeping a device's RNG stream bit-identical between the
        per-window and columnar paths.  ``None`` means the transform draws
        nothing (the base class and every built-in except phase jitter).
        """
        return None

    def transform_batch(
        self,
        windows: np.ndarray,
        stacked,
        rows: np.ndarray,
        tick: int,
        draws: Optional[List],
    ) -> np.ndarray:
        """Apply this mutator to a stacked batch (mirrors :meth:`transform`).

        ``windows`` is the ``(n, *window_shape)`` float batch (safe to modify
        in place — the fast path owns it), ``rows`` maps each window to its
        device's position in the fleet, and ``draws`` carries the per-window
        :meth:`transform_draw` results in arrival order.  The base transform
        is the identity, so the base batch hook is too.
        """
        return windows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class ConceptDrift(StreamMutator):
    """Gradual distribution shift along a per-device random direction.

    Each device drifts away from the training distribution by
    ``drift_per_tick`` standardised units per tick along a unit direction
    drawn at creation.  Labels are untouched: the drifted windows are still
    "normal", which is exactly what degrades the deployed detectors over time
    and shows up in the windowed online metrics.
    """

    def __init__(self, drift_per_tick: float = 0.01, saturation_tick: int = 0) -> None:
        self.drift_per_tick = float(drift_per_tick)
        #: Tick after which the drift amplitude stops growing (the stream has
        #: settled into a new regime); 0 means the drift never saturates.
        self.saturation_tick = int(saturation_tick)

    def device_state(self, rng: np.random.Generator, window_shape: tuple) -> Dict[str, Any]:
        direction = rng.normal(size=window_shape)
        norm = float(np.linalg.norm(direction))
        if norm > 0:
            direction = direction / norm
        return {"drift_direction": direction}

    def transform(self, window, state, tick, rng):
        if self.saturation_tick > 0:
            tick = min(tick, self.saturation_tick)
        return window + self.drift_per_tick * tick * state["drift_direction"]

    def stack_states(self, states):
        return np.stack([state["drift_direction"] for state in states])

    def transform_batch(self, windows, stacked, rows, tick, draws):
        if self.saturation_tick > 0:
            tick = min(tick, self.saturation_tick)
        # Same per-element float ops as transform(): (drift * tick) scales the
        # unit direction, then one elementwise add — bit-identical per window.
        windows += self.drift_per_tick * tick * stacked[rows]
        return windows


class AnomalyBurst(StreamMutator):
    """Fleet-wide bursty anomaly episodes.

    Every ``period`` ticks, the anomaly probability jumps to
    ``burst_anomaly_rate`` for the first ``burst_ticks`` ticks of the period —
    an anomaly storm hitting the whole fleet at once, visible as spikes in the
    windowed anomaly fraction and load on the upper tiers.
    """

    def __init__(
        self,
        period: int = 20,
        burst_ticks: int = 5,
        burst_anomaly_rate: float = 0.5,
    ) -> None:
        self.period = int(period)
        self.burst_ticks = int(burst_ticks)
        self.burst_anomaly_rate = float(burst_anomaly_rate)

    def in_burst(self, tick: int) -> bool:
        """Whether ``tick`` falls inside a burst episode."""
        return tick % self.period < self.burst_ticks

    def anomaly_rate(self, base_rate, state, tick):
        return self.burst_anomaly_rate if self.in_burst(tick) else base_rate

    def anomaly_rate_batch(self, base_rates, stacked, states, tick):
        if self.in_burst(tick):
            return np.full(len(states), self.burst_anomaly_rate)
        return np.asarray(base_rates, dtype=float)


class DeviceChurn(StreamMutator):
    """Periodic device dropout: a fraction of the fleet goes dark and returns.

    At creation each device decides (from its own RNG) whether it churns and,
    if so, at which phase of the ``period`` its ``offline_ticks``-long outage
    falls.  Online-ness is then a pure function of the tick, so churn never
    perturbs the RNG stream the device uses for its windows.
    """

    def __init__(
        self,
        churn_fraction: float = 0.2,
        offline_ticks: int = 4,
        period: int = 16,
    ) -> None:
        self.churn_fraction = float(churn_fraction)
        self.offline_ticks = int(offline_ticks)
        self.period = int(period)

    def device_state(self, rng: np.random.Generator, window_shape: tuple) -> Dict[str, Any]:
        churns = bool(rng.random() < self.churn_fraction)
        phase = int(rng.integers(0, self.period))
        return {"churns": churns, "churn_phase": phase}

    def online(self, state, tick):
        if not state["churns"]:
            return True
        return (tick + state["churn_phase"]) % self.period >= self.offline_ticks

    def stack_states(self, states):
        return {
            "churns": np.array([state["churns"] for state in states], dtype=bool),
            "phases": np.array([state["churn_phase"] for state in states], dtype=np.int64),
        }

    def online_batch(self, stacked, states, tick):
        return ~stacked["churns"] | (
            (tick + stacked["phases"]) % self.period >= self.offline_ticks
        )


class PhaseJitter(StreamMutator):
    """Per-device phase misalignment: windows arrive circularly shifted.

    Models devices whose windowing is not aligned with the training data
    (clock skew, late joiners): each device has a fixed base shift plus a
    small per-window draw, both bounded by ``max_shift`` timesteps.
    """

    def __init__(self, max_shift: int = 4) -> None:
        self.max_shift = int(max_shift)

    def device_state(self, rng: np.random.Generator, window_shape: tuple) -> Dict[str, Any]:
        base = int(rng.integers(-self.max_shift, self.max_shift + 1)) if self.max_shift else 0
        return {"base_shift": base}

    def transform(self, window, state, tick, rng):
        shift = state["base_shift"]
        if self.max_shift:
            shift += int(rng.integers(-1, 2))
        if shift == 0:
            return window
        return np.roll(window, shift, axis=0)

    def stack_states(self, states):
        return np.array([state["base_shift"] for state in states], dtype=np.int64)

    def transform_draw(self, state, rng):
        if self.max_shift:
            return int(rng.integers(-1, 2))
        return None

    def transform_batch(self, windows, stacked, rows, tick, draws):
        shifts = stacked[rows]
        if self.max_shift:
            shifts = shifts + np.asarray(draws, dtype=np.int64)
        length = windows.shape[1]
        shifts = shifts % length
        moved = np.flatnonzero(shifts)
        if moved.size:
            # result[i] = window[(i - shift) % length] is exactly np.roll along
            # axis 0 — a pure permutation, so the values stay bit-identical.
            gather = (np.arange(length)[None, :] - shifts[moved, None]) % length
            windows[moved] = windows[moved][np.arange(moved.size)[:, None], gather]
        return windows


class SensorStuck(StreamMutator):
    """Stuck-at sensor fault: a fraction of devices emit a constant reading.

    At creation each device decides (from its own RNG) whether its sensor is
    stuck and, if so, at which constant standardised value.  A stuck device
    keeps sampling — and labelling — windows from the pool exactly as a
    healthy one would, but what it *emits* is the constant, so ground truth
    is preserved while the observable signal is destroyed.  That is the
    classic stuck-at fault: the detector sees garbage uncorrelated with the
    process label.
    """

    def __init__(self, stuck_fraction: float = 0.1, stuck_scale: float = 1.0) -> None:
        self.stuck_fraction = float(stuck_fraction)
        #: Standard deviation of the per-device stuck value (standardised units).
        self.stuck_scale = float(stuck_scale)

    def device_state(self, rng: np.random.Generator, window_shape: tuple) -> Dict[str, Any]:
        stuck = bool(rng.random() < self.stuck_fraction)
        value = float(rng.normal(0.0, self.stuck_scale))
        return {"stuck": stuck, "stuck_value": value}

    def transform(self, window, state, tick, rng):
        if not state["stuck"]:
            return window
        return np.full(window.shape, state["stuck_value"])

    def stack_states(self, states):
        return {
            "stuck": np.array([state["stuck"] for state in states], dtype=bool),
            "values": np.array([state["stuck_value"] for state in states], dtype=float),
        }

    def transform_batch(self, windows, stacked, rows, tick, draws):
        mask = stacked["stuck"][rows]
        if mask.any():
            values = stacked["values"][rows[mask]]
            # Broadcasting the scalar over the window assigns the exact float
            # np.full() would — constant fills are trivially bit-identical.
            windows[mask] = values.reshape((-1,) + (1,) * (windows.ndim - 1))
        return windows


class SensorSpike(StreamMutator):
    """Transient sensor spikes: occasional windows carry one corrupted timestep.

    With probability ``spike_rate`` per emitted window, ``spike_magnitude``
    standardised units are added to every channel of one uniformly drawn
    timestep — a glitch reading, not an anomaly in the monitored process, so
    labels are untouched and the fault shows up as false positives.
    """

    def __init__(self, spike_rate: float = 0.05, spike_magnitude: float = 6.0) -> None:
        self.spike_rate = float(spike_rate)
        self.spike_magnitude = float(spike_magnitude)

    def device_state(self, rng: np.random.Generator, window_shape: tuple) -> Dict[str, Any]:
        return {"length": int(window_shape[0])}

    def transform(self, window, state, tick, rng):
        if not (rng.random() < self.spike_rate):
            return window
        index = int(rng.integers(state["length"]))
        # Pool windows reach the per-window path as views — copy before the
        # in-place corruption so the shared pool is never mutated.
        window = np.array(window, dtype=float)
        window[index] += self.spike_magnitude
        return window

    def transform_draw(self, state, rng):
        if rng.random() < self.spike_rate:
            return int(rng.integers(state["length"]))
        return None

    def transform_batch(self, windows, stacked, rows, tick, draws):
        spiked = np.fromiter(
            (draw is not None for draw in draws), dtype=bool, count=len(draws)
        )
        hit = np.flatnonzero(spiked)
        if hit.size:
            indices = np.fromiter(
                (draws[i] for i in hit), dtype=np.int64, count=hit.size
            )
            # Same float64 add at the same (window, timestep) coordinates as
            # transform() performs on its copy — bit-identical per element.
            windows[hit, indices] += self.spike_magnitude
        return windows


class SensorDropout(StreamMutator):
    """Permanent sensor failure: some devices go dark partway through the run.

    At creation each device decides whether it fails and draws its failure
    tick uniformly from ``[0, horizon)``; from that tick on it never emits
    again.  Unlike :class:`DeviceChurn` the outage is permanent — the fleet
    shrinks, tier load redistributes, and online-ness stays a pure function
    of the tick so the surviving devices' streams are unperturbed.
    """

    def __init__(self, dropout_fraction: float = 0.1, horizon: int = 32) -> None:
        self.dropout_fraction = float(dropout_fraction)
        self.horizon = int(horizon)

    def device_state(self, rng: np.random.Generator, window_shape: tuple) -> Dict[str, Any]:
        fails = bool(rng.random() < self.dropout_fraction)
        fail_tick = int(rng.integers(0, self.horizon))
        return {"fails": fails, "fail_tick": fail_tick}

    def online(self, state, tick):
        return not state["fails"] or tick < state["fail_tick"]

    def stack_states(self, states):
        return {
            "fails": np.array([state["fails"] for state in states], dtype=bool),
            "fail_ticks": np.array(
                [state["fail_tick"] for state in states], dtype=np.int64
            ),
        }

    def online_batch(self, stacked, states, tick):
        return ~stacked["fails"] | (tick < stacked["fail_ticks"])


class CorrelatedDrift(ConceptDrift):
    """Concept drift with a *shared* direction per device cohort.

    Independent per-device drift (the :class:`ConceptDrift` base) averages
    out across the fleet; correlated drift does not — every device in cohort
    ``device_id % n_cohorts`` moves along the same direction, so the fleet's
    windowed F1 collapses coherently instead of degrading gracefully.  The
    cohort directions are a pure function of ``seed`` (via a private
    :class:`numpy.random.SeedSequence`) and consume **zero** draws from the
    device RNGs, so device streams remain partition-independent and
    bit-identical to an uncorrelated run of the same seed.

    The drift math itself (transform, state stacking, batch hook) is
    inherited from :class:`ConceptDrift`, so columnar==legacy bit-identity
    carries over for free.
    """

    def __init__(
        self,
        drift_per_tick: float = 0.01,
        saturation_tick: int = 0,
        n_cohorts: int = 4,
        seed: int = 0,
    ) -> None:
        super().__init__(drift_per_tick=drift_per_tick, saturation_tick=saturation_tick)
        self.n_cohorts = int(n_cohorts)
        self.seed = int(seed)
        self._directions: Dict[tuple, np.ndarray] = {}

    def _direction(self, cohort: int, window_shape: tuple) -> np.ndarray:
        key = (cohort, tuple(window_shape))
        direction = self._directions.get(key)
        if direction is None:
            rng = np.random.default_rng(
                np.random.SeedSequence((self.seed & 0xFFFFFFFF, cohort))
            )
            direction = rng.normal(size=window_shape)
            norm = float(np.linalg.norm(direction))
            if norm > 0:
                direction = direction / norm
            self._directions[key] = direction
        return direction

    def device_state_for(self, device_id, rng, window_shape):
        cohort = int(device_id) % self.n_cohorts
        return {"drift_direction": self._direction(cohort, window_shape)}

    def device_state(self, rng, window_shape):
        # Identity-free fallback (never used by the fleet, which calls
        # device_state_for): cohort 0's direction, still draw-free.
        return {"drift_direction": self._direction(0, window_shape)}


class AdversarialCamouflage(StreamMutator):
    """Adversarial amplitude camouflage: outliers shrunk toward the boundary.

    The standardised anomaly pool lives in a higher-RMS envelope than the
    normal pool, and reconstruction detectors separate the two on exactly
    that excess energy.  This mutator models an adversary (or a lossy sensor
    front-end) that compresses high-amplitude windows toward the normal
    envelope: any window whose RMS exceeds ``target_amplitude`` keeps only a
    ``1 - strength`` fraction of the excess.  It is label-free — ground
    truth is untouched, normal windows (mostly under the target) pass
    through — so detectors lose recall on the camouflaged anomalies, and a
    qualification contract can pin how much loss is tolerable.

    No RNG draws: the shrink factor is a pure function of the window, so
    the per-device streams are unperturbed and the columnar batch hook is a
    row-wise replay of the same scalar math (bit-identical).
    """

    def __init__(self, target_amplitude: float = 1.0, strength: float = 0.8) -> None:
        self.target_amplitude = float(target_amplitude)
        self.strength = float(strength)

    def _factor(self, window: np.ndarray) -> float:
        rms = float(np.sqrt(np.mean(np.square(window))))
        if rms <= self.target_amplitude or rms == 0.0:
            return 1.0
        excess = rms - self.target_amplitude
        return (self.target_amplitude + (1.0 - self.strength) * excess) / rms

    def transform(self, window, state, tick, rng):
        factor = self._factor(window)
        if factor == 1.0:
            return window
        return window * factor

    def transform_batch(self, windows, stacked, rows, tick, draws):
        for i in range(windows.shape[0]):
            factor = self._factor(windows[i])
            if factor != 1.0:
                windows[i] = windows[i] * factor
        return windows
