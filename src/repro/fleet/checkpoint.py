"""Durable checkpointing for streaming fleet runs.

A :class:`CheckpointStore` persists the streaming engine's state at tick
boundaries so a killed run can resume **bit-identical** to an uninterrupted
one.  The write protocol is write-ahead atomic:

1. the pickled payload is written to a ``.tmp`` file and fsynced;
2. the tmp file is renamed to ``ckpt-<tick>.pkl`` (atomic on POSIX);
3. ``manifest.json`` — also written tmp+rename — records the file name, the
   tick and the payload's SHA-256.

A crash at any point leaves either the previous manifest (pointing at the
previous, intact checkpoint) or the new one (pointing at the fully written
new checkpoint); :meth:`CheckpointStore.latest` verifies the manifest hash
and raises :class:`~repro.exceptions.SerializationError` on corruption
instead of resuming from a damaged snapshot.  The store keeps the last
``keep`` checkpoints (default 2: the newest plus its predecessor as the
crash-during-write fallback) and prunes older ones.

What goes *into* a checkpoint is the engine's business
(:meth:`~repro.fleet.engine.FleetEngine._checkpoint_payload`); this module
only guarantees durability and atomicity.  ``run.json`` helpers persist the
resolved experiment spec next to the checkpoints so ``repro resume <dir>``
can rebuild the whole run from the directory alone.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.exceptions import ConfigurationError, SerializationError

PathLike = Union[str, Path]

#: Bumped whenever the checkpoint payload layout changes; resume refuses to
#: load a payload written by a different format.
CHECKPOINT_FORMAT = 1

_CKPT_PATTERN = re.compile(r"^ckpt-(\d{8})\.pkl$")


def shard_checkpoint_dir(base: PathLike, shard_index: int) -> str:
    """The per-shard checkpoint directory under a sharded run's base dir."""
    if shard_index < 0:
        raise ConfigurationError(f"shard_index must be non-negative, got {shard_index}")
    return str(Path(base) / f"shard-{shard_index:02d}")


class CheckpointStore:
    """Atomic pickle checkpoints under one directory, newest-wins."""

    def __init__(self, directory: PathLike, keep: int = 2) -> None:
        if keep < 1:
            raise ConfigurationError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = int(keep)
        self.directory.mkdir(parents=True, exist_ok=True)

    @property
    def manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    def _checkpoint_path(self, tick: int) -> Path:
        return self.directory / f"ckpt-{tick:08d}.pkl"

    def save(self, payload: Mapping[str, Any], tick: int) -> Path:
        """Durably write ``payload`` as the checkpoint for ``tick``."""
        if tick < 0:
            raise ConfigurationError(f"tick must be non-negative, got {tick}")
        data = pickle.dumps(dict(payload), protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(data).hexdigest()
        target = self._checkpoint_path(tick)
        tmp = target.with_suffix(".pkl.tmp")
        with tmp.open("wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
        manifest = {
            "format": CHECKPOINT_FORMAT,
            "file": target.name,
            "tick": int(tick),
            "sha256": digest,
        }
        manifest_tmp = self.manifest_path.with_suffix(".json.tmp")
        with manifest_tmp.open("w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(manifest_tmp, self.manifest_path)
        self._prune(current=target.name)
        return target

    def _prune(self, current: str) -> None:
        """Drop all but the newest ``keep`` checkpoints (never the current)."""
        entries = sorted(
            name for name in os.listdir(self.directory) if _CKPT_PATTERN.match(name)
        )
        for name in entries[: -self.keep] if len(entries) > self.keep else ():
            if name != current:
                (self.directory / name).unlink(missing_ok=True)

    def latest(self) -> Optional[Dict[str, Any]]:
        """The newest checkpoint payload, hash-verified; ``None`` if none exists."""
        if not self.manifest_path.exists():
            return None
        try:
            with self.manifest_path.open("r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (json.JSONDecodeError, OSError) as exc:
            raise SerializationError(
                f"corrupt checkpoint manifest {self.manifest_path}: {exc}"
            ) from exc
        target = self.directory / str(manifest.get("file", ""))
        if not target.is_file():
            raise SerializationError(
                f"checkpoint manifest points at missing file {target}"
            )
        data = target.read_bytes()
        digest = hashlib.sha256(data).hexdigest()
        if digest != manifest.get("sha256"):
            raise SerializationError(
                f"checkpoint {target} fails its manifest hash — the file is "
                "corrupt; delete it (and the manifest) to restart from scratch"
            )
        payload = pickle.loads(data)
        if payload.get("format") != CHECKPOINT_FORMAT:
            raise SerializationError(
                f"checkpoint {target} uses format {payload.get('format')!r}; "
                f"this build reads format {CHECKPOINT_FORMAT}"
            )
        return payload

    def latest_tick(self) -> Optional[int]:
        """The tick of the newest checkpoint without unpickling it."""
        if not self.manifest_path.exists():
            return None
        with self.manifest_path.open("r", encoding="utf-8") as handle:
            return int(json.load(handle)["tick"])


# -- run descriptors -------------------------------------------------------------

#: File name of the run descriptor written next to the checkpoints.
RUN_FILE = "run.json"


def save_run_descriptor(directory: PathLike, descriptor: Mapping[str, Any]) -> Path:
    """Persist the resolved run configuration for standalone ``repro resume``."""
    from repro.utils.serialization import save_json

    return save_json(Path(directory) / RUN_FILE, descriptor)


def load_run_descriptor(directory: PathLike) -> Dict[str, Any]:
    """Load the run descriptor; wraps malformed JSON in a ``SerializationError``."""
    path = Path(directory) / RUN_FILE
    if not path.exists():
        raise SerializationError(
            f"no {RUN_FILE} in {directory} — was this directory written by "
            "'repro fleet --checkpoint-dir'?"
        )
    try:
        with path.open("r", encoding="utf-8") as handle:
            return json.load(handle)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"malformed {path}: {exc}") from exc
