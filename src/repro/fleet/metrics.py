"""Online evaluation: streaming metrics that never hold the full trace.

:class:`StreamingMetrics` aggregates a fleet run incrementally: global and
windowed confusion counts (accuracy/F1 per block of ticks), per-tier
utilisation and delay sums, and end-to-end delay percentiles estimated from a
bounded :class:`DelayReservoir` — O(reservoir + ticks/metrics_window + tiers)
memory regardless of how many windows stream through.

Aggregators are mergeable: :meth:`StreamingMetrics.merge` folds per-shard
aggregators (in shard order) into the fleet-wide result, which is how
:class:`~repro.fleet.engine.ShardedFleetEngine` reduces its workers.  Merging
a single aggregator is the identity, so a one-shard run reproduces the
unsharded engine bit for bit.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.exceptions import ConfigurationError

#: SeedSequence entropy tag for the reservoir-merge subsampling draws.
_MERGE_TAG = 0x5EED


class DelayReservoir:
    """Bounded uniform sample of a delay stream (Vitter's algorithm R).

    The replacement slot for the ``i``-th overflow sample is drawn as
    ``floor(u * seen)`` from one uniform ``u`` — a formulation chosen because
    a batch of uniforms is stream-equivalent to the same scalar draws, which
    lets :meth:`extend` vectorise the whole replacement phase while staying
    draw-for-draw identical to repeated :meth:`add` calls (pinned by test).
    The samples live in a preallocated array; :attr:`values` presents them as
    a list for the merge/serialisation API.
    """

    def __init__(self, capacity: int, seed_entropy: Sequence[int]) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"reservoir capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._store = np.empty(self.capacity, dtype=float)
        self._size = 0
        self.seen = 0
        self._rng = np.random.default_rng(
            np.random.SeedSequence([int(e) & 0xFFFFFFFF for e in seed_entropy])
        )

    @property
    def values(self) -> List[float]:
        """The sampled delays, in slot order."""
        return self._store[: self._size].tolist()

    @values.setter
    def values(self, new_values) -> None:
        new_values = np.asarray(list(new_values), dtype=float)
        if new_values.size > self.capacity:
            raise ConfigurationError(
                f"cannot hold {new_values.size} samples in a reservoir of "
                f"capacity {self.capacity}"
            )
        self._size = int(new_values.size)
        self._store[: self._size] = new_values

    def add(self, value: float) -> None:
        """Offer one sample to the reservoir."""
        self.seen += 1
        if self._size < self.capacity:
            self._store[self._size] = value
            self._size += 1
            return
        slot = int(self._rng.random() * self.seen)
        if slot < self.capacity:
            self._store[slot] = value

    def extend(self, values) -> None:
        """Offer a batch of samples in order.

        Draw-for-draw identical to calling :meth:`add` per value: the fill
        phase is bulk-copied (no RNG), and the replacement phase draws one
        uniform batch (stream-equivalent to the scalar draws) and applies the
        slot writes with NumPy's last-write-wins fancy assignment — the same
        final state as sequential overwrites.
        """
        values = np.asarray(values, dtype=float)
        if not values.size:
            return
        free = self.capacity - self._size
        if free > 0:
            head = values[:free]
            self._store[self._size: self._size + head.size] = head
            self._size += int(head.size)
            self.seen += int(head.size)
            values = values[free:]
        overflow = int(values.size)
        if not overflow:
            return
        draws = self._rng.random(overflow)
        bounds = self.seen + 1 + np.arange(overflow)
        slots = (draws * bounds).astype(np.int64)
        self.seen += overflow
        hits = slots < self.capacity
        if hits.any():
            self._store[slots[hits]] = values[hits]

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of the sampled delays (NaN when empty)."""
        if not self._size:
            return float("nan")
        return float(np.percentile(self._store[: self._size], q))

    @classmethod
    def merge(cls, parts: Sequence["DelayReservoir"], seed_entropy: Sequence[int]
              ) -> "DelayReservoir":
        """Fold per-shard reservoirs into one, deterministically.

        Samples are concatenated in shard order; when the union exceeds the
        capacity it is subsampled without replacement, weighting each sample
        by its source stream's seen/kept ratio so heavier shards stay
        proportionally represented.  A single part merges to an exact copy.
        """
        if not parts:
            raise ConfigurationError("cannot merge zero reservoirs")
        capacity = parts[0].capacity
        merged = cls(capacity, seed_entropy)
        merged.seen = int(sum(part.seen for part in parts))
        if len(parts) == 1:
            merged.values = list(parts[0].values)
            return merged
        pooled: List[float] = []
        weights: List[float] = []
        for part in parts:
            pooled.extend(part.values)
            if part.values:
                weights.extend([part.seen / len(part.values)] * len(part.values))
        if len(pooled) <= capacity:
            merged.values = pooled
            return merged
        probabilities = np.asarray(weights, dtype=float)
        probabilities /= probabilities.sum()
        chosen = merged._rng.choice(
            len(pooled), size=capacity, replace=False, p=probabilities
        )
        merged.values = [pooled[index] for index in sorted(chosen)]
        return merged


class StreamingMetrics:
    """Incremental fleet-run aggregation (confusion, tiers, delays, uptime)."""

    def __init__(
        self,
        ticks: int,
        metrics_window: int,
        n_layers: int,
        reservoir_size: int,
        seed_entropy: Sequence[int],
    ) -> None:
        if ticks <= 0 or metrics_window <= 0:
            raise ConfigurationError(
                f"ticks and metrics_window must be positive, got {ticks}/{metrics_window}"
            )
        self.ticks = int(ticks)
        self.metrics_window = int(metrics_window)
        self.n_layers = int(n_layers)
        self.n_metric_windows = -(-self.ticks // self.metrics_window)
        # Confusion counts: [tp, fp, tn, fn], globally and per metrics window.
        self.confusion = np.zeros(4, dtype=np.int64)
        self.windowed_confusion = np.zeros((self.n_metric_windows, 4), dtype=np.int64)
        self.windowed_delay_sum = np.zeros(self.n_metric_windows)
        # Per-tier utilisation.
        self.layer_requests = np.zeros(self.n_layers, dtype=np.int64)
        self.layer_delay_sum = np.zeros(self.n_layers)
        self.layer_anomalies = np.zeros(self.n_layers, dtype=np.int64)
        self.layer_redirected = np.zeros(self.n_layers, dtype=np.int64)
        # Delay stream.
        self.delay_sum = 0.0
        self.delay_max = 0.0
        self.reservoir = DelayReservoir(reservoir_size, seed_entropy)
        # Fleet uptime.
        self.online_device_ticks = 0
        self.offline_device_ticks = 0

    # -- ingestion ---------------------------------------------------------------

    def record_uptime(self, online: int, offline: int) -> None:
        """Account one tick's online/offline device counts."""
        self.online_device_ticks += int(online)
        self.offline_device_ticks += int(offline)

    def observe(
        self,
        tick: int,
        layer: int,
        predictions: np.ndarray,
        labels: np.ndarray,
        delays_ms: np.ndarray,
        redirected: int = 0,
    ) -> None:
        """Fold one detected batch (a single layer within one tick) in.

        ``layer`` is the tier that actually *served* the batch;
        ``redirected`` counts how many of its windows were redirected there
        because their requested tier was unreachable (failover accounting).
        """
        predictions = np.asarray(predictions, dtype=int)
        labels = np.asarray(labels, dtype=int)
        delays_ms = np.asarray(delays_ms, dtype=float)
        if not 0 <= tick < self.ticks:
            raise ConfigurationError(f"tick must lie in [0, {self.ticks}), got {tick}")
        counts = confusion_counts(predictions, labels)
        window = tick // self.metrics_window
        self.confusion += counts
        self.windowed_confusion[window] += counts
        self.windowed_delay_sum[window] += float(delays_ms.sum())
        self.layer_requests[layer] += predictions.shape[0]
        self.layer_delay_sum[layer] += float(delays_ms.sum())
        self.layer_anomalies[layer] += int(predictions.sum())
        self.layer_redirected[layer] += int(redirected)
        self.delay_sum += float(delays_ms.sum())
        if delays_ms.size:
            self.delay_max = max(self.delay_max, float(delays_ms.max()))
        self.reservoir.extend(delays_ms)

    # -- derived -----------------------------------------------------------------

    @property
    def n_windows(self) -> int:
        """Total number of windows evaluated so far."""
        return int(self.confusion.sum())

    # -- transport ---------------------------------------------------------------

    def to_payload(self) -> dict:
        """A compact, picklable snapshot of the aggregated counts.

        What a shard worker ships back instead of the whole aggregator: the
        count arrays plus the reservoir's sample — everything
        :meth:`merge` reads — and nothing else (in particular no RNG state,
        which the merge re-derives from its own seed entropy).
        """
        return {
            "ticks": self.ticks,
            "metrics_window": self.metrics_window,
            "n_layers": self.n_layers,
            "confusion": self.confusion,
            "windowed_confusion": self.windowed_confusion,
            "windowed_delay_sum": self.windowed_delay_sum,
            "layer_requests": self.layer_requests,
            "layer_delay_sum": self.layer_delay_sum,
            "layer_anomalies": self.layer_anomalies,
            "layer_redirected": self.layer_redirected,
            "delay_sum": self.delay_sum,
            "delay_max": self.delay_max,
            "online_device_ticks": self.online_device_ticks,
            "offline_device_ticks": self.offline_device_ticks,
            "reservoir_capacity": self.reservoir.capacity,
            "reservoir_seen": self.reservoir.seen,
            "reservoir_values": list(self.reservoir.values),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "StreamingMetrics":
        """Rebuild an aggregator from :meth:`to_payload` (for merging).

        The reconstructed reservoir carries the shard's sample and ``seen``
        count but a fresh placeholder RNG — it exists to be merged, not to
        keep sampling.
        """
        metrics = cls(
            ticks=int(payload["ticks"]),
            metrics_window=int(payload["metrics_window"]),
            n_layers=int(payload["n_layers"]),
            reservoir_size=int(payload["reservoir_capacity"]),
            seed_entropy=(0,),
        )
        metrics.confusion = np.asarray(payload["confusion"], dtype=np.int64)
        metrics.windowed_confusion = np.asarray(
            payload["windowed_confusion"], dtype=np.int64
        )
        metrics.windowed_delay_sum = np.asarray(payload["windowed_delay_sum"], dtype=float)
        metrics.layer_requests = np.asarray(payload["layer_requests"], dtype=np.int64)
        metrics.layer_delay_sum = np.asarray(payload["layer_delay_sum"], dtype=float)
        metrics.layer_anomalies = np.asarray(payload["layer_anomalies"], dtype=np.int64)
        # Absent in payloads written before the failover accounting existed.
        metrics.layer_redirected = np.asarray(
            payload.get("layer_redirected", np.zeros(metrics.n_layers)), dtype=np.int64
        )
        metrics.delay_sum = float(payload["delay_sum"])
        metrics.delay_max = float(payload["delay_max"])
        metrics.online_device_ticks = int(payload["online_device_ticks"])
        metrics.offline_device_ticks = int(payload["offline_device_ticks"])
        metrics.reservoir.seen = int(payload["reservoir_seen"])
        metrics.reservoir.values = [float(v) for v in payload["reservoir_values"]]
        return metrics

    def snapshot_state(self) -> dict:
        """A mid-run snapshot for the fleet checkpoint layer.

        Unlike :meth:`to_payload` (a terminal shard result, RNG-free), a
        checkpoint must let the reservoir *keep sampling* bit-identically, so
        the reservoir's generator state rides along.
        """
        snapshot = self.to_payload()
        snapshot["reservoir_rng_state"] = self.reservoir._rng.bit_generator.state
        return snapshot

    def restore_state(self, snapshot: dict) -> None:
        """Restore the state captured by :meth:`snapshot_state` in place."""
        if (
            int(snapshot["ticks"]) != self.ticks
            or int(snapshot["metrics_window"]) != self.metrics_window
            or int(snapshot["n_layers"]) != self.n_layers
            or int(snapshot["reservoir_capacity"]) != self.reservoir.capacity
        ):
            raise ConfigurationError(
                "checkpointed metrics shape does not match this run — was the "
                "spec changed between checkpoint and resume?"
            )
        restored = StreamingMetrics.from_payload(snapshot)
        for name in (
            "confusion", "windowed_confusion", "windowed_delay_sum",
            "layer_requests", "layer_delay_sum", "layer_anomalies",
            "layer_redirected", "delay_sum", "delay_max",
            "online_device_ticks", "offline_device_ticks",
        ):
            setattr(self, name, getattr(restored, name))
        self.reservoir.seen = restored.reservoir.seen
        self.reservoir.values = restored.reservoir.values
        self.reservoir._rng.bit_generator.state = snapshot["reservoir_rng_state"]

    @classmethod
    def merge(
        cls, parts: Sequence["StreamingMetrics"], seed_entropy: Sequence[int]
    ) -> "StreamingMetrics":
        """Fold per-shard aggregators (in shard order) into one."""
        if not parts:
            raise ConfigurationError("cannot merge zero metric aggregators")
        first = parts[0]
        for part in parts[1:]:
            if (
                part.ticks != first.ticks
                or part.metrics_window != first.metrics_window
                or part.n_layers != first.n_layers
                or part.reservoir.capacity != first.reservoir.capacity
            ):
                raise ConfigurationError("cannot merge metric aggregators with different shapes")
        merged = cls(
            ticks=first.ticks,
            metrics_window=first.metrics_window,
            n_layers=first.n_layers,
            reservoir_size=first.reservoir.capacity,
            seed_entropy=list(seed_entropy) + [_MERGE_TAG],
        )
        for part in parts:
            merged.confusion += part.confusion
            merged.windowed_confusion += part.windowed_confusion
            merged.windowed_delay_sum += part.windowed_delay_sum
            merged.layer_requests += part.layer_requests
            merged.layer_delay_sum += part.layer_delay_sum
            merged.layer_anomalies += part.layer_anomalies
            merged.layer_redirected += part.layer_redirected
            merged.delay_sum += part.delay_sum
            merged.delay_max = max(merged.delay_max, part.delay_max)
            merged.online_device_ticks += part.online_device_ticks
            merged.offline_device_ticks += part.offline_device_ticks
        merged.reservoir = DelayReservoir.merge(
            [part.reservoir for part in parts],
            list(seed_entropy) + [_MERGE_TAG],
        )
        return merged


def confusion_counts(predictions: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """The ``[tp, fp, tn, fn]`` count vector for one batch of binary outcomes.

    The single source of the count ordering :func:`rates_from_confusion`
    expects — shared by the streaming aggregator and the adaptation loop's
    windowed-F1 and shadow-gate computations.
    """
    predictions = np.asarray(predictions, dtype=int)
    labels = np.asarray(labels, dtype=int)
    return np.array(
        [
            np.sum((predictions == 1) & (labels == 1)),
            np.sum((predictions == 1) & (labels == 0)),
            np.sum((predictions == 0) & (labels == 0)),
            np.sum((predictions == 0) & (labels == 1)),
        ],
        dtype=np.int64,
    )


def rates_from_confusion(counts: np.ndarray) -> dict:
    """accuracy/precision/recall/F1 from one ``[tp, fp, tn, fn]`` vector."""
    tp, fp, tn, fn = (int(c) for c in counts)
    total = tp + fp + tn + fn
    accuracy = (tp + tn) / total if total else 0.0
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return {
        "accuracy": float(accuracy),
        "precision": float(precision),
        "recall": float(recall),
        "f1": float(f1),
        "anomaly_fraction": float((tp + fn) / total) if total else 0.0,
    }
