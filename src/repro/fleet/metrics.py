"""Online evaluation: streaming metrics that never hold the full trace.

:class:`StreamingMetrics` aggregates a fleet run incrementally: global and
windowed confusion counts (accuracy/F1 per block of ticks), per-tier
utilisation and delay sums, and end-to-end delay percentiles estimated from a
bounded :class:`DelayReservoir` — O(reservoir + ticks/metrics_window + tiers)
memory regardless of how many windows stream through.

Aggregators are mergeable: :meth:`StreamingMetrics.merge` folds per-shard
aggregators (in shard order) into the fleet-wide result, which is how
:class:`~repro.fleet.engine.ShardedFleetEngine` reduces its workers.  Merging
a single aggregator is the identity, so a one-shard run reproduces the
unsharded engine bit for bit.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.exceptions import ConfigurationError

#: SeedSequence entropy tag for the reservoir-merge subsampling draws.
_MERGE_TAG = 0x5EED


class DelayReservoir:
    """Bounded uniform sample of a delay stream (Vitter's algorithm R)."""

    def __init__(self, capacity: int, seed_entropy: Sequence[int]) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"reservoir capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.values: List[float] = []
        self.seen = 0
        self._rng = np.random.default_rng(
            np.random.SeedSequence([int(e) & 0xFFFFFFFF for e in seed_entropy])
        )

    def add(self, value: float) -> None:
        """Offer one sample to the reservoir."""
        self.seen += 1
        if len(self.values) < self.capacity:
            self.values.append(float(value))
            return
        slot = int(self._rng.integers(self.seen))
        if slot < self.capacity:
            self.values[slot] = float(value)

    def extend(self, values) -> None:
        """Offer a batch of samples in order."""
        for value in values:
            self.add(value)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of the sampled delays (0 when empty)."""
        if not self.values:
            return 0.0
        return float(np.percentile(np.asarray(self.values), q))

    @classmethod
    def merge(cls, parts: Sequence["DelayReservoir"], seed_entropy: Sequence[int]
              ) -> "DelayReservoir":
        """Fold per-shard reservoirs into one, deterministically.

        Samples are concatenated in shard order; when the union exceeds the
        capacity it is subsampled without replacement, weighting each sample
        by its source stream's seen/kept ratio so heavier shards stay
        proportionally represented.  A single part merges to an exact copy.
        """
        if not parts:
            raise ConfigurationError("cannot merge zero reservoirs")
        capacity = parts[0].capacity
        merged = cls(capacity, seed_entropy)
        merged.seen = int(sum(part.seen for part in parts))
        if len(parts) == 1:
            merged.values = list(parts[0].values)
            return merged
        pooled: List[float] = []
        weights: List[float] = []
        for part in parts:
            pooled.extend(part.values)
            if part.values:
                weights.extend([part.seen / len(part.values)] * len(part.values))
        if len(pooled) <= capacity:
            merged.values = pooled
            return merged
        probabilities = np.asarray(weights, dtype=float)
        probabilities /= probabilities.sum()
        chosen = merged._rng.choice(
            len(pooled), size=capacity, replace=False, p=probabilities
        )
        merged.values = [pooled[index] for index in sorted(chosen)]
        return merged


class StreamingMetrics:
    """Incremental fleet-run aggregation (confusion, tiers, delays, uptime)."""

    def __init__(
        self,
        ticks: int,
        metrics_window: int,
        n_layers: int,
        reservoir_size: int,
        seed_entropy: Sequence[int],
    ) -> None:
        if ticks <= 0 or metrics_window <= 0:
            raise ConfigurationError(
                f"ticks and metrics_window must be positive, got {ticks}/{metrics_window}"
            )
        self.ticks = int(ticks)
        self.metrics_window = int(metrics_window)
        self.n_layers = int(n_layers)
        self.n_metric_windows = -(-self.ticks // self.metrics_window)
        # Confusion counts: [tp, fp, tn, fn], globally and per metrics window.
        self.confusion = np.zeros(4, dtype=np.int64)
        self.windowed_confusion = np.zeros((self.n_metric_windows, 4), dtype=np.int64)
        self.windowed_delay_sum = np.zeros(self.n_metric_windows)
        # Per-tier utilisation.
        self.layer_requests = np.zeros(self.n_layers, dtype=np.int64)
        self.layer_delay_sum = np.zeros(self.n_layers)
        self.layer_anomalies = np.zeros(self.n_layers, dtype=np.int64)
        # Delay stream.
        self.delay_sum = 0.0
        self.delay_max = 0.0
        self.reservoir = DelayReservoir(reservoir_size, seed_entropy)
        # Fleet uptime.
        self.online_device_ticks = 0
        self.offline_device_ticks = 0

    # -- ingestion ---------------------------------------------------------------

    def record_uptime(self, online: int, offline: int) -> None:
        """Account one tick's online/offline device counts."""
        self.online_device_ticks += int(online)
        self.offline_device_ticks += int(offline)

    def observe(
        self,
        tick: int,
        layer: int,
        predictions: np.ndarray,
        labels: np.ndarray,
        delays_ms: np.ndarray,
    ) -> None:
        """Fold one detected batch (a single layer within one tick) in."""
        predictions = np.asarray(predictions, dtype=int)
        labels = np.asarray(labels, dtype=int)
        delays_ms = np.asarray(delays_ms, dtype=float)
        if not 0 <= tick < self.ticks:
            raise ConfigurationError(f"tick must lie in [0, {self.ticks}), got {tick}")
        counts = confusion_counts(predictions, labels)
        window = tick // self.metrics_window
        self.confusion += counts
        self.windowed_confusion[window] += counts
        self.windowed_delay_sum[window] += float(delays_ms.sum())
        self.layer_requests[layer] += predictions.shape[0]
        self.layer_delay_sum[layer] += float(delays_ms.sum())
        self.layer_anomalies[layer] += int(predictions.sum())
        self.delay_sum += float(delays_ms.sum())
        if delays_ms.size:
            self.delay_max = max(self.delay_max, float(delays_ms.max()))
        self.reservoir.extend(delays_ms)

    # -- derived -----------------------------------------------------------------

    @property
    def n_windows(self) -> int:
        """Total number of windows evaluated so far."""
        return int(self.confusion.sum())

    @classmethod
    def merge(
        cls, parts: Sequence["StreamingMetrics"], seed_entropy: Sequence[int]
    ) -> "StreamingMetrics":
        """Fold per-shard aggregators (in shard order) into one."""
        if not parts:
            raise ConfigurationError("cannot merge zero metric aggregators")
        first = parts[0]
        for part in parts[1:]:
            if (
                part.ticks != first.ticks
                or part.metrics_window != first.metrics_window
                or part.n_layers != first.n_layers
                or part.reservoir.capacity != first.reservoir.capacity
            ):
                raise ConfigurationError("cannot merge metric aggregators with different shapes")
        merged = cls(
            ticks=first.ticks,
            metrics_window=first.metrics_window,
            n_layers=first.n_layers,
            reservoir_size=first.reservoir.capacity,
            seed_entropy=list(seed_entropy) + [_MERGE_TAG],
        )
        for part in parts:
            merged.confusion += part.confusion
            merged.windowed_confusion += part.windowed_confusion
            merged.windowed_delay_sum += part.windowed_delay_sum
            merged.layer_requests += part.layer_requests
            merged.layer_delay_sum += part.layer_delay_sum
            merged.layer_anomalies += part.layer_anomalies
            merged.delay_sum += part.delay_sum
            merged.delay_max = max(merged.delay_max, part.delay_max)
            merged.online_device_ticks += part.online_device_ticks
            merged.offline_device_ticks += part.offline_device_ticks
        merged.reservoir = DelayReservoir.merge(
            [part.reservoir for part in parts],
            list(seed_entropy) + [_MERGE_TAG],
        )
        return merged


def confusion_counts(predictions: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """The ``[tp, fp, tn, fn]`` count vector for one batch of binary outcomes.

    The single source of the count ordering :func:`rates_from_confusion`
    expects — shared by the streaming aggregator and the adaptation loop's
    windowed-F1 and shadow-gate computations.
    """
    predictions = np.asarray(predictions, dtype=int)
    labels = np.asarray(labels, dtype=int)
    return np.array(
        [
            np.sum((predictions == 1) & (labels == 1)),
            np.sum((predictions == 1) & (labels == 0)),
            np.sum((predictions == 0) & (labels == 0)),
            np.sum((predictions == 0) & (labels == 1)),
        ],
        dtype=np.int64,
    )


def rates_from_confusion(counts: np.ndarray) -> dict:
    """accuracy/precision/recall/F1 from one ``[tp, fp, tn, fn]`` vector."""
    tp, fp, tn, fn = (int(c) for c in counts)
    total = tp + fp + tn + fn
    accuracy = (tp + tn) / total if total else 0.0
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return {
        "accuracy": float(accuracy),
        "precision": float(precision),
        "recall": float(recall),
        "f1": float(f1),
        "anomaly_fraction": float((tp + fn) / total) if total else 0.0,
    }
