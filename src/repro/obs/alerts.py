"""Declarative alerting over sliding-window rollups.

An :class:`AlertRule` names a health condition over the metrics a run is
already emitting — a threshold on a rate or rolling quantile, the absence of
a liveness counter, or a Google-SRE-style multi-window burn rate over an
error budget.  An :class:`AlertManager` evaluates its rules against a
:class:`~repro.obs.rollup.RollupRing` each time the watcher pushes a
snapshot, and drives a fire/resolve lifecycle per rule: a breach transition
emits a structured ``alert.fire`` trace event, and the alert resolves (with
``alert.resolve``) only after ``resolve_after`` consecutive healthy
evaluations — hysteresis, so a flapping signal does not spam the trace.

Alerting is strictly part of the observer: it reads snapshots and writes
trace events, and never feeds back into admission, scheduling or adaptation
decisions.  A telemetered run with every rule firing is still bit-identical
to the same run with telemetry disabled.

Edge-case semantics are pinned by tests:

* **zero traffic** — a burn-rate window whose denominator saw no requests
  burns no budget and is healthy (no division blow-up, no false page);
* **absent metrics** — a threshold or burn-rate rule naming a metric the
  run never registered raises :class:`~repro.exceptions.ConfigurationError`
  naming the rule, because a typo must not evaluate as eternally healthy;
  *absence* rules are the exception — "metric missing" is exactly what they
  alert on;
* **flapping** — a signal oscillating around the threshold keeps the alert
  firing until ``resolve_after`` consecutive healthy windows pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.obs.rollup import LabelFilter, Rollup, RollupRing

_KINDS = ("threshold", "absence", "burn-rate")
_VALUES = ("rate", "level", "quantile", "delta")
_OPS = (">", "<")


@dataclass(frozen=True)
class AlertRule:
    """One declarative health condition.

    ``kind`` selects the evaluation:

    ``threshold``
        Read ``value`` (``rate`` / ``level`` / ``delta`` / ``quantile`` —
        quantiles use ``quantile`` as q) of ``metric`` over the last
        ``over`` snapshots and compare against ``threshold`` with ``op``.
        A quantile window with no observations is healthy.

    ``absence``
        Breach when ``metric`` is missing from the newest snapshot or its
        delta over the last ``over`` snapshots is zero — a liveness check
        (e.g. "the fleet stopped completing windows").

    ``burn-rate``
        Error-budget burn: bad events are the ``metric`` delta (with
        ``above`` set, ``metric`` must be a histogram and bad events are
        the estimated observations above that bound); the total is the
        ``denominator`` delta.  The burn rate is
        ``(bad / total) / budget``; the rule breaches only when *both* the
        fast (``over`` snapshots) and the slow (``slow_over`` snapshots)
        windows burn faster than ``factor`` — the classic multi-window
        guard against paging on a blip.
    """

    name: str
    kind: str
    metric: str
    labels: LabelFilter = ()
    #: threshold rules: which reading of the metric to compare.
    value: str = "rate"
    op: str = ">"
    threshold: float = 0.0
    #: quantile for ``value="quantile"`` threshold rules.
    quantile: float = 0.99
    #: fast-window width in snapshots (all kinds).
    over: int = 2
    #: burn-rate: the all-events counter the bad events are a fraction of.
    denominator: str = ""
    denominator_labels: LabelFilter = ()
    #: burn-rate with a histogram numerator: count observations above this.
    above: Optional[float] = None
    #: burn-rate: tolerable bad fraction (the error budget).
    budget: float = 0.05
    #: burn-rate: fire when burning ``factor``× faster than budget.
    factor: float = 2.0
    #: burn-rate: slow-window width in snapshots.
    slow_over: int = 6
    #: consecutive healthy evaluations required before resolving.
    resolve_after: int = 3

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"alert rule {self.name!r}: kind must be one of {_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.kind == "threshold" and self.value not in _VALUES:
            raise ConfigurationError(
                f"alert rule {self.name!r}: value must be one of {_VALUES}, "
                f"got {self.value!r}"
            )
        if self.op not in _OPS:
            raise ConfigurationError(
                f"alert rule {self.name!r}: op must be one of {_OPS}, "
                f"got {self.op!r}"
            )
        if self.kind == "burn-rate" and not self.denominator:
            raise ConfigurationError(
                f"alert rule {self.name!r}: burn-rate rules need a "
                "denominator metric"
            )
        if self.over < 1 or (self.kind == "burn-rate" and self.slow_over < self.over):
            raise ConfigurationError(
                f"alert rule {self.name!r}: windows must satisfy "
                f"1 <= over <= slow_over, got over={self.over} "
                f"slow_over={self.slow_over}"
            )
        if self.resolve_after < 1:
            raise ConfigurationError(
                f"alert rule {self.name!r}: resolve_after must be >= 1, "
                f"got {self.resolve_after}"
            )

    # -- evaluation ------------------------------------------------------

    def _require(self, rollup: Rollup, metric: str) -> None:
        if not rollup.has(metric):
            raise ConfigurationError(
                f"alert rule {self.name!r} references unknown metric "
                f"{metric!r}: the run never registered it (typo, or the "
                "subsystem that emits it is not running)"
            )

    def _burn_rate(self, rollup: Rollup) -> float:
        total = rollup.delta(self.denominator, self.denominator_labels)
        if total <= 0:
            # Zero traffic burns zero budget: an idle service is healthy,
            # and 0/0 must not page anyone.
            return 0.0
        if self.above is not None:
            fraction = rollup.fraction_above(self.metric, self.above, self.labels)
            bad = (fraction or 0.0) * rollup.delta(self.metric, self.labels)
        else:
            bad = rollup.delta(self.metric, self.labels)
        if self.budget <= 0:
            raise ConfigurationError(
                f"alert rule {self.name!r}: budget must be > 0, got {self.budget}"
            )
        return (bad / total) / self.budget

    def evaluate(self, ring: RollupRing) -> Tuple[bool, Dict[str, Any]]:
        """``(breached, detail)`` for the current ring state.

        With fewer than two snapshots nothing is evaluable and every kind
        reports healthy (the run has not produced a window yet).
        """
        rollup = ring.rollup(over=self.over)
        if rollup is None:
            return False, {"reason": "warming-up"}

        if self.kind == "absence":
            if not rollup.has(self.metric):
                return True, {"reason": "metric-missing"}
            delta = rollup.delta(self.metric, self.labels)
            return delta <= 0, {"delta": delta}

        self._require(rollup, self.metric)

        if self.kind == "threshold":
            if self.value == "rate":
                reading: Optional[float] = rollup.rate(self.metric, self.labels)
            elif self.value == "level":
                reading = rollup.level(self.metric, self.labels)
            elif self.value == "delta":
                reading = rollup.delta(self.metric, self.labels)
            else:
                reading = rollup.quantile(self.metric, self.quantile, self.labels)
            if reading is None:
                return False, {"reason": "no-observations"}
            breached = reading > self.threshold if self.op == ">" else reading < self.threshold
            return breached, {"value": reading, "threshold": self.threshold}

        # burn-rate: both windows must burn hot.
        self._require(rollup, self.denominator)
        fast = self._burn_rate(rollup)
        slow_rollup = ring.rollup(over=self.slow_over)
        slow = self._burn_rate(slow_rollup) if slow_rollup is not None else fast
        breached = fast > self.factor and slow > self.factor
        return breached, {"fast_burn": fast, "slow_burn": slow, "factor": self.factor}


@dataclass
class _RuleState:
    firing: bool = False
    healthy_streak: int = 0
    fired_at: Optional[float] = None
    detail: Dict[str, Any] = field(default_factory=dict)


class AlertManager:
    """Evaluates rules against a ring and drives fire/resolve lifecycle.

    ``telemetry`` (a :class:`~repro.obs.export.Telemetry`, or anything with
    an ``event(name, **attrs)`` method) receives ``alert.fire`` and
    ``alert.resolve`` events on transitions; pass ``None`` to just track
    state (tests, offline evaluation).
    """

    def __init__(self, rules, telemetry=None) -> None:
        self.rules: Tuple[AlertRule, ...] = tuple(rules)
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate alert rule names: {sorted(names)}")
        self.telemetry = telemetry
        self._states: Dict[str, _RuleState] = {r.name: _RuleState() for r in self.rules}

    @property
    def active(self) -> List[str]:
        """Names of currently-firing alerts, sorted."""
        return sorted(n for n, s in self._states.items() if s.firing)

    def state(self, name: str) -> Dict[str, Any]:
        """Lifecycle state of one rule (for live views and tests)."""
        state = self._states[name]
        return {
            "firing": state.firing,
            "healthy_streak": state.healthy_streak,
            "fired_at": state.fired_at,
            "detail": dict(state.detail),
        }

    def _emit(self, name: str, **attributes: Any) -> None:
        if self.telemetry is not None:
            self.telemetry.event(name, **attributes)

    def evaluate(self, ring: RollupRing, key: float) -> List[str]:
        """Evaluate every rule at progress ``key``; return active names."""
        for rule in self.rules:
            breached, detail = rule.evaluate(ring)
            state = self._states[rule.name]
            state.detail = detail
            if breached:
                state.healthy_streak = 0
                if not state.firing:
                    state.firing = True
                    state.fired_at = float(key)
                    self._emit(
                        "alert.fire",
                        alert=rule.name,
                        rule_kind=rule.kind,
                        key=float(key),
                        **detail,
                    )
            elif state.firing:
                state.healthy_streak += 1
                if state.healthy_streak >= rule.resolve_after:
                    state.firing = False
                    state.healthy_streak = 0
                    self._emit(
                        "alert.resolve",
                        alert=rule.name,
                        rule_kind=rule.kind,
                        key=float(key),
                        fired_at=state.fired_at,
                    )
                    state.fired_at = None
        return self.active


def default_serving_rules(spec=None) -> Tuple[AlertRule, ...]:
    """The stock rule set for ``repro serve`` watches.

    * ``slo-burn-rate`` — multi-window burn over the admission counters:
      shed + rejected + expired requests as a fraction of submissions,
      against a 5% budget.  This is the rule the overload recipe (and CI)
      expects to fire under 2x overload and resolve once the queue drains.
    * ``latency-slo-burn`` — burn over served latency observations above
      the SLO p99 bound, against a 1% budget.
    """
    slo_ms = float(getattr(spec, "slo_p99_ms", 1500.0))
    return (
        AlertRule(
            name="slo-burn-rate",
            kind="burn-rate",
            metric="serve_requests_total",
            labels=(("status", ("shed", "rejected", "expired")),),
            denominator="serve_requests_total",
            denominator_labels=(("status", "submitted"),),
            budget=0.05,
            factor=2.0,
            over=2,
            slow_over=6,
            resolve_after=3,
        ),
        AlertRule(
            name="latency-slo-burn",
            kind="burn-rate",
            metric="serve_latency_ms",
            above=slo_ms,
            denominator="serve_requests_total",
            denominator_labels=(("status", "served"),),
            budget=0.01,
            factor=2.0,
            over=2,
            slow_over=6,
            resolve_after=3,
        ),
    )


def default_fleet_rules() -> Tuple[AlertRule, ...]:
    """The stock rule set for ``repro fleet`` watches.

    * ``fleet-stalled`` — absence rule on window completions: the fleet is
      supposed to finish windows every tick, so a window with zero
      completions means a stalled or wedged run.
    """
    return (
        AlertRule(
            name="fleet-stalled",
            kind="absence",
            metric="fleet_tier_windows_total",
            over=2,
            resolve_after=2,
        ),
    )
