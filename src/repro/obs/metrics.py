"""The telemetry metrics registry: labeled counters, gauges and histograms.

A :class:`MetricsRegistry` is the numeric half of the observability layer —
bounded-size aggregates the instrumented subsystems (serving front door,
streaming engines, adaptation loop, checkpoint store) fold their measurements
into.  Three metric kinds are supported:

* **counters** — monotone sums (requests served, windows streamed, faults
  activated); merged by addition;
* **gauges** — level samples read as high-water marks (peak queue depth,
  largest micro-batch); merged by maximum, which is the only merge that is
  both associative/commutative *and* meaningful for a level;
* **histograms** — fixed-boundary bucket counts plus an exact sum/count
  (latencies, batch sizes, checkpoint save times); merged by element-wise
  bucket addition.

Every kind supports labels (``family.labels(tier="edge").inc()``) and the
whole registry follows the :class:`~repro.fleet.metrics.StreamingMetrics`
payload contract — :meth:`MetricsRegistry.to_payload` /
:meth:`MetricsRegistry.from_payload` / :meth:`MetricsRegistry.merge` — so
sharded workers fold into one registry deterministically: merge is
associative and commutative, and merging empty registries is the identity
(all pinned by tests).  :meth:`MetricsRegistry.render_prometheus` emits the
final state in the Prometheus text exposition format.

Nothing in this module touches an RNG or the experiment state; recording is
plain float arithmetic, which is what keeps telemetry-enabled runs
bit-identical to telemetry-disabled ones.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError

#: Default histogram bucket upper bounds (milliseconds-flavoured; pass
#: explicit ``buckets`` for histograms measured in other units).  The
#: implicit final bucket is ``+Inf``.
DEFAULT_BUCKETS = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
    200.0, 500.0, 1000.0, 2000.0, 5000.0,
)

#: Payload schema version (see :meth:`MetricsRegistry.to_payload`).
PAYLOAD_VERSION = 1

_KINDS = ("counter", "gauge", "histogram")


def _check_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ConfigurationError(
            f"metric names must be non-empty [a-zA-Z0-9_:]+, got {name!r}"
        )
    if name[0].isdigit():
        raise ConfigurationError(f"metric names cannot start with a digit: {name!r}")
    return name


def _escape_label_value(value: str) -> str:
    """Escape a label value for the Prometheus text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Prometheus-style number formatting (integers without a trailing .0)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def estimate_quantile(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> Optional[float]:
    """Prometheus-style interpolated quantile from fixed-bucket counts.

    ``bounds`` are the finite bucket upper bounds and ``counts`` the
    *non-cumulative* per-bucket counts with the trailing ``+Inf`` slot (the
    :class:`_HistogramCell` layout).  The estimate is linear interpolation
    inside the bucket holding the target rank, with the conventional
    Prometheus edge cases: a rank landing in the ``+Inf`` bucket clamps to
    the largest finite bound, and the first bucket interpolates from zero.

    The result is a pure function of the summed bucket counts, so it is
    exact under merge reordering: however shard registries are merged (any
    order, any grouping), equal total counts give equal quantiles — the
    property the merge-invariance tests pin.  Returns ``None`` for an empty
    histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total <= 0:
        return None
    rank = q * total
    cumulative = 0
    for i, bound in enumerate(bounds):
        previous = cumulative
        cumulative += counts[i]
        if cumulative >= rank and counts[i] > 0:
            lower = bounds[i - 1] if i > 0 else 0.0
            fraction = (rank - previous) / counts[i]
            return lower + (float(bound) - lower) * fraction
    # The rank lands in the +Inf bucket: clamp to the largest finite bound.
    return float(bounds[-1])


def estimate_fraction_above(
    bounds: Sequence[float], counts: Sequence[int], threshold: float
) -> Optional[float]:
    """The estimated fraction of observations above ``threshold``.

    Counts in buckets entirely above the threshold are taken whole; the
    bucket straddling it contributes linearly-interpolated partial mass
    (the same within-bucket-uniform assumption as :func:`estimate_quantile`,
    and equally merge-order invariant).  Observations in the ``+Inf`` bucket
    always count as above any finite threshold.  Returns ``None`` for an
    empty histogram.
    """
    total = sum(counts)
    if total <= 0:
        return None
    threshold = float(threshold)
    above = float(counts[-1])  # the +Inf bucket
    for i, bound in enumerate(bounds):
        lower = bounds[i - 1] if i > 0 else 0.0
        if threshold <= lower:
            above += counts[i]
        elif threshold < bound:
            above += counts[i] * (bound - threshold) / (bound - lower)
    return above / total


class _Cell:
    """One (labelset -> value) child shared by counters and gauges."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = float(value)


class _HistogramCell:
    """One labelset's bucket counts plus exact sum/count."""

    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        #: Per-bucket (non-cumulative) counts; the final slot is +Inf.
        self.counts = [0] * (n_buckets + 1)
        self.sum = 0.0
        self.count = 0

    def quantile(self, q: float, bounds: Sequence[float]) -> Optional[float]:
        """Interpolated quantile of this cell (see :func:`estimate_quantile`)."""
        return estimate_quantile(bounds, self.counts, q)


class _MetricFamily:
    """One named metric with a fixed kind, label schema and children."""

    __slots__ = ("name", "kind", "help", "labelnames", "buckets", "_children")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Tuple[str, ...],
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.name = _check_name(name)
        self.kind = kind
        self.help = str(help)
        self.labelnames = tuple(str(n) for n in labelnames)
        if kind == "histogram":
            bounds = tuple(float(b) for b in (buckets or DEFAULT_BUCKETS))
            if not bounds or any(
                b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
            ):
                raise ConfigurationError(
                    f"histogram {name!r} needs strictly increasing, non-empty "
                    f"bucket bounds, got {bounds}"
                )
            self.buckets = bounds
        else:
            self.buckets = None
        self._children: Dict[Tuple[str, ...], Any] = {}

    # -- child addressing -------------------------------------------------------

    def labels(self, **labelvalues: Any):
        """The child cell for one labelset (created on first use)."""
        if tuple(sorted(labelvalues)) != tuple(sorted(self.labelnames)):
            raise ConfigurationError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        return self._child(key)

    def _child(self, key: Tuple[str, ...]):
        child = self._children.get(key)
        if child is None:
            if self.kind == "histogram":
                child = _HistogramCell(len(self.buckets))
            else:
                child = _Cell()
            self._children[key] = child
        return child

    def _default(self):
        if self.labelnames:
            raise ConfigurationError(
                f"metric {self.name!r} is labeled {self.labelnames}; "
                "address a child with .labels(...)"
            )
        return self._child(())

    # -- recording (unlabeled convenience) --------------------------------------

    def inc(self, amount: float = 1.0) -> None:
        self._default().value += float(amount)

    def set(self, value: float) -> None:
        self._default().value = float(value)

    def set_max(self, value: float) -> None:
        cell = self._default()
        if float(value) > cell.value:
            cell.value = float(value)

    def observe(self, value: float) -> None:
        self.observe_cell(self._default(), value)

    def observe_cell(self, cell: _HistogramCell, value: float) -> None:
        value = float(value)
        buckets = self.buckets
        index = len(buckets)
        for i, bound in enumerate(buckets):
            if value <= bound:
                index = i
                break
        cell.counts[index] += 1
        cell.sum += value
        cell.count += 1

    # -- reads ------------------------------------------------------------------

    def value(self, **labelvalues: Any) -> float:
        """The current value of one counter/gauge child (0 if never touched)."""
        if self.kind == "histogram":
            raise ConfigurationError(
                f"{self.name!r} is a histogram; read .snapshot() instead"
            )
        if labelvalues:
            return self.labels(**labelvalues).value
        key = ()
        child = self._children.get(key)
        return child.value if child is not None else 0.0

    def snapshot(self, **labelvalues: Any) -> Dict[str, Any]:
        """A histogram child's ``{"counts", "sum", "count"}`` copy."""
        if self.kind != "histogram":
            raise ConfigurationError(f"{self.name!r} is not a histogram")
        cell = self.labels(**labelvalues) if labelvalues else self._default()
        return {"counts": list(cell.counts), "sum": cell.sum, "count": cell.count}

    def quantile(self, q: float, **labelvalues: Any) -> Optional[float]:
        """One histogram child's interpolated quantile (``None`` when empty).

        The estimate is a pure function of the bucket counts, so any merge
        order of shard registries yields the same value (pinned by the
        merge-invariance property tests).
        """
        if self.kind != "histogram":
            raise ConfigurationError(f"{self.name!r} is not a histogram")
        cell = self.labels(**labelvalues) if labelvalues else self._default()
        return cell.quantile(q, self.buckets)


class MetricsRegistry:
    """A deterministic, mergeable collection of named metric families."""

    def __init__(self) -> None:
        self._families: Dict[str, _MetricFamily] = {}

    # -- construction -----------------------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> _MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise ConfigurationError(
                    f"metric {name!r} is already registered as a "
                    f"{existing.kind}, not a {kind}"
                )
            if existing.labelnames != tuple(labelnames):
                raise ConfigurationError(
                    f"metric {name!r} is already registered with labels "
                    f"{existing.labelnames}, got {tuple(labelnames)}"
                )
            if kind == "histogram" and buckets is not None and existing.buckets != tuple(
                float(b) for b in buckets
            ):
                raise ConfigurationError(
                    f"histogram {name!r} is already registered with buckets "
                    f"{existing.buckets}"
                )
            return existing
        family = _MetricFamily(
            name, kind, help, tuple(labelnames), tuple(buckets) if buckets else None
        )
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> _MetricFamily:
        """Register (or fetch) a monotone counter family."""
        return self._family(name, "counter", help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> _MetricFamily:
        """Register (or fetch) a gauge family (merged as a high-water mark)."""
        return self._family(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> _MetricFamily:
        """Register (or fetch) a fixed-bucket histogram family."""
        return self._family(name, "histogram", help, labelnames, buckets)

    # -- reads ------------------------------------------------------------------

    def get(self, name: str) -> Optional[_MetricFamily]:
        return self._families.get(name)

    def families(self) -> List[_MetricFamily]:
        """Families sorted by name (the deterministic iteration order)."""
        return [self._families[name] for name in sorted(self._families)]

    def __len__(self) -> int:
        return len(self._families)

    # -- payload contract (StreamingMetrics style) ------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """A JSON-ready snapshot (sorted, round-trippable, mergeable)."""
        metrics = []
        for family in self.families():
            children = []
            for key in sorted(family._children):
                cell = family._children[key]
                entry: Dict[str, Any] = {"labels": list(key)}
                if family.kind == "histogram":
                    entry["counts"] = list(cell.counts)
                    entry["sum"] = float(cell.sum)
                    entry["count"] = int(cell.count)
                else:
                    entry["value"] = float(cell.value)
                children.append(entry)
            record: Dict[str, Any] = {
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "children": children,
            }
            if family.kind == "histogram":
                record["buckets"] = list(family.buckets)
            metrics.append(record)
        return {
            "kind": "obs-metrics-registry",
            "version": PAYLOAD_VERSION,
            "metrics": metrics,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_payload` output."""
        if payload.get("kind") != "obs-metrics-registry":
            raise ConfigurationError(
                f"not a metrics-registry payload: kind={payload.get('kind')!r}"
            )
        if payload.get("version") != PAYLOAD_VERSION:
            raise ConfigurationError(
                f"metrics payload version {payload.get('version')!r} is not "
                f"readable by this build (version {PAYLOAD_VERSION})"
            )
        registry = cls()
        for record in payload.get("metrics", ()):
            family = registry._family(
                record["name"],
                record["kind"],
                record.get("help", ""),
                tuple(record.get("labelnames", ())),
                tuple(record["buckets"]) if record["kind"] == "histogram" else None,
            )
            for entry in record.get("children", ()):
                key = tuple(str(v) for v in entry["labels"])
                cell = family._child(key)
                if family.kind == "histogram":
                    counts = list(entry["counts"])
                    if len(counts) != len(family.buckets) + 1:
                        raise ConfigurationError(
                            f"histogram {family.name!r} payload has "
                            f"{len(counts)} bucket counts for "
                            f"{len(family.buckets)} bounds"
                        )
                    cell.counts = [int(c) for c in counts]
                    cell.sum = float(entry["sum"])
                    cell.count = int(entry["count"])
                else:
                    cell.value = float(entry["value"])
        return registry

    def merge_from(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other``'s values into this registry (in place).

        Counters and histogram buckets add, gauges keep the maximum.
        Families present in only one registry are carried over whole; shared
        families must agree on kind, label schema and bucket bounds.
        """
        for theirs in other.families():
            family = self._family(
                theirs.name, theirs.kind, theirs.help, theirs.labelnames, theirs.buckets
            )
            for key, cell in theirs._children.items():
                mine = family._child(key)
                if family.kind == "histogram":
                    mine.counts = [
                        a + b for a, b in zip(mine.counts, cell.counts)
                    ]
                    mine.sum += cell.sum
                    mine.count += cell.count
                elif family.kind == "counter":
                    mine.value += cell.value
                else:  # gauge: high-water mark
                    mine.value = max(mine.value, cell.value)
        return self

    @classmethod
    def merge(cls, parts: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        """A new registry folding ``parts`` together (associative, commutative,
        and the empty registry is the identity)."""
        merged = cls()
        for part in parts:
            merged.merge_from(part)
        return merged

    def project(
        self, drop_substrings: Sequence[str] = ("seconds",)
    ) -> Dict[str, Any]:
        """The payload with families whose name contains a marker dropped.

        Wall-clock families (``*_seconds*`` counters and the checkpoint
        timing histograms) legitimately differ between a sharded and a
        serial run; dropping them leaves exactly the deterministic counts,
        which is what the merged-shard-registry ≡ serial-run-registry pins
        compare.
        """
        payload = self.to_payload()
        payload["metrics"] = [
            record
            for record in payload["metrics"]
            if not any(marker in record["name"] for marker in drop_substrings)
        ]
        return payload

    # -- Prometheus text exposition ---------------------------------------------

    def render_prometheus(self) -> str:
        """The final registry state in the Prometheus text exposition format."""
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key in sorted(family._children):
                cell = family._children[key]
                base_labels = [
                    f'{name}="{_escape_label_value(value)}"'
                    for name, value in zip(family.labelnames, key)
                ]
                if family.kind == "histogram":
                    cumulative = 0
                    for bound, count in zip(family.buckets, cell.counts):
                        cumulative += count
                        labels = base_labels + [f'le="{_format_value(bound)}"']
                        lines.append(
                            f"{family.name}_bucket{{{','.join(labels)}}} {cumulative}"
                        )
                    cumulative += cell.counts[-1]
                    labels = base_labels + ['le="+Inf"']
                    lines.append(
                        f"{family.name}_bucket{{{','.join(labels)}}} {cumulative}"
                    )
                    suffix = f"{{{','.join(base_labels)}}}" if base_labels else ""
                    lines.append(
                        f"{family.name}_sum{suffix} {_format_value(cell.sum)}"
                    )
                    lines.append(f"{family.name}_count{suffix} {cell.count}")
                else:
                    suffix = f"{{{','.join(base_labels)}}}" if base_labels else ""
                    lines.append(
                        f"{family.name}{suffix} {_format_value(cell.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")
