"""Telemetry exporters and the per-run :class:`Telemetry` session object.

:class:`JsonlSink` writes span/event records incrementally to a ``.tmp``
file and atomically renames it into place on :meth:`JsonlSink.close` — the
:class:`~repro.fleet.checkpoint.CheckpointStore` write protocol, so a
crashed run never leaves a half-written file masquerading as a complete
trace (the partial ``.tmp`` stays inspectable next to it).

:class:`Telemetry` bundles the three pillars for one run — a
:class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.trace.Tracer` wired into the JSONL sink, and a structured
event stream — behind the single optional reference the instrumented
subsystems hold.  :meth:`Telemetry.finalize` closes the sink and dumps the
final registry as both JSON (:meth:`~repro.obs.metrics.MetricsRegistry.
to_payload`) and Prometheus text exposition.

File layout under ``out_dir``::

    trace.jsonl    # header line + span/event records, one JSON object per line
    metrics.json   # the registry payload (mergeable, round-trippable)
    metrics.prom   # Prometheus text exposition of the same registry

With ``out_dir=None`` everything stays in memory (:attr:`Telemetry.spans`,
:attr:`Telemetry.events`), which is what the bit-identity tests and the
benchmark harness use.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.exceptions import ConfigurationError, SerializationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.spec import ObsSpec
from repro.obs.trace import Span, Tracer, current_ids

PathLike = Union[str, Path]

#: Bumped when the JSONL record layout changes; stamped on the header line.
TRACE_SCHEMA_VERSION = 1

#: File names written under the telemetry directory.
TRACE_FILE = "trace.jsonl"
METRICS_JSON_FILE = "metrics.json"
METRICS_PROM_FILE = "metrics.prom"

#: Version stamp of the compact shard-telemetry payload returned by workers.
SHARD_PAYLOAD_VERSION = 1


def shard_obs_dir(base: PathLike, shard_index: int) -> str:
    """Shard ``shard_index``'s telemetry sink directory under ``base``.

    Mirrors :func:`~repro.fleet.checkpoint.shard_checkpoint_dir` so a sharded
    telemetered run and a sharded checkpointed run lay out their per-shard
    state identically (``<base>/shard-NN/``).
    """
    return str(Path(base) / f"shard-{int(shard_index):02d}")


class JsonlSink:
    """Incremental JSONL writer with an atomic tmp+rename close.

    ``line_buffered=True`` flushes after every record so a live reader
    (``repro obs top --follow``) sees spans while the run is still going;
    the default buffers normally — cheaper, and the atomic close publishes
    everything at once.
    """

    def __init__(self, path: PathLike, line_buffered: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.line_buffered = bool(line_buffered)
        self._tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        self._handle = self._tmp.open("w", encoding="utf-8")
        self.n_records = 0

    @property
    def closed(self) -> bool:
        return self._handle is None

    def write(self, record: Mapping[str, Any]) -> None:
        """Append one record as a compact JSON line."""
        if self._handle is None:
            raise ConfigurationError(f"JSONL sink {self.path} is already closed")
        json.dump(record, self._handle, separators=(",", ":"), sort_keys=True)
        self._handle.write("\n")
        self.n_records += 1
        if self.line_buffered:
            self._handle.flush()

    def close(self) -> Path:
        """Flush, fsync and atomically rename the tmp file into place."""
        if self._handle is None:
            return self.path
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._handle = None
        os.replace(self._tmp, self.path)
        return self.path


def write_prometheus(registry: MetricsRegistry, path: PathLike) -> Path:
    """Dump ``registry`` in Prometheus text exposition format (tmp+rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(registry.render_prometheus())
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def read_trace(
    path: PathLike, tolerate_partial_tail: bool = False
) -> List[Dict[str, Any]]:
    """Parse a ``trace.jsonl`` file; malformed lines raise cleanly.

    ``tolerate_partial_tail=True`` reads a file that is still being written
    (or died mid-write): a *final* line that is malformed or missing its
    newline is silently dropped instead of raising — it is the half-flushed
    record a live writer has not finished yet.  Malformed lines anywhere
    else still raise; torn middle lines are corruption, not liveness.
    """
    path = Path(path)
    if not path.is_file():
        raise SerializationError(f"no trace file at {path}")
    data = path.read_bytes()
    records = []
    lines = data.split(b"\n")
    ends_with_newline = data.endswith(b"\n")
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        # The only candidate for a partially-written record is the very last
        # line of a file with no trailing newline.
        partial_candidate = (
            tolerate_partial_tail and not ends_with_newline and lineno == len(lines)
        )
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if partial_candidate:
                continue
            raise SerializationError(
                f"malformed JSON on line {lineno} of {path}: {exc}"
            ) from exc
        if not isinstance(record, dict) or "kind" not in record:
            if partial_candidate:
                continue
            raise SerializationError(
                f"line {lineno} of {path} is not a telemetry record "
                "(an object with a 'kind' field)"
            )
        records.append(record)
    return records


class TraceFollower:
    """Incremental ``trace.jsonl`` reader for live runs (``--follow``).

    Tracks a byte offset and returns only complete new records on each
    :meth:`poll`.  Two liveness details matter:

    * a running :class:`Telemetry` session writes to ``trace.jsonl.tmp`` and
      renames on finalize — the follower reads whichever exists, and the
      byte offset survives the rename because the content is identical;
    * the final line may be partially written at read time (appends are not
      atomic); the follower holds everything after the last newline back
      until the line completes, so a torn tail is *deferred*, never an
      error (pinned by the truncated-tail test).
    """

    def __init__(self, path: PathLike) -> None:
        path = Path(path)
        if path.is_dir():
            path = path / TRACE_FILE
        self.path = path
        self._offset = 0

    @property
    def finalized(self) -> bool:
        """Whether the sink has been atomically renamed into place."""
        return self.path.is_file()

    def _source(self) -> Optional[Path]:
        if self.path.is_file():
            return self.path
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        if tmp.is_file():
            return tmp
        return None

    def poll(self) -> List[Dict[str, Any]]:
        """All complete records appended since the last poll (maybe empty)."""
        source = self._source()
        if source is None:
            return []
        with source.open("rb") as handle:
            handle.seek(self._offset)
            data = handle.read()
        end = data.rfind(b"\n")
        if end < 0:
            return []
        chunk = data[: end + 1]
        self._offset += end + 1
        records = []
        for raw in chunk.split(b"\n"):
            line = raw.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A complete-but-malformed line mid-stream: skip it rather
                # than kill a live view (the strict read_trace still raises
                # for offline reads).
                continue
            if isinstance(record, dict) and "kind" in record:
                records.append(record)
        return records


class Telemetry:
    """One run's telemetry session: registry + tracer + event/span sinks.

    The instrumented subsystems (engine, server, controller, runner) each
    hold one optional reference to this object; every recording site is
    guarded by a single ``is None`` check, and nothing here draws RNG — the
    two halves of the zero-cost-when-disabled / bit-identical-when-enabled
    contract.
    """

    def __init__(
        self,
        out_dir: Optional[PathLike] = None,
        spec: Optional[ObsSpec] = None,
        name: str = "run",
        scope: str = "",
    ) -> None:
        self.spec = spec or ObsSpec()
        self.name = str(name)
        self.scope = str(scope)
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.registry = MetricsRegistry()
        #: Finished span records (in-memory mirror; JSONL-backed when out_dir).
        self.spans: List[Dict[str, Any]] = []
        #: Structured event records (same layout as the JSONL lines).
        self.events: List[Dict[str, Any]] = []
        self.tracer = Tracer(sink=self._record_span, scope=self.scope)
        #: Optional :class:`~repro.obs.live.RollupWatcher` the instrumented
        #: loops drive at tick/request boundaries (``--watch`` and alerting).
        #: Purely observational: it reads the registry, never the run state.
        self.watcher = None
        self._sink: Optional[JsonlSink] = None
        self._finalized: Optional[Dict[str, Path]] = None
        if self.out_dir is not None:
            self.out_dir.mkdir(parents=True, exist_ok=True)
            self._sink = JsonlSink(
                self.out_dir / TRACE_FILE, line_buffered=self.spec.flush
            )
            header: Dict[str, Any] = {
                "kind": "header",
                "schema": TRACE_SCHEMA_VERSION,
                "name": self.name,
            }
            if self.scope:
                header["scope"] = self.scope
            self._sink.write(header)

    # -- recording --------------------------------------------------------------

    @property
    def trace_enabled(self) -> bool:
        return self.spec.trace

    @property
    def events_enabled(self) -> bool:
        return self.spec.events

    def _record_span(self, span: Span) -> None:
        record = span.to_record()
        if self._sink is not None and not self._sink.closed:
            self._sink.write(record)
        else:
            self.spans.append(record)

    def event(self, name: str, **fields: Any) -> None:
        """Record one structured event (a timestamped JSONL line).

        When a span is active (see :meth:`Tracer.activate`/:meth:`Tracer.span`)
        the event is stamped with its trace/span ids so it can be joined back
        onto the span tree.
        """
        if not self.spec.events:
            return
        reserved = {"kind", "name", "time_s"} & fields.keys()
        if reserved:
            # A field named "kind" would silently overwrite the record
            # schema and hide the event from every kind == "event" consumer.
            raise ConfigurationError(
                f"event {name!r} uses reserved field(s) {sorted(reserved)}"
            )
        record: Dict[str, Any] = {
            "kind": "event",
            "name": str(name),
            "time_s": self.tracer.clock(),
        }
        trace_id, span_id = current_ids()
        if trace_id is not None:
            record["trace_id"] = trace_id
            record["span_id"] = span_id
        record.update(fields)
        if self._sink is not None and not self._sink.closed:
            self._sink.write(record)
        else:
            self.events.append(record)

    # -- sharded runs ------------------------------------------------------------

    def child(self, shard_index: int) -> "Telemetry":
        """Shard ``shard_index``'s child session (the in-process path).

        The child mirrors the checkpoint layout — ``<out_dir>/shard-NN/``
        sinks when this session writes to disk, in-memory records otherwise —
        and scopes its tracer ids (``s01-...``) so merged traces stay
        collision-free.  Fold it back with :meth:`absorb_shard`.
        """
        return self.shard_config().child(shard_index)

    def shard_config(self) -> "ShardObsConfig":
        """The frozen recipe worker processes build their child sessions from.

        Hashable (it keys the fork-pool's published-state snapshot) and
        picklable (the spawn path ships it), unlike the live session with its
        open file handle.
        """
        return ShardObsConfig(
            dir=str(self.out_dir) if self.out_dir is not None else None,
            name=self.name,
            spec=self.spec,
        )

    def shard_payload(self) -> Dict[str, Any]:
        """This child session's compact payload for the parent to absorb.

        Disk-backed children finalize their ``shard-NN/`` sink first and
        return only the registry (the spans are already durable in the shard
        directory); in-memory children return spans and events too, so
        nothing is lost on the in-process path.
        """
        payload: Dict[str, Any] = {
            "kind": "obs-shard",
            "version": SHARD_PAYLOAD_VERSION,
            "scope": self.scope,
            "registry": self.registry.to_payload(),
        }
        if self.out_dir is not None:
            self.finalize()
            payload["dir"] = str(self.out_dir)
        else:
            payload["spans"] = list(self.spans)
            payload["events"] = list(self.events)
        return payload

    def absorb_shard(self, payload: Mapping[str, Any]) -> None:
        """Fold one shard's :meth:`shard_payload` into this parent session.

        The registry folds through the deterministic merge algebra; span and
        event records from in-memory children are re-emitted through this
        session's sink (their ids carry the shard scope, so they cannot
        collide with the parent's or another shard's).  Shards are absorbed
        in shard order, so the merged trace is deterministic.
        """
        if payload.get("kind") != "obs-shard":
            raise ConfigurationError(
                f"not a shard telemetry payload: kind={payload.get('kind')!r}"
            )
        if payload.get("version") != SHARD_PAYLOAD_VERSION:
            raise ConfigurationError(
                f"shard telemetry payload version {payload.get('version')!r} "
                f"is not readable by this build (version {SHARD_PAYLOAD_VERSION})"
            )
        self.registry.merge_from(MetricsRegistry.from_payload(payload["registry"]))
        for record in payload.get("spans", ()):
            self._write_record(record, self.spans)
        for record in payload.get("events", ()):
            self._write_record(record, self.events)

    def _write_record(self, record: Dict[str, Any], fallback: List[Dict[str, Any]]) -> None:
        if self._sink is not None and not self._sink.closed:
            self._sink.write(record)
        else:
            fallback.append(record)

    # -- finalisation -----------------------------------------------------------

    def finalize(self) -> Dict[str, Path]:
        """Close the JSONL sink and dump the registry (idempotent).

        Returns the written paths (empty when the session is in-memory only).
        """
        if self._finalized is not None:
            return self._finalized
        paths: Dict[str, Path] = {}
        if self._sink is not None:
            paths["trace"] = self._sink.close()
        if self.out_dir is not None:
            from repro.utils.serialization import save_json

            paths["metrics_json"] = save_json(
                self.out_dir / METRICS_JSON_FILE, self.registry.to_payload()
            )
            paths["metrics_prom"] = write_prometheus(
                self.registry, self.out_dir / METRICS_PROM_FILE
            )
        self._finalized = paths
        return paths


@dataclass(frozen=True)
class ShardObsConfig:
    """How a shard worker rebuilds its child :class:`Telemetry` session.

    A live session holds an open file handle and cannot cross a process
    boundary; this frozen value can — it rides in the published shared
    kwargs (fork pool), pickles into spawn payloads, and its hashability
    makes telemetry configuration part of the fork-pool's structural key, so
    runs with different telemetry setups never share a forked snapshot.
    """

    #: The *parent* session's output directory (``None`` = in-memory child).
    dir: Optional[str]
    name: str
    spec: ObsSpec

    def child(self, shard_index: int) -> Telemetry:
        """Build shard ``shard_index``'s child session from this recipe."""
        index = int(shard_index)
        return Telemetry(
            out_dir=shard_obs_dir(self.dir, index) if self.dir is not None else None,
            spec=self.spec,
            name=f"{self.name}/shard-{index:02d}",
            scope=f"s{index:02d}-",
        )
