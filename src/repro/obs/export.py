"""Telemetry exporters and the per-run :class:`Telemetry` session object.

:class:`JsonlSink` writes span/event records incrementally to a ``.tmp``
file and atomically renames it into place on :meth:`JsonlSink.close` — the
:class:`~repro.fleet.checkpoint.CheckpointStore` write protocol, so a
crashed run never leaves a half-written file masquerading as a complete
trace (the partial ``.tmp`` stays inspectable next to it).

:class:`Telemetry` bundles the three pillars for one run — a
:class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.trace.Tracer` wired into the JSONL sink, and a structured
event stream — behind the single optional reference the instrumented
subsystems hold.  :meth:`Telemetry.finalize` closes the sink and dumps the
final registry as both JSON (:meth:`~repro.obs.metrics.MetricsRegistry.
to_payload`) and Prometheus text exposition.

File layout under ``out_dir``::

    trace.jsonl    # header line + span/event records, one JSON object per line
    metrics.json   # the registry payload (mergeable, round-trippable)
    metrics.prom   # Prometheus text exposition of the same registry

With ``out_dir=None`` everything stays in memory (:attr:`Telemetry.spans`,
:attr:`Telemetry.events`), which is what the bit-identity tests and the
benchmark harness use.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.exceptions import ConfigurationError, SerializationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.spec import ObsSpec
from repro.obs.trace import Span, Tracer, current_ids

PathLike = Union[str, Path]

#: Bumped when the JSONL record layout changes; stamped on the header line.
TRACE_SCHEMA_VERSION = 1

#: File names written under the telemetry directory.
TRACE_FILE = "trace.jsonl"
METRICS_JSON_FILE = "metrics.json"
METRICS_PROM_FILE = "metrics.prom"


class JsonlSink:
    """Incremental JSONL writer with an atomic tmp+rename close."""

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        self._handle = self._tmp.open("w", encoding="utf-8")
        self.n_records = 0

    @property
    def closed(self) -> bool:
        return self._handle is None

    def write(self, record: Mapping[str, Any]) -> None:
        """Append one record as a compact JSON line."""
        if self._handle is None:
            raise ConfigurationError(f"JSONL sink {self.path} is already closed")
        json.dump(record, self._handle, separators=(",", ":"), sort_keys=True)
        self._handle.write("\n")
        self.n_records += 1

    def close(self) -> Path:
        """Flush, fsync and atomically rename the tmp file into place."""
        if self._handle is None:
            return self.path
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._handle = None
        os.replace(self._tmp, self.path)
        return self.path


def write_prometheus(registry: MetricsRegistry, path: PathLike) -> Path:
    """Dump ``registry`` in Prometheus text exposition format (tmp+rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(registry.render_prometheus())
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def read_trace(path: PathLike) -> List[Dict[str, Any]]:
    """Parse a ``trace.jsonl`` file; malformed lines raise cleanly."""
    path = Path(path)
    if not path.is_file():
        raise SerializationError(f"no trace file at {path}")
    records = []
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SerializationError(
                    f"malformed JSON on line {lineno} of {path}: {exc}"
                ) from exc
            if not isinstance(record, dict) or "kind" not in record:
                raise SerializationError(
                    f"line {lineno} of {path} is not a telemetry record "
                    "(an object with a 'kind' field)"
                )
            records.append(record)
    return records


class Telemetry:
    """One run's telemetry session: registry + tracer + event/span sinks.

    The instrumented subsystems (engine, server, controller, runner) each
    hold one optional reference to this object; every recording site is
    guarded by a single ``is None`` check, and nothing here draws RNG — the
    two halves of the zero-cost-when-disabled / bit-identical-when-enabled
    contract.
    """

    def __init__(
        self,
        out_dir: Optional[PathLike] = None,
        spec: Optional[ObsSpec] = None,
        name: str = "run",
    ) -> None:
        self.spec = spec or ObsSpec()
        self.name = str(name)
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.registry = MetricsRegistry()
        #: Finished span records (in-memory mirror; JSONL-backed when out_dir).
        self.spans: List[Dict[str, Any]] = []
        #: Structured event records (same layout as the JSONL lines).
        self.events: List[Dict[str, Any]] = []
        self.tracer = Tracer(sink=self._record_span)
        self._sink: Optional[JsonlSink] = None
        self._finalized: Optional[Dict[str, Path]] = None
        if self.out_dir is not None:
            self.out_dir.mkdir(parents=True, exist_ok=True)
            self._sink = JsonlSink(self.out_dir / TRACE_FILE)
            self._sink.write(
                {
                    "kind": "header",
                    "schema": TRACE_SCHEMA_VERSION,
                    "name": self.name,
                }
            )

    # -- recording --------------------------------------------------------------

    @property
    def trace_enabled(self) -> bool:
        return self.spec.trace

    @property
    def events_enabled(self) -> bool:
        return self.spec.events

    def _record_span(self, span: Span) -> None:
        record = span.to_record()
        if self._sink is not None and not self._sink.closed:
            self._sink.write(record)
        else:
            self.spans.append(record)

    def event(self, name: str, **fields: Any) -> None:
        """Record one structured event (a timestamped JSONL line).

        When a span is active (see :meth:`Tracer.activate`/:meth:`Tracer.span`)
        the event is stamped with its trace/span ids so it can be joined back
        onto the span tree.
        """
        if not self.spec.events:
            return
        record: Dict[str, Any] = {
            "kind": "event",
            "name": str(name),
            "time_s": self.tracer.clock(),
        }
        trace_id, span_id = current_ids()
        if trace_id is not None:
            record["trace_id"] = trace_id
            record["span_id"] = span_id
        record.update(fields)
        if self._sink is not None and not self._sink.closed:
            self._sink.write(record)
        else:
            self.events.append(record)

    # -- finalisation -----------------------------------------------------------

    def finalize(self) -> Dict[str, Path]:
        """Close the JSONL sink and dump the registry (idempotent).

        Returns the written paths (empty when the session is in-memory only).
        """
        if self._finalized is not None:
            return self._finalized
        paths: Dict[str, Path] = {}
        if self._sink is not None:
            paths["trace"] = self._sink.close()
        if self.out_dir is not None:
            from repro.utils.serialization import save_json

            paths["metrics_json"] = save_json(
                self.out_dir / METRICS_JSON_FILE, self.registry.to_payload()
            )
            paths["metrics_prom"] = write_prometheus(
                self.registry, self.out_dir / METRICS_PROM_FILE
            )
        self._finalized = paths
        return paths
