"""Unified telemetry: metrics registry, structured tracing and exporters.

The observability layer the serving front door, the streaming fleet engines
and the adaptation loop all report into (see DESIGN.md "Observability"):

* :mod:`repro.obs.metrics` — labeled counters/gauges/histograms with a
  deterministic merge and a Prometheus text exposition;
* :mod:`repro.obs.trace` — spans with deterministic counter-based ids (zero
  RNG touch) and contextvar-based log correlation;
* :mod:`repro.obs.export` — the per-run :class:`Telemetry` session, the
  atomic JSONL sink and the exporter helpers;
* :mod:`repro.obs.summary` — the ``repro obs summarize`` digest;
* :mod:`repro.obs.spec` — the declarative ``obs`` node of an experiment.

The whole layer is opt-in: a run without a :class:`Telemetry` object pays
exactly one ``is None`` check per instrumented site, and a run *with* one
produces bit-identical reports (pinned by tests).
"""

from repro.obs.export import JsonlSink, Telemetry, read_trace, write_prometheus
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.spec import ObsSpec
from repro.obs.summary import summarize_trace
from repro.obs.trace import Span, Tracer, current_ids, current_span

__all__ = [
    "DEFAULT_BUCKETS",
    "JsonlSink",
    "MetricsRegistry",
    "ObsSpec",
    "Span",
    "Telemetry",
    "Tracer",
    "current_ids",
    "current_span",
    "read_trace",
    "summarize_trace",
    "write_prometheus",
]
