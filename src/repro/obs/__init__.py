"""Unified telemetry: metrics registry, structured tracing and exporters.

The observability layer the serving front door, the streaming fleet engines
and the adaptation loop all report into (see DESIGN.md "Observability" and
"Distributed telemetry & alerting"):

* :mod:`repro.obs.metrics` — labeled counters/gauges/histograms with a
  deterministic merge, interpolated quantile estimation and a Prometheus
  text exposition;
* :mod:`repro.obs.trace` — spans with deterministic counter-based ids (zero
  RNG touch, shard-scopable) and contextvar-based log correlation;
* :mod:`repro.obs.export` — the per-run :class:`Telemetry` session, child
  shard sessions, the atomic JSONL sink, the incremental
  :class:`TraceFollower` and the exporter helpers;
* :mod:`repro.obs.rollup` — sliding-window rollups (rates, deltas, rolling
  quantiles) over registry snapshots;
* :mod:`repro.obs.alerts` — declarative threshold/absence/burn-rate alert
  rules with a fire/resolve lifecycle;
* :mod:`repro.obs.live` — the in-run ``--watch`` watcher and the
  ``repro obs top``/``obs tail`` live views;
* :mod:`repro.obs.summary` — the ``repro obs summarize`` digest;
* :mod:`repro.obs.spec` — the declarative ``obs`` node of an experiment.

The whole layer is opt-in: a run without a :class:`Telemetry` object pays
exactly one ``is None`` check per instrumented site, and a run *with* one
produces bit-identical reports (pinned by tests) — sharded runs included,
whose per-shard child sessions merge deterministically into the parent.
"""

from repro.obs.alerts import (
    AlertManager,
    AlertRule,
    default_fleet_rules,
    default_serving_rules,
)
from repro.obs.export import (
    JsonlSink,
    ShardObsConfig,
    Telemetry,
    TraceFollower,
    read_trace,
    shard_obs_dir,
    write_prometheus,
)
from repro.obs.live import RollupWatcher, TopView, format_tail_line
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    estimate_fraction_above,
    estimate_quantile,
)
from repro.obs.rollup import Rollup, RollupRing
from repro.obs.spec import ObsSpec
from repro.obs.summary import summarize_trace
from repro.obs.trace import Span, Tracer, current_ids, current_span

__all__ = [
    "AlertManager",
    "AlertRule",
    "DEFAULT_BUCKETS",
    "JsonlSink",
    "MetricsRegistry",
    "ObsSpec",
    "Rollup",
    "RollupRing",
    "RollupWatcher",
    "ShardObsConfig",
    "Span",
    "Telemetry",
    "TopView",
    "TraceFollower",
    "Tracer",
    "current_ids",
    "current_span",
    "default_fleet_rules",
    "default_serving_rules",
    "estimate_fraction_above",
    "estimate_quantile",
    "format_tail_line",
    "read_trace",
    "shard_obs_dir",
    "summarize_trace",
    "write_prometheus",
]
