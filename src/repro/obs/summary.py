"""Human-readable digests of telemetry artifacts (``repro obs summarize``).

:func:`summarize_trace` renders one run's ``trace.jsonl`` into a terminal
digest: the top spans by duration, tier utilization, latency percentiles,
overload counts and the adaptation timeline.  The span/event stream alone is
enough for a useful digest; when the sibling ``metrics.json`` written by
:meth:`~repro.obs.export.Telemetry.finalize` is present, its exact counters
take precedence over counts reconstructed from spans.

Sharded run directories work too: a directory containing ``shard-NN/``
telemetry sinks is summarized across all of them — the parent's folded
``metrics.json`` is used when present (it already contains every shard
through the merge algebra), else the shard registries are merged on the fly,
and the shard trace streams are concatenated in shard order.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.export import METRICS_JSON_FILE, TRACE_FILE, read_trace
from repro.obs.metrics import MetricsRegistry

PathLike = Union[str, Path]

#: How many spans the "top spans by duration" section shows.
TOP_SPANS = 10


def _load_sibling_registry(trace_path: Path) -> Optional[MetricsRegistry]:
    metrics_path = trace_path.parent / METRICS_JSON_FILE
    if not metrics_path.is_file():
        return None
    from repro.utils.serialization import load_json

    try:
        return MetricsRegistry.from_payload(load_json(metrics_path))
    except Exception:
        # The digest must render from the JSONL alone; a damaged sibling
        # metrics file downgrades the digest instead of failing it.
        return None


def _tier_counts(registry: Optional[MetricsRegistry], spans: List[dict]) -> Counter:
    counts: Counter = Counter()
    if registry is not None:
        for name in ("fleet_tier_windows_total", "serve_tier_requests_total"):
            family = registry.get(name)
            if family is None:
                continue
            for key, cell in family._children.items():
                counts[key[0]] += int(cell.value)
        if counts:
            return counts
    for span in spans:
        tier = span.get("attributes", {}).get("tier")
        if tier is not None:
            counts[str(tier)] += int(span.get("attributes", {}).get("n", 1))
    return counts


def _overload_counts(registry: Optional[MetricsRegistry], events: List[dict]) -> Dict[str, int]:
    if registry is not None:
        family = registry.get("serve_requests_total")
        if family is not None:
            by_status = {
                key[0]: int(cell.value) for key, cell in family._children.items()
            }
            if by_status:
                return {
                    status: by_status.get(status, 0)
                    for status in ("rejected", "shed", "expired", "dropped")
                }
    counts: Counter = Counter()
    for event in events:
        if event.get("name") == "serve.overload":
            counts[str(event.get("reason", "unknown"))] += 1
    return dict(counts)


#: Histograms the digest shows interpolated percentiles for, when present.
_PERCENTILE_FAMILIES = ("serve_latency_ms", "serve_queue_wait_ms", "serve_batch_size")


def _latency_lines(registry: Optional[MetricsRegistry]) -> List[str]:
    """p50/p90/p99 lines for the well-known latency histograms."""
    if registry is None:
        return []
    lines = []
    for name in _PERCENTILE_FAMILIES:
        family = registry.get(name)
        if family is None or family.kind != "histogram":
            continue
        quantiles = [family.quantile(q) for q in (0.50, 0.90, 0.99)]
        if quantiles[0] is None:
            continue
        p50, p90, p99 = quantiles
        lines.append(
            f"  {name:<22s} p50={p50:8.1f}  p90={p90:8.1f}  p99={p99:8.1f}"
        )
    return lines


def _format_attr(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def summarize_records(records: List[dict], registry: Optional[MetricsRegistry] = None) -> str:
    """The digest of parsed trace records (see :func:`summarize_trace`)."""
    header = next((r for r in records if r.get("kind") == "header"), None)
    spans = [r for r in records if r.get("kind") == "span"]
    events = [r for r in records if r.get("kind") == "event"]

    name = header.get("name", "run") if header else "run"
    lines = [f"telemetry digest: {name} ({len(spans)} spans, {len(events)} events)"]

    timed = sorted(
        (s for s in spans if s.get("duration_ms") is not None),
        key=lambda s: -s["duration_ms"],
    )
    if timed:
        lines.append("")
        lines.append(f"top {min(TOP_SPANS, len(timed))} spans by duration:")
        for span in timed[:TOP_SPANS]:
            attrs = span.get("attributes", {})
            shown = "  ".join(
                f"{key}={_format_attr(attrs[key])}"
                for key in sorted(attrs)
                if key in ("tick", "tier", "status", "n", "accepted", "device_id")
            )
            lines.append(
                f"  {span['name']:<18s} {span['duration_ms']:10.3f} ms  {shown}".rstrip()
            )

    tiers = _tier_counts(registry, spans)
    if tiers:
        total = sum(tiers.values())
        lines.append("")
        lines.append("tier utilization:")
        for tier in sorted(tiers):
            share = 100.0 * tiers[tier] / total if total else 0.0
            lines.append(f"  {tier:<16s} {tiers[tier]:>10d}  ({share:5.1f}%)")

    percentiles = _latency_lines(registry)
    if percentiles:
        lines.append("")
        lines.append("latency percentiles (histogram-estimated):")
        lines.extend(percentiles)

    overload = _overload_counts(registry, events)
    if any(overload.values()):
        lines.append("")
        lines.append(
            "overload: "
            + "  ".join(f"{k}={v}" for k, v in sorted(overload.items()) if v)
        )

    adaptation = [
        e for e in events
        if str(e.get("name", "")).startswith("adapt.")
    ]
    if adaptation:
        lines.append("")
        lines.append("adaptation timeline:")
        for event in sorted(adaptation, key=lambda e: (e.get("tick", 0), e.get("time_s", 0.0))):
            kind = str(event["name"]).split(".", 1)[1]
            detail = "  ".join(
                f"{key}={_format_attr(event[key])}"
                for key in ("tier", "monitor", "accepted", "from_version", "to_version")
                if key in event
            )
            lines.append(f"  tick {event.get('tick', '?'):>4}  {kind:<8s} {detail}".rstrip())

    fault_events = [e for e in events if str(e.get("name", "")).startswith("fault.")]
    if fault_events:
        by_kind = Counter(str(e.get("fault", e["name"])) for e in fault_events)
        lines.append("")
        lines.append(
            "fault activations: "
            + "  ".join(f"{k}={v}" for k, v in sorted(by_kind.items()))
        )

    return "\n".join(lines)


def _shard_traces(directory: Path) -> List[Path]:
    """The per-shard trace files under a sharded run directory, shard order."""
    return sorted(
        shard_dir / TRACE_FILE
        for shard_dir in directory.glob("shard-[0-9][0-9]")
        if (shard_dir / TRACE_FILE).is_file()
    )


def summarize_trace(path: PathLike) -> str:
    """Render the digest of one ``trace.jsonl`` or a telemetry directory.

    A directory may be a plain run (``trace.jsonl`` inside), a sharded run
    (``shard-NN/`` sinks, aggregated across all of them), or both — the
    parent trace plus per-shard traces of a sharded telemetered run.
    """
    path = Path(path)
    if not path.is_dir():
        return summarize_records(
            read_trace(path), registry=_load_sibling_registry(path)
        )
    trace = path / TRACE_FILE
    records: List[dict] = []
    if trace.is_file():
        records.extend(read_trace(trace))
    shard_traces = _shard_traces(path)
    for shard_trace in shard_traces:
        records.extend(read_trace(shard_trace))
    # The parent's metrics.json already folded every shard (the merge
    # algebra); only merge shard registries ourselves when it is absent.
    registry = _load_sibling_registry(trace)
    if registry is None and shard_traces:
        merged = None
        for shard_trace in shard_traces:
            shard_registry = _load_sibling_registry(shard_trace)
            if shard_registry is None:
                continue
            if merged is None:
                merged = MetricsRegistry()
            merged.merge_from(shard_registry)
        registry = merged
    if not records:
        # Surface the same clean error a plain missing trace file raises.
        records = read_trace(trace)
    return summarize_records(records, registry=registry)
