"""The declarative telemetry specification.

An :class:`ObsSpec` hangs off :class:`~repro.experiments.spec.ExperimentSpec`
as the optional ``obs`` node, so telemetry is configured the same way as
every other subsystem: dotted ``--set obs.*`` overrides, JSON round-trips,
and the ``--telemetry <dir>`` CLI flag, which is sugar for ``--set
obs.dir=<dir>``.  A spec with ``dir=None`` keeps the run telemetry-free —
the engines and servers are handed no telemetry object at all, so the hot
paths pay nothing.

Like the other spec modules this one imports nothing from
:mod:`repro.experiments`, so the spec tree can import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.utils.validation import checked_dataclass_kwargs


@dataclass(frozen=True)
class ObsSpec:
    """Telemetry configuration for one run."""

    #: Output directory for ``trace.jsonl`` / ``metrics.json`` /
    #: ``metrics.prom``; ``None`` disables telemetry entirely.
    dir: Optional[str] = None
    #: Record spans (per-request, per-tick, per-retrain).  Metrics counters
    #: are always kept — they are what the Prometheus dump exposes.
    trace: bool = True
    #: Record structured events (overload sheds, fault activations, drift,
    #: checkpoint saves).
    events: bool = True
    #: Flush the trace sink after every record so a live reader
    #: (``repro obs top --follow``) sees spans mid-run.  Off by default —
    #: line-buffered writes cost syscalls the telemetry overhead budget
    #: does not need to pay when nobody is watching.
    flush: bool = False

    @property
    def enabled(self) -> bool:
        """Whether a run with this spec writes telemetry anywhere."""
        return self.dir is not None

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ObsSpec":
        return cls(**checked_dataclass_kwargs(cls, payload, "obs"))
