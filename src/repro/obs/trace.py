"""Structured tracing: spans with ids, parents and attributes.

A :class:`Tracer` hands out :class:`Span` objects — one per served request
through the serving chain, one per streaming tick, one per adaptation
retrain — and pushes each finished span to its sink (the telemetry session's
JSONL writer, or an in-memory list).

Two properties matter more than feature count:

* **zero RNG touch** — span and trace ids are deterministic per-tracer
  counters, never random draws, so attaching a tracer to a run cannot
  perturb a single experiment RNG stream (the bit-identity contract);
* **cheap when off** — nothing in this module is imported by the hot loops;
  instrumented code holds a single optional telemetry reference and pays one
  ``is None`` check per site when tracing is disabled.

The *active* span is tracked in a :class:`contextvars.ContextVar`, which
works across ``asyncio`` task switches; :func:`current_ids` is what the JSON
log formatter (:func:`repro.utils.logging.configure_basic_logging`) uses to
stamp trace/span ids onto log records.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

#: The span currently activated via :meth:`Tracer.span` (context-local).
_ACTIVE: ContextVar[Optional["Span"]] = ContextVar("repro_obs_active_span", default=None)


def current_span() -> Optional["Span"]:
    """The span activated in the current (asyncio-aware) context, if any."""
    return _ACTIVE.get()


def current_ids() -> Tuple[Optional[str], Optional[str]]:
    """``(trace_id, span_id)`` of the active span, or ``(None, None)``."""
    span = _ACTIVE.get()
    if span is None:
        return None, None
    return span.trace_id, span.span_id


class Span:
    """One timed operation with an id, a parent and free-form attributes."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id",
        "start_s", "end_s", "attributes", "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        start_s: float,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self._tracer = tracer

    def set_attribute(self, key: str, value: Any) -> "Span":
        self.attributes[key] = value
        return self

    def set_attributes(self, **attributes: Any) -> "Span":
        self.attributes.update(attributes)
        return self

    @property
    def ended(self) -> bool:
        return self.end_s is not None

    @property
    def duration_ms(self) -> Optional[float]:
        if self.end_s is None:
            return None
        return (self.end_s - self.start_s) * 1000.0

    def end(self, **attributes: Any) -> "Span":
        """Finish the span (idempotent) and push it to the tracer's sink."""
        if self.end_s is None:
            if attributes:
                self.attributes.update(attributes)
            self.end_s = self._tracer.clock()
            self._tracer._finish(self)
        return self

    def to_record(self) -> Dict[str, Any]:
        """The JSONL record of this span (kind, ids, timing, attributes)."""
        return {
            "kind": "span",
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_ms": self.duration_ms,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, trace={self.trace_id}, span={self.span_id}, "
            f"parent={self.parent_id})"
        )


class Tracer:
    """Creates spans with deterministic counter-based ids.

    ``sink`` is called with each finished span; ``None`` collects finished
    spans in :attr:`finished` (handy in tests).  ``clock`` defaults to
    :func:`time.perf_counter` and is injectable for deterministic tests.

    ``scope`` prefixes every id this tracer hands out (``"s01-"`` for shard
    1's child telemetry session).  Two shard tracers both count from 1, so
    without a scope their ids would collide when the parent merges shard
    traces; with it, merged traces stay deterministic *and* collision-free —
    ids are a pure function of (scope, per-tracer ordinal), never RNG.
    """

    def __init__(
        self,
        sink: Optional[Callable[[Span], None]] = None,
        clock: Callable[[], float] = perf_counter,
        scope: str = "",
    ) -> None:
        self.clock = clock
        self.scope = str(scope)
        self._sink = sink
        #: Finished spans, kept only when no sink is attached.
        self.finished: List[Span] = []
        self._next_id = 0

    def _new_id(self) -> str:
        self._next_id += 1
        return f"{self.scope}{self._next_id:012x}"

    def start_span(
        self,
        name: str,
        parent: Optional[Span] = None,
        **attributes: Any,
    ) -> Span:
        """Start (but do not activate) a span.

        With no explicit ``parent`` the active span (if any) becomes the
        parent; a parentless span roots a new trace.
        """
        if parent is None:
            parent = _ACTIVE.get()
        span_id = self._new_id()
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = span_id, None
        return Span(
            self, str(name), trace_id, span_id, parent_id,
            self.clock(), attributes or None,
        )

    def _finish(self, span: Span) -> None:
        if self._sink is not None:
            self._sink(span)
        else:
            self.finished.append(span)

    @contextmanager
    def activate(self, span: Span):
        """Make an existing span the active parent; does NOT end it on exit.

        The streaming engine uses this to parent adaptation-lifecycle spans
        (retrain/gate/swap) under the current ``fleet.tick`` span without
        handing the tick span's lifetime over to a ``with`` block.
        """
        token = _ACTIVE.set(span)
        try:
            yield span
        finally:
            _ACTIVE.reset(token)

    @contextmanager
    def span(self, name: str, parent: Optional[Span] = None, **attributes: Any):
        """Start, *activate* and (on exit) end a span.

        Activation makes the span the default parent for nested spans and the
        source of :func:`current_ids` for log correlation, across ``await``
        boundaries included.
        """
        span = self.start_span(name, parent=parent, **attributes)
        token = _ACTIVE.set(span)
        try:
            yield span
        finally:
            _ACTIVE.reset(token)
            span.end()
