"""Live observability: in-run watchers and the ``obs top``/``obs tail`` views.

Two halves, joined by the trace stream:

* **inside the run** — a :class:`RollupWatcher` hangs off a
  :class:`~repro.obs.export.Telemetry` session (``telemetry.watcher``); the
  instrumented loops call :meth:`RollupWatcher.observe` at tick/request
  boundaries.  Every ``every`` units of progress it snapshots the registry
  into its :class:`~repro.obs.rollup.RollupRing`, evaluates its alert rules,
  and emits a ``watch.rollup`` trace event carrying the window's rates,
  rolling p99 and active alerts.  With a ``printer`` attached (the
  ``--watch`` flag) it also prints one digest line per window.

* **outside the run** — ``repro obs top`` / ``obs tail`` attach a
  :class:`~repro.obs.export.TraceFollower` to the run directory and feed the
  records into a :class:`TopView`, which maintains tier utilization, queue
  depth, rolling latency and the active-alert set, and renders a refreshing
  text digest.  It works on a *live* run (reading the ``.tmp`` sink as it
  grows) and on a finished one.

Like everything in :mod:`repro.obs`, both halves are pure observers: they
read registry snapshots and trace records and never touch run state or RNG.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Mapping, Optional, Tuple

from repro.obs.alerts import AlertManager
from repro.obs.rollup import DEFAULT_CAPACITY, RollupRing


def _fmt(value: Optional[float], precision: int = 1) -> str:
    if value is None:
        return "-"
    return f"{value:.{precision}f}"


class RollupWatcher:
    """Periodic rollup + alert evaluation driven by the instrumented loops.

    ``every`` is measured in units of the progress key the caller observes
    with (ticks for the fleet engine, served requests for the server).
    ``window`` bounds the snapshot ring.  ``printer`` (e.g. ``print``)
    receives one formatted line per evaluated window — that is the
    ``--watch`` console stream; leave it ``None`` for silent in-trace
    watching.
    """

    def __init__(
        self,
        telemetry,
        rules=(),
        every: float = 1.0,
        window: int = DEFAULT_CAPACITY,
        label: str = "watch",
        printer=None,
    ) -> None:
        self.telemetry = telemetry
        self.every = float(every)
        self.label = str(label)
        self.printer = printer
        self.ring = RollupRing(window)
        self.alerts = AlertManager(rules, telemetry=telemetry)
        self._last_key: Optional[float] = None
        #: Number of windows evaluated (pinned by tests; also a cheap way
        #: for callers to see whether a watch produced any output at all).
        self.n_windows = 0

    def observe(self, key: float, **extra: Any) -> None:
        """Advance the watch to progress ``key`` (tick count, served count).

        Keys that have not advanced by ``every`` since the last snapshot are
        ignored, so the caller can invoke this every tick/request and the
        watcher decides the cadence.  ``extra`` fields (e.g. the server's
        instantaneous queue depth) ride along on the ``watch.rollup`` event.
        """
        key = float(key)
        if self._last_key is not None and key - self._last_key < self.every:
            return
        if self._last_key is not None and key <= self._last_key:
            return
        self._last_key = key
        self.ring.push(key, self.telemetry.registry)
        if len(self.ring) < 2:
            return
        active = self.alerts.evaluate(self.ring, key)
        stats = self._stats()
        self.n_windows += 1
        record: Dict[str, Any] = {"key": key, "label": self.label, "alerts": active}
        record.update(stats)
        record.update(extra)
        self.telemetry.event("watch.rollup", **record)
        if self.printer is not None:
            self.printer(self._format_line(key, stats, active, extra))

    def _stats(self) -> Dict[str, Any]:
        """Well-known window statistics, present only when their metrics are."""
        rollup = self.ring.rollup(over=1)
        stats: Dict[str, Any] = {}
        if rollup is None:
            return stats
        if rollup.has("serve_requests_total"):
            stats["served_rate"] = rollup.rate(
                "serve_requests_total", (("status", "served"),)
            )
            stats["shed_delta"] = rollup.delta(
                "serve_requests_total",
                (("status", ("shed", "rejected", "expired")),),
            )
        if rollup.has("serve_latency_ms"):
            stats["p99_ms"] = rollup.quantile("serve_latency_ms", 0.99)
        if rollup.has("fleet_tier_windows_total"):
            stats["windows_rate"] = rollup.rate("fleet_tier_windows_total")
        if rollup.has("fleet_detections_total"):
            stats["detections_delta"] = rollup.delta("fleet_detections_total")
        return stats

    def _format_line(
        self,
        key: float,
        stats: Mapping[str, Any],
        active: List[str],
        extra: Mapping[str, Any],
    ) -> str:
        parts = [f"[{self.label} @{key:g}]"]
        if "served_rate" in stats:
            parts.append(f"served/s={_fmt(stats['served_rate'], 2)}")
        if "p99_ms" in stats:
            parts.append(f"p99={_fmt(stats['p99_ms'])}ms")
        if "shed_delta" in stats:
            parts.append(f"shed={stats['shed_delta']:g}")
        if "queue_depth" in extra:
            parts.append(f"queue={extra['queue_depth']}")
        if "windows_rate" in stats:
            parts.append(f"windows/s={_fmt(stats['windows_rate'], 2)}")
        if "detections_delta" in stats:
            parts.append(f"detections={stats['detections_delta']:g}")
        parts.append(f"alerts={','.join(active) if active else 'none'}")
        return " ".join(parts)


#: How many recent request latencies the top view keeps for its rolling p99.
TOP_LATENCY_WINDOW = 256


def _percentile(values: List[float], q: float) -> Optional[float]:
    if not values:
        return None
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(q * len(ordered)) - 1))
    return ordered[index]


class TopView:
    """Accumulates trace records into a refreshing run digest.

    Feed it batches from a :class:`~repro.obs.export.TraceFollower` (or a
    whole ``read_trace`` result) via :meth:`update`; :meth:`render` returns
    the current digest: run identity, tier utilization, queue depth, rolling
    p99 against the SLO, the latest rollup line and the active alerts.
    """

    def __init__(self, slo_p99_ms: Optional[float] = None) -> None:
        self.slo_p99_ms = slo_p99_ms
        self.name: Optional[str] = None
        self.n_records = 0
        self.span_counts: Dict[str, int] = {}
        self.tier_counts: Dict[str, int] = {}
        self.latencies: Deque[float] = deque(maxlen=TOP_LATENCY_WINDOW)
        self.queue_depth: Optional[int] = None
        self.last_rollup: Optional[Dict[str, Any]] = None
        self.active_alerts: Dict[str, Dict[str, Any]] = {}
        self.overloads = 0
        self.last_tick: Optional[int] = None

    def update(self, records) -> int:
        """Absorb a batch of trace records; returns how many were absorbed."""
        n = 0
        for record in records:
            self._absorb(record)
            n += 1
        return n

    def _absorb(self, record: Mapping[str, Any]) -> None:
        kind = record.get("kind")
        self.n_records += 1
        if kind == "header":
            self.name = record.get("name")
            return
        if kind == "span":
            name = str(record.get("name"))
            self.span_counts[name] = self.span_counts.get(name, 0) + 1
            attributes = record.get("attributes") or {}
            tier = attributes.get("tier")
            if tier is not None:
                self.tier_counts[str(tier)] = self.tier_counts.get(str(tier), 0) + 1
            if name == "serve.request":
                latency = attributes.get("latency_ms", record.get("duration_ms"))
                if isinstance(latency, (int, float)):
                    self.latencies.append(float(latency))
            if name == "fleet.tick":
                tick = attributes.get("tick")
                if isinstance(tick, int):
                    self.last_tick = tick
            return
        if kind != "event":
            return
        name = str(record.get("name"))
        if name == "watch.rollup":
            self.last_rollup = dict(record)
            depth = record.get("queue_depth")
            if isinstance(depth, (int, float)):
                self.queue_depth = int(depth)
            for alert in record.get("alerts", ()):
                self.active_alerts.setdefault(str(alert), {})
        elif name == "alert.fire":
            self.active_alerts[str(record.get("alert"))] = dict(record)
        elif name == "alert.resolve":
            self.active_alerts.pop(str(record.get("alert")), None)
        elif name == "serve.overload":
            self.overloads += 1
            depth = record.get("queue_depth")
            if isinstance(depth, (int, float)):
                self.queue_depth = int(depth)

    @property
    def p99_ms(self) -> Optional[float]:
        """Rolling p99 over the last :data:`TOP_LATENCY_WINDOW` requests."""
        return _percentile(list(self.latencies), 0.99)

    @property
    def p50_ms(self) -> Optional[float]:
        return _percentile(list(self.latencies), 0.50)

    def render(self) -> str:
        """The current digest as a multi-line string."""
        lines: List[str] = []
        title = self.name or "run"
        lines.append(f"== {title} :: {self.n_records} records ==")
        if self.last_tick is not None:
            lines.append(f"tick: {self.last_tick}")
        if self.tier_counts:
            total = sum(self.tier_counts.values()) or 1
            util = "  ".join(
                f"{tier}={count} ({100.0 * count / total:.0f}%)"
                for tier, count in sorted(self.tier_counts.items())
            )
            lines.append(f"tiers: {util}")
        if self.latencies:
            slo = f" (SLO {self.slo_p99_ms:g}ms)" if self.slo_p99_ms else ""
            lines.append(
                f"latency: p50={_fmt(self.p50_ms)}ms p99={_fmt(self.p99_ms)}ms{slo}"
            )
        if self.queue_depth is not None:
            lines.append(f"queue depth: {self.queue_depth}")
        if self.overloads:
            lines.append(f"overload events: {self.overloads}")
        if self.last_rollup is not None:
            rollup = self.last_rollup
            bits = []
            for field, label in (
                ("served_rate", "served/s"),
                ("p99_ms", "window-p99"),
                ("shed_delta", "shed"),
                ("windows_rate", "windows/s"),
            ):
                if field in rollup and rollup[field] is not None:
                    bits.append(f"{label}={_fmt(float(rollup[field]), 2)}")
            if bits:
                lines.append(f"last window: {' '.join(bits)} @{rollup.get('key')}")
        if self.active_alerts:
            lines.append(f"ALERTS: {', '.join(sorted(self.active_alerts))}")
        else:
            lines.append("alerts: none")
        return "\n".join(lines)


def format_tail_line(record: Mapping[str, Any]) -> str:
    """One human-readable line per trace record (the ``obs tail`` format)."""
    kind = record.get("kind")
    if kind == "header":
        return f"# trace {record.get('name')!r} schema={record.get('schema')}"
    if kind == "span":
        duration = record.get("duration_ms")
        timing = f" {duration:.2f}ms" if isinstance(duration, (int, float)) else ""
        attributes = record.get("attributes") or {}
        extras = " ".join(f"{k}={v}" for k, v in sorted(attributes.items()))
        return f"span  {record.get('name')}{timing} [{record.get('span_id')}] {extras}".rstrip()
    if kind == "event":
        skip = {"kind", "name", "time_s", "trace_id", "span_id"}
        extras = " ".join(
            f"{k}={v}" for k, v in sorted(record.items()) if k not in skip
        )
        return f"event {record.get('name')} {extras}".rstrip()
    return f"{kind or '?'} {record}"
