"""Sliding-window rollups over :class:`~repro.obs.metrics.MetricsRegistry`.

The registry is cumulative — counters only ever grow — which is the right
shape for whole-run exports but useless for *online* health questions
("what is the shed rate right now?", "what is the rolling p99?").  This
module adds the missing derivative: a :class:`RollupRing` holds a bounded
ring of registry snapshots keyed by a monotone progress key (the fleet tick,
the served-request count), and a :class:`Rollup` between two snapshots turns
the cumulative counts into window-local rates, deltas and Prometheus-style
interpolated quantiles (via :func:`~repro.obs.metrics.estimate_quantile`,
whose estimates are exact under merge reordering).

Everything here is pure arithmetic over payload snapshots: pushing a
snapshot copies the registry through its own payload contract, so a rollup
can never alias (let alone mutate) live cells, and nothing touches an RNG —
rollups ride on the same pure-observer contract as the rest of the layer.
The consumers are :mod:`repro.obs.alerts` (burn-rate windows) and the
``--watch``/``repro obs top`` live views.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.obs.metrics import (
    MetricsRegistry,
    estimate_fraction_above,
    estimate_quantile,
)

#: Default ring capacity: enough for an 8-snapshot slow burn window plus the
#: fast window and the freshest pair, without unbounded growth.
DEFAULT_CAPACITY = 16

#: A label filter: ``(("status", "shed"),)`` matches one child,
#: ``(("status", ("shed", "rejected")),)`` sums matching children, ``()``
#: sums the whole family.
LabelFilter = Tuple[Tuple[str, Any], ...]


def _matches(family, key: Tuple[str, ...], labels: LabelFilter) -> bool:
    for name, wanted in labels:
        try:
            position = family.labelnames.index(name)
        except ValueError:
            raise ConfigurationError(
                f"metric {family.name!r} has labels {family.labelnames}, "
                f"no label {name!r}"
            ) from None
        value = key[position]
        if isinstance(wanted, (tuple, list, set, frozenset)):
            if value not in {str(v) for v in wanted}:
                return False
        elif value != str(wanted):
            return False
    return True


class _Snapshot:
    """One (key, frozen registry copy) point on the progress axis."""

    __slots__ = ("key", "registry")

    def __init__(self, key: float, registry: MetricsRegistry) -> None:
        self.key = float(key)
        # Round-tripping through the payload is the registry's own deep-copy:
        # the snapshot can never alias live cells.
        self.registry = MetricsRegistry.from_payload(registry.to_payload())


class Rollup:
    """The window between two registry snapshots: deltas, rates, quantiles.

    Counter reads accept a label filter (see :data:`LabelFilter`) whose
    values may be tuples — ``labels=(("status", ("shed", "rejected")),)``
    sums both children, which is how burn-rate rules pool every overload
    status into one numerator.  Referencing a metric no registry in the
    window has ever seen raises :class:`~repro.exceptions.ConfigurationError`
    by name — a misspelled alert rule must fail loudly, not evaluate to a
    silent healthy zero.
    """

    def __init__(self, base: _Snapshot, latest: _Snapshot) -> None:
        self._base = base
        self._latest = latest

    @property
    def keys(self) -> Tuple[float, float]:
        """The (base, latest) progress keys this window spans."""
        return (self._base.key, self._latest.key)

    @property
    def span(self) -> float:
        """Progress covered by the window (ticks, requests, ...)."""
        return self._latest.key - self._base.key

    def has(self, name: str) -> bool:
        """Whether the window's newest snapshot knows metric ``name``."""
        return self._latest.registry.get(name) is not None

    def _family(self, name: str):
        family = self._latest.registry.get(name)
        if family is None:
            raise ConfigurationError(
                f"unknown metric {name!r}: no registry snapshot in this "
                "window has recorded it"
            )
        return family

    def _summed(self, registry: MetricsRegistry, name: str, labels: LabelFilter) -> float:
        family = registry.get(name)
        if family is None:
            return 0.0
        total = 0.0
        for key, cell in family._children.items():
            if _matches(family, key, labels):
                total += cell.value
        return total

    def delta(self, name: str, labels: LabelFilter = ()) -> float:
        """Counter increase across the window (summed over the filter)."""
        family = self._family(name)
        if family.kind == "histogram":
            counts, _ = self._bucket_deltas(name, labels)
            return float(sum(counts))
        if family.kind != "counter":
            raise ConfigurationError(
                f"metric {name!r} is a {family.kind}; deltas need a counter "
                "or histogram (read gauges with .level())"
            )
        latest = self._summed(self._latest.registry, name, labels)
        base = self._summed(self._base.registry, name, labels)
        return latest - base

    def rate(self, name: str, labels: LabelFilter = ()) -> float:
        """Counter increase per unit of progress key (0 on an empty span)."""
        span = self.span
        if span <= 0:
            return 0.0
        return self.delta(name, labels) / span

    def level(self, name: str, labels: LabelFilter = ()) -> float:
        """The newest snapshot's gauge/counter value (not a delta)."""
        self._family(name)
        return self._summed(self._latest.registry, name, labels)

    def _bucket_deltas(
        self, name: str, labels: LabelFilter
    ) -> Tuple[List[int], Tuple[float, ...]]:
        family = self._family(name)
        if family.kind != "histogram":
            raise ConfigurationError(
                f"metric {name!r} is a {family.kind}, not a histogram"
            )
        counts = [0] * (len(family.buckets) + 1)
        for key, cell in family._children.items():
            if not _matches(family, key, labels):
                continue
            for i, count in enumerate(cell.counts):
                counts[i] += count
        base_family = self._base.registry.get(name)
        if base_family is not None:
            for key, cell in base_family._children.items():
                if not _matches(base_family, key, labels):
                    continue
                for i, count in enumerate(cell.counts):
                    counts[i] -= count
        return counts, family.buckets

    def quantile(self, name: str, q: float, labels: LabelFilter = ()) -> Optional[float]:
        """Interpolated quantile of the observations *inside* the window.

        Computed from the bucket-count deltas, so it reflects only what was
        observed between the two snapshots — a rolling p99, not the
        whole-run p99.  ``None`` when the window saw no observations.
        """
        counts, bounds = self._bucket_deltas(name, labels)
        return estimate_quantile(bounds, counts, q)

    def fraction_above(
        self, name: str, threshold: float, labels: LabelFilter = ()
    ) -> Optional[float]:
        """Estimated fraction of the window's observations above ``threshold``."""
        counts, bounds = self._bucket_deltas(name, labels)
        return estimate_fraction_above(bounds, counts, threshold)


class RollupRing:
    """A bounded ring of registry snapshots keyed by monotone progress.

    :meth:`push` snapshots the registry (a deep copy through the payload
    contract); :meth:`rollup` hands back the :class:`Rollup` between the
    newest snapshot and one ``over`` pushes earlier (clamped to the oldest
    retained).  Memory is bounded by ``capacity`` regardless of run length —
    the ring is what lets a million-tick run keep a live p99 without keeping
    a million snapshots.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 2:
            raise ConfigurationError(
                f"a rollup ring needs capacity >= 2 (a window takes two "
                f"snapshots), got {capacity}"
            )
        self.capacity = int(capacity)
        self._snapshots: Deque[_Snapshot] = deque(maxlen=self.capacity)

    def __len__(self) -> int:
        return len(self._snapshots)

    @property
    def latest_key(self) -> Optional[float]:
        return self._snapshots[-1].key if self._snapshots else None

    def push(self, key: float, registry: MetricsRegistry) -> None:
        """Snapshot ``registry`` at progress ``key`` (strictly increasing)."""
        key = float(key)
        if self._snapshots and key <= self._snapshots[-1].key:
            raise ConfigurationError(
                f"rollup keys must be strictly increasing; got {key} after "
                f"{self._snapshots[-1].key}"
            )
        self._snapshots.append(_Snapshot(key, registry))

    def rollup(self, over: int = 1) -> Optional[Rollup]:
        """The window ending at the newest snapshot, starting ``over`` back.

        ``over`` counts snapshot *intervals*; it clamps to the oldest
        retained snapshot, and ``None`` is returned until the ring holds at
        least two (a window needs both ends).
        """
        if over < 1:
            raise ConfigurationError(f"rollup window must be >= 1, got {over}")
        if len(self._snapshots) < 2:
            return None
        base_index = max(0, len(self._snapshots) - 1 - int(over))
        return Rollup(self._snapshots[base_index], self._snapshots[-1])
