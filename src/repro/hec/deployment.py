"""Model deployment onto HEC layers.

The paper trains all models on the cloud and then deploys one model per layer,
compressing (freezing + FP16-quantising) the ones destined for the Raspberry
Pi and Jetson TX2.  :func:`deploy_registry` reproduces that step against the
simulated topology: it quantises where required, checks memory budgets, and
returns :class:`ModelDeployment` records that the HEC system uses to answer
"which detector runs at layer k, and how long does it take there?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.exceptions import DeploymentError
from repro.detectors.base import AnomalyDetector
from repro.detectors.registry import DetectorRegistry
from repro.hec.topology import HECTopology
from repro.nn.quantization import QuantizationReport, quantize_model


@dataclass
class ModelDeployment:
    """A detector placed on an HEC layer.

    Attributes
    ----------
    layer:
        Layer index (0 = IoT device).
    detector:
        The deployed anomaly detector.
    device_name:
        Name of the hosting device.
    workload:
        Workload family used to look up calibrated execution times
        (``"univariate"`` or ``"multivariate"``).
    quantized:
        Whether the model was FP16-quantised before deployment.
    quantization:
        The quantisation report (``None`` when not quantised).
    execution_time_ms:
        Resolved execution time of one detection at this layer.
    """

    layer: int
    detector: AnomalyDetector
    device_name: str
    workload: str
    quantized: bool
    quantization: Optional[QuantizationReport]
    execution_time_ms: float

    @property
    def model_bytes(self) -> int:
        """Approximate in-memory model size after (optional) quantisation."""
        bytes_per_parameter = 2 if self.quantized else 4
        return self.detector.parameter_count() * bytes_per_parameter


def deploy_registry(
    registry: DetectorRegistry,
    topology: HECTopology,
    workload: str,
    quantize_below_layer: Optional[int] = None,
    execution_time_overrides: Optional[Dict[int, float]] = None,
) -> List[ModelDeployment]:
    """Deploy every registered detector onto its layer of ``topology``.

    Parameters
    ----------
    registry:
        Detectors keyed by layer (must cover layers ``0..K-1``).
    topology:
        The target hierarchy.
    workload:
        Workload family for calibrated execution-time lookup
        (``"univariate"`` or ``"multivariate"``).
    quantize_below_layer:
        Layers strictly below this index get FP16-quantised before deployment
        (the paper quantises the IoT and edge models, i.e. layers 0 and 1, so
        the default is ``K-1``).  Pass 0 to disable quantisation entirely.
    execution_time_overrides:
        Optional per-layer execution times (milliseconds) that take precedence
        over both the calibration table and the generic model — used by tests
        and by experiments that measure actual NumPy inference time.
    """
    registry.require_complete(topology.n_layers)
    if quantize_below_layer is None:
        quantize_below_layer = topology.n_layers - 1
    overrides = execution_time_overrides or {}

    deployments: List[ModelDeployment] = []
    for layer, detector in registry:
        if layer >= topology.n_layers:
            raise DeploymentError(
                f"registry contains layer {layer} but the topology only has "
                f"{topology.n_layers} layers"
            )
        device = topology.device_at(layer)
        should_quantize = layer < quantize_below_layer
        report: Optional[QuantizationReport] = None
        if should_quantize:
            report = quantize_model(detector.model)

        bytes_per_parameter = 2 if should_quantize else 4
        model_bytes = detector.parameter_count() * bytes_per_parameter
        if not device.can_host(model_bytes, quantized=should_quantize):
            raise DeploymentError(
                f"model {detector.name!r} ({model_bytes / 1e6:.1f} MB, "
                f"quantized={should_quantize}) does not fit on device {device.name!r}"
            )

        if layer in overrides:
            execution_ms = float(overrides[layer])
        else:
            execution_ms = device.execution_time_ms(
                workload, parameter_count=detector.parameter_count()
            )

        deployments.append(
            ModelDeployment(
                layer=layer,
                detector=detector,
                device_name=device.name,
                workload=workload,
                quantized=should_quantize,
                quantization=report,
                execution_time_ms=execution_ms,
            )
        )
    return deployments
