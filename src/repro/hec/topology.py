"""K-layer HEC topology: devices at each layer connected by links.

Layer 0 is the IoT device where data originates; layer ``K-1`` is the cloud.
Link ``i`` connects layer ``i`` to layer ``i+1``.  The default
:func:`build_three_layer_topology` mirrors the paper's testbed (Raspberry Pi 3
→ Jetson TX2 → GPU Devbox with ~250 ms per-hop round trips).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.hec.device import DeviceProfile, GPU_DEVBOX, JETSON_TX2, RASPBERRY_PI_3
from repro.hec.network import NetworkLink, paper_link_edge_cloud, paper_link_iot_edge
from repro.utils.rng import RngLike


@dataclass
class HECTopology:
    """A linear hierarchy of devices connected by links.

    ``devices[i]`` sits at layer ``i``; ``links[i]`` connects layers ``i`` and
    ``i+1``, so ``len(links) == len(devices) - 1``.
    """

    devices: List[DeviceProfile]
    links: List[NetworkLink]

    def __post_init__(self) -> None:
        if len(self.devices) < 1:
            raise ConfigurationError("a topology needs at least one device")
        if len(self.links) != len(self.devices) - 1:
            raise ConfigurationError(
                f"a {len(self.devices)}-layer topology needs {len(self.devices) - 1} links, "
                f"got {len(self.links)}"
            )

    # -- structure ----------------------------------------------------------------

    @property
    def n_layers(self) -> int:
        """Number of layers (K in the paper)."""
        return len(self.devices)

    def device_at(self, layer: int) -> DeviceProfile:
        """The device at ``layer`` (0 = IoT device)."""
        self._check_layer(layer)
        return self.devices[layer]

    def links_to(self, layer: int) -> List[NetworkLink]:
        """The links traversed by data travelling from layer 0 up to ``layer``."""
        self._check_layer(layer)
        return self.links[:layer]

    def _check_layer(self, layer: int) -> None:
        if not 0 <= layer < self.n_layers:
            raise ConfigurationError(
                f"layer must lie in [0, {self.n_layers}), got {layer}"
            )

    # -- convenience ------------------------------------------------------------------

    def uplink_latency_ms(self, layer: int) -> float:
        """Sum of one-way propagation latencies from layer 0 up to ``layer``."""
        return float(sum(link.one_way_latency_ms for link in self.links_to(layer)))

    def round_trip_latency_ms(self, layer: int) -> float:
        """Propagation round-trip time from layer 0 to ``layer`` and back."""
        return 2.0 * self.uplink_latency_ms(layer)

    def reset_links(self) -> None:
        """Reset keep-alive state and traffic counters on every link."""
        for link in self.links:
            link.reset()

    def warm_links(self) -> None:
        """Pre-establish the keep-alive connection on every link."""
        for link in self.links:
            link.warm()

    def describe(self) -> str:
        """A short multi-line description of the topology."""
        lines = [f"HECTopology with {self.n_layers} layers:"]
        for index, device in enumerate(self.devices):
            lines.append(f"  layer {index}: {device.name} ({device.tier})")
            if index < len(self.links):
                link = self.links[index]
                lines.append(
                    f"    └─ link {link.name}: {link.one_way_latency_ms:.1f} ms one-way, "
                    f"{link.bandwidth_mbps:.0f} Mbps"
                )
        return "\n".join(lines)


def build_three_layer_topology(
    devices: Optional[Sequence[DeviceProfile]] = None,
    links: Optional[Sequence[NetworkLink]] = None,
    rng: RngLike = None,
) -> HECTopology:
    """The paper's three-layer testbed topology (Pi 3 → Jetson TX2 → Devbox)."""
    resolved_devices = list(devices) if devices is not None else [
        RASPBERRY_PI_3,
        JETSON_TX2,
        GPU_DEVBOX,
    ]
    resolved_links = list(links) if links is not None else [
        paper_link_iot_edge(rng),
        paper_link_edge_cloud(rng),
    ]
    return HECTopology(devices=resolved_devices, links=resolved_links)
