"""Device profiles for the HEC layers.

A :class:`DeviceProfile` models the compute capability of a node in the
hierarchy.  Execution time of a detection model on a device is resolved in
two steps:

1. if the device has a *calibrated* execution time for the model (the values
   the paper measured on its testbed, Table I last row), that value is used;
2. otherwise a generic estimate is derived from the model's parameter count
   and the device's effective throughput (parameters evaluated per
   millisecond), which keeps new architectures usable in the simulator.

The three default profiles mirror the paper's testbed: a Raspberry Pi 3 as the
IoT device, an NVIDIA Jetson TX2 as the edge server and a multi-GPU Devbox as
the cloud.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_positive


@dataclass
class DeviceProfile:
    """Compute profile of one HEC node.

    Attributes
    ----------
    name:
        Human-readable device name.
    tier:
        Tier this device usually occupies (``"iot"``, ``"edge"`` or ``"cloud"``).
    throughput_params_per_ms:
        Effective model-evaluation throughput used by the generic execution
        model (higher is faster).
    memory_mb:
        Available memory for model deployment, in megabytes; deployment
        checks a model's footprint against this budget.
    calibrated_execution_ms:
        Measured per-model execution times keyed by workload name (e.g.
        ``"univariate"`` / ``"multivariate"`` or a concrete model name).
    supports_fp32:
        Whether the device can host uncompressed FP32 models.  The paper
        quantises models to FP16 before deploying on the Pi and the Jetson;
        profiles with ``supports_fp32=False`` require quantised deployments.
    """

    name: str
    tier: str
    throughput_params_per_ms: float
    memory_mb: float
    calibrated_execution_ms: Dict[str, float] = field(default_factory=dict)
    supports_fp32: bool = True

    def __post_init__(self) -> None:
        check_positive(self.throughput_params_per_ms, "throughput_params_per_ms")
        check_positive(self.memory_mb, "memory_mb")
        for key, value in self.calibrated_execution_ms.items():
            if value <= 0:
                raise ConfigurationError(
                    f"calibrated execution time for {key!r} must be positive, got {value}"
                )

    # -- execution-time model ---------------------------------------------------

    def execution_time_ms(self, workload: str, parameter_count: Optional[int] = None) -> float:
        """Execution time of ``workload`` on this device.

        ``workload`` is looked up in the calibration table first; when absent,
        ``parameter_count`` must be provided and the generic throughput model
        is used.
        """
        if workload in self.calibrated_execution_ms:
            return float(self.calibrated_execution_ms[workload])
        if parameter_count is None:
            raise ConfigurationError(
                f"device {self.name!r} has no calibrated time for workload {workload!r} "
                "and no parameter_count was provided for the generic model"
            )
        check_positive(parameter_count, "parameter_count")
        return float(parameter_count) / self.throughput_params_per_ms

    def calibrate(self, workload: str, execution_ms: float) -> "DeviceProfile":
        """Record a measured execution time for ``workload`` (returns ``self``)."""
        check_positive(execution_ms, "execution_ms")
        self.calibrated_execution_ms[str(workload)] = float(execution_ms)
        return self

    def can_host(self, model_bytes: int, quantized: bool) -> bool:
        """Whether a model of ``model_bytes`` (already quantised or not) fits this device."""
        if not self.supports_fp32 and not quantized:
            return False
        return model_bytes <= self.memory_mb * 1024 * 1024


def _paper_calibrations(univariate_ms: float, multivariate_ms: float) -> Dict[str, float]:
    """Calibration table entries for the two workload families of Table I."""
    return {"univariate": univariate_ms, "multivariate": multivariate_ms}


#: Raspberry Pi 3 (IoT layer).  Execution times from Table I: 12.4 ms for the
#: univariate AE-IoT model and 591.0 ms for LSTM-seq2seq-IoT.
RASPBERRY_PI_3 = DeviceProfile(
    name="Raspberry Pi 3",
    tier="iot",
    throughput_params_per_ms=271_017 / 12.4,
    memory_mb=1024.0,
    calibrated_execution_ms=_paper_calibrations(12.4, 591.0),
    supports_fp32=False,
)

#: NVIDIA Jetson TX2 (edge layer).  7.4 ms univariate, 417.3 ms multivariate.
JETSON_TX2 = DeviceProfile(
    name="NVIDIA Jetson TX2",
    tier="edge",
    throughput_params_per_ms=949_468 / 7.4,
    memory_mb=8192.0,
    calibrated_execution_ms=_paper_calibrations(7.4, 417.3),
    supports_fp32=False,
)

#: NVIDIA Devbox with 4x Titan X (cloud layer).  4.5 ms univariate, 232.3 ms multivariate.
GPU_DEVBOX = DeviceProfile(
    name="NVIDIA Devbox (4x Titan X)",
    tier="cloud",
    throughput_params_per_ms=1_085_077 / 4.5,
    memory_mb=65536.0,
    calibrated_execution_ms=_paper_calibrations(4.5, 232.3),
    supports_fp32=True,
)
