"""Network links between HEC layers.

The paper emulates WAN latency between its testbed machines with the Linux
``tc`` traffic-control tool and keeps TCP connections alive so connection
establishment is paid only once.  :class:`NetworkLink` models exactly those
knobs: a one-way propagation latency, a bandwidth for serialisation delay, an
optional jitter, and a one-time connection-setup cost amortised by the
keep-alive behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError, SchedulingError
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_non_negative

#: Health states a link can be in (see :meth:`NetworkLink.set_status`).
LINK_STATUSES = ("up", "degraded", "down")


@dataclass(frozen=True)
class TransferSpec:
    """Description of one payload transfer over a link."""

    payload_bytes: float
    direction: str = "up"  # "up" towards the cloud, "down" towards the device

    def __post_init__(self) -> None:
        check_non_negative(self.payload_bytes, "payload_bytes")
        if self.direction not in ("up", "down"):
            raise ConfigurationError(f"direction must be 'up' or 'down', got {self.direction!r}")


class NetworkLink:
    """A bidirectional link between two adjacent HEC layers."""

    def __init__(
        self,
        name: str,
        one_way_latency_ms: float,
        bandwidth_mbps: float = 1000.0,
        jitter_ms: float = 0.0,
        connection_setup_ms: float = 0.0,
        keep_alive: bool = True,
        rng: RngLike = None,
    ) -> None:
        self.name = name
        self.one_way_latency_ms = check_non_negative(one_way_latency_ms, "one_way_latency_ms")
        if bandwidth_mbps <= 0:
            raise ConfigurationError(f"bandwidth_mbps must be positive, got {bandwidth_mbps}")
        self.bandwidth_mbps = float(bandwidth_mbps)
        self.jitter_ms = check_non_negative(jitter_ms, "jitter_ms")
        self.connection_setup_ms = check_non_negative(connection_setup_ms, "connection_setup_ms")
        self.keep_alive = bool(keep_alive)
        self._rng = ensure_rng(rng)
        self._connection_established = False
        self.transferred_bytes = 0.0
        self.transfer_count = 0
        #: Health state driven by fault injection: "up" (healthy), "degraded"
        #: (latency multiplied by :attr:`degraded_factor`) or "down"
        #: (transfers raise; the system fails over to a reachable tier).
        self.status = "up"
        self.degraded_factor = 1.0

    # -- health ------------------------------------------------------------------

    def set_status(self, status: str, factor: Optional[float] = None) -> None:
        """Set the link's health state; ``factor`` is the latency multiplier
        applied while ``status == "degraded"`` (ignored otherwise)."""
        if status not in LINK_STATUSES:
            raise ConfigurationError(
                f"link status must be one of {LINK_STATUSES}, got {status!r}"
            )
        self.status = status
        if status == "degraded":
            if factor is not None:
                if factor < 1.0:
                    raise ConfigurationError(
                        f"degraded factor must be >= 1, got {factor}"
                    )
                self.degraded_factor = float(factor)
        else:
            self.degraded_factor = 1.0

    @property
    def is_down(self) -> bool:
        """Whether the link is currently unreachable."""
        return self.status == "down"

    # -- delay model ------------------------------------------------------------

    def serialization_delay_ms(self, payload_bytes: float) -> float:
        """Time to push ``payload_bytes`` onto the wire at the link bandwidth."""
        check_non_negative(payload_bytes, "payload_bytes")
        bits = payload_bytes * 8.0
        return bits / (self.bandwidth_mbps * 1e6) * 1e3

    def transfer_delay_ms(self, transfer: TransferSpec) -> float:
        """One-way delay of a transfer: setup (first use only) + latency + jitter + serialisation.

        A degraded link multiplies its propagation latency by
        :attr:`degraded_factor` (the factor is exactly 1.0 when healthy, so
        healthy delays are bit-identical to a link without the health model).
        Transferring over a down link is a scheduling bug — the system must
        fail over before dispatching — and raises.
        """
        if self.is_down:
            raise SchedulingError(
                f"link {self.name!r} is down; detection must fail over to a "
                "reachable tier instead of transferring"
            )
        delay = (
            self.one_way_latency_ms * self.degraded_factor
            + self.serialization_delay_ms(transfer.payload_bytes)
        )
        if self.jitter_ms > 0:
            delay += float(abs(self._rng.normal(0.0, self.jitter_ms)))
        if not self._connection_established or not self.keep_alive:
            delay += self.connection_setup_ms
        self._connection_established = True
        self.transferred_bytes += transfer.payload_bytes
        self.transfer_count += 1
        return float(delay)

    def warm(self) -> None:
        """Mark the keep-alive connection as already established.

        The paper's testbed keeps TCP connections alive, so steady-state
        traffic never pays ``connection_setup_ms``.  Long-running consumers
        (the fleet streaming engine) warm their links up front, which also
        keeps per-request delays independent of how a fleet is partitioned
        across shard replicas.
        """
        self._connection_established = True

    def record_transfers(self, payload_bytes: float, count: int) -> None:
        """Account for ``count`` steady-state transfers at once.

        Used by the batched detection path: once the connection is established
        and the link is jitter-free, every further transfer of the same payload
        has an identical delay, so only the traffic counters need updating.
        """
        check_non_negative(payload_bytes, "payload_bytes")
        if count < 0:
            raise ConfigurationError(f"count must be non-negative, got {count}")
        self.transferred_bytes += payload_bytes * count
        self.transfer_count += count

    def round_trip_delay_ms(self, request_bytes: float, response_bytes: float = 64.0) -> float:
        """Delay of a request/response exchange (uplink payload + small downlink reply)."""
        up = self.transfer_delay_ms(TransferSpec(request_bytes, "up"))
        down = self.transfer_delay_ms(TransferSpec(response_bytes, "down"))
        return up + down

    # -- bookkeeping ----------------------------------------------------------------

    def reset(self) -> None:
        """Forget connection state, traffic counters and injected faults."""
        self._connection_established = False
        self.transferred_bytes = 0.0
        self.transfer_count = 0
        self.status = "up"
        self.degraded_factor = 1.0

    def snapshot(self) -> dict:
        """Picklable mid-run link state for the fleet checkpoint layer."""
        return {
            "connection_established": self._connection_established,
            "transferred_bytes": self.transferred_bytes,
            "transfer_count": self.transfer_count,
            "status": self.status,
            "degraded_factor": self.degraded_factor,
            "rng_state": self._rng.bit_generator.state,
        }

    def restore(self, snapshot: dict) -> None:
        """Restore the state captured by :meth:`snapshot`."""
        self._connection_established = bool(snapshot["connection_established"])
        self.transferred_bytes = float(snapshot["transferred_bytes"])
        self.transfer_count = int(snapshot["transfer_count"])
        self.status = str(snapshot["status"])
        self.degraded_factor = float(snapshot["degraded_factor"])
        self._rng.bit_generator.state = snapshot["rng_state"]

    @property
    def round_trip_latency_ms(self) -> float:
        """Pure propagation round-trip time (no payload, no jitter, no setup)."""
        return 2.0 * self.one_way_latency_ms

    def get_config(self) -> dict:
        """JSON-serialisable link description."""
        return {
            "name": self.name,
            "one_way_latency_ms": self.one_way_latency_ms,
            "bandwidth_mbps": self.bandwidth_mbps,
            "jitter_ms": self.jitter_ms,
            "connection_setup_ms": self.connection_setup_ms,
            "keep_alive": self.keep_alive,
        }


def paper_link_iot_edge(rng: RngLike = None) -> NetworkLink:
    """The IoT-device ↔ edge-server link used in the paper's testbed.

    The end-to-end numbers in Table II imply a ~250 ms round trip between the
    IoT device and the edge server (univariate: 257.4 ms total minus 7.4 ms
    execution), i.e. a 125 ms one-way latency as configured here.
    """
    return NetworkLink(
        name="iot-edge",
        one_way_latency_ms=125.0,
        bandwidth_mbps=100.0,
        jitter_ms=0.0,
        connection_setup_ms=3.0,
        keep_alive=True,
        rng=rng,
    )


def paper_link_edge_cloud(rng: RngLike = None) -> NetworkLink:
    """The edge-server ↔ cloud link used in the paper's testbed.

    Table II implies an additional ~250 ms round trip from edge to cloud
    (univariate: 504.5 ms total minus 4.5 ms execution minus the 250 ms
    IoT–edge round trip).
    """
    return NetworkLink(
        name="edge-cloud",
        one_way_latency_ms=125.0,
        bandwidth_mbps=1000.0,
        jitter_ms=0.0,
        connection_setup_ms=3.0,
        keep_alive=True,
        rng=rng,
    )
