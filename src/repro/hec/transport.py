"""Simulated keep-alive transport channels.

The paper's demo keeps TCP sockets alive between the HEC layers "to reduce
the overhead of connection establishment".  The :class:`KeepAliveChannel`
class models such a channel between two adjacent layers: the first message
pays the connection-setup cost, subsequent messages only pay latency and
serialisation, and an idle timeout can force a re-handshake.  The channel also
keeps simple traffic statistics, which the benchmarks and tests use to verify
that the Adaptive scheme really does transmit less data than always offloading
to the cloud.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.exceptions import ConfigurationError, SchedulingError
from repro.hec.network import NetworkLink, TransferSpec
from repro.utils.timer import SimulatedClock


@dataclass
class Message:
    """One message carried over a channel."""

    payload_bytes: float
    direction: str = "up"
    kind: str = "data"

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ConfigurationError(
                f"payload_bytes must be non-negative, got {self.payload_bytes}"
            )
        if self.direction not in ("up", "down"):
            raise ConfigurationError(f"direction must be 'up' or 'down', got {self.direction!r}")


@dataclass
class ChannelStats:
    """Per-channel traffic counters."""

    messages_sent: int = 0
    bytes_sent: float = 0.0
    handshakes: int = 0
    total_delay_ms: float = 0.0
    per_message_delay_ms: List[float] = field(default_factory=list)

    @property
    def mean_delay_ms(self) -> float:
        """Mean per-message delay (0 when no message was sent)."""
        if not self.per_message_delay_ms:
            return 0.0
        return float(sum(self.per_message_delay_ms) / len(self.per_message_delay_ms))


class KeepAliveChannel:
    """A keep-alive channel over one network link, driven by a simulated clock."""

    def __init__(
        self,
        link: NetworkLink,
        clock: Optional[SimulatedClock] = None,
        idle_timeout_ms: Optional[float] = None,
    ) -> None:
        self.link = link
        self.clock = clock or SimulatedClock()
        if idle_timeout_ms is not None and idle_timeout_ms <= 0:
            raise ConfigurationError(
                f"idle_timeout_ms must be positive or None, got {idle_timeout_ms}"
            )
        self.idle_timeout_ms = idle_timeout_ms
        self.stats = ChannelStats()
        self._connected = False
        self._last_activity_ms: Optional[float] = None

    # -- connection management --------------------------------------------------

    def _connection_expired(self) -> bool:
        if self.idle_timeout_ms is None or self._last_activity_ms is None:
            return False
        return (self.clock.now_ms - self._last_activity_ms) > self.idle_timeout_ms

    def ensure_connected(self) -> float:
        """Establish the connection if needed; returns the handshake delay paid."""
        if self._connected and not self._connection_expired():
            return 0.0
        handshake_ms = self.link.connection_setup_ms + self.link.round_trip_latency_ms
        self.clock.advance(handshake_ms)
        self._connected = True
        self._last_activity_ms = self.clock.now_ms
        self.stats.handshakes += 1
        return handshake_ms

    def close(self) -> None:
        """Tear the connection down (the next send pays a new handshake)."""
        self._connected = False

    # -- messaging -----------------------------------------------------------------

    def send(self, message: Message) -> float:
        """Send one message; returns its delay and advances the simulated clock."""
        handshake_ms = self.ensure_connected()
        transfer_ms = self.link.transfer_delay_ms(
            TransferSpec(message.payload_bytes, message.direction)
        )
        self.clock.advance(transfer_ms)
        self._last_activity_ms = self.clock.now_ms
        total = handshake_ms + transfer_ms
        self.stats.messages_sent += 1
        self.stats.bytes_sent += message.payload_bytes
        self.stats.total_delay_ms += total
        self.stats.per_message_delay_ms.append(total)
        return total

    def request_response(self, request: Message, response: Message) -> float:
        """A request up the hierarchy followed by a response back down."""
        if request.direction == response.direction:
            raise SchedulingError("request and response must travel in opposite directions")
        return self.send(request) + self.send(response)
