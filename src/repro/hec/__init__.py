"""Simulated hierarchical edge computing (HEC) substrate.

The paper evaluates on a physical three-layer testbed (Raspberry Pi 3 →
Jetson TX2 → GPU Devbox) whose WAN latencies are shaped with ``tc`` and whose
services communicate over keep-alive TCP sockets.  This subpackage provides a
simulated equivalent:

* :mod:`repro.hec.device` — device profiles with calibrated per-model
  execution times (Table I) and a generic compute model for other workloads;
* :mod:`repro.hec.network` — links with one-way latency, bandwidth and
  optional jitter, plus the keep-alive connection-establishment model;
* :mod:`repro.hec.topology` — the K-layer hierarchy wiring devices and links;
* :mod:`repro.hec.deployment` — placing (optionally quantised) detectors on
  layers;
* :mod:`repro.hec.delay` — end-to-end delay accounting for a detection request
  handled at a given layer;
* :mod:`repro.hec.simulation` — the HEC system facade used by the selection
  schemes (submit a window, get back prediction, confidence and delay), plus
  an event log for the demo panel.
"""

from repro.hec.device import DeviceProfile, RASPBERRY_PI_3, JETSON_TX2, GPU_DEVBOX
from repro.hec.network import NetworkLink, TransferSpec
from repro.hec.topology import HECTopology, build_three_layer_topology
from repro.hec.deployment import ModelDeployment, deploy_registry
from repro.hec.delay import DelayBreakdown, end_to_end_delay
from repro.hec.simulation import HECSystem, DetectionRecord

__all__ = [
    "DeviceProfile",
    "RASPBERRY_PI_3",
    "JETSON_TX2",
    "GPU_DEVBOX",
    "NetworkLink",
    "TransferSpec",
    "HECTopology",
    "build_three_layer_topology",
    "ModelDeployment",
    "deploy_registry",
    "DelayBreakdown",
    "end_to_end_delay",
    "HECSystem",
    "DetectionRecord",
]
