"""End-to-end delay accounting.

The end-to-end detection delay of a window handled at layer ``k`` is

``t_e2e = sum over hops 0..k-1 of (uplink transfer) + execution at layer k +
sum over hops of (downlink result transfer)``

where each transfer pays the link's one-way latency plus serialisation of the
payload (the window on the way up, a small verdict message on the way down).
Connection setup is paid only on the first request per link thanks to the
keep-alive sockets of the paper's implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.exceptions import ConfigurationError
from repro.hec.network import TransferSpec
from repro.hec.topology import HECTopology

#: Size of the verdict/result message sent back down the hierarchy.
RESULT_PAYLOAD_BYTES = 64.0


@dataclass
class DelayBreakdown:
    """Composition of one end-to-end detection delay (all values in milliseconds)."""

    layer: int
    uplink_ms: float = 0.0
    execution_ms: float = 0.0
    downlink_ms: float = 0.0
    #: Execution time spent at lower layers before escalating (Successive scheme only).
    escalation_ms: float = 0.0
    #: Retry/timeout penalty paid when the request was redirected off an
    #: unreachable tier (fault-injection failover; zero on healthy runs).
    retry_ms: float = 0.0
    hops: List[str] = field(default_factory=list)

    @property
    def total_ms(self) -> float:
        """Total end-to-end delay."""
        return (
            self.uplink_ms
            + self.execution_ms
            + self.downlink_ms
            + self.escalation_ms
            + self.retry_ms
        )

    def merge_escalation(self, previous: "DelayBreakdown") -> "DelayBreakdown":
        """Fold a previous (non-confident) attempt into this breakdown's escalation time."""
        self.escalation_ms += previous.total_ms
        return self


def window_payload_bytes(window_shape: tuple, bytes_per_value: int = 4) -> float:
    """Approximate serialised size of a detection window (FP32 values by default)."""
    size = 1
    for dim in window_shape:
        size *= int(dim)
    return float(size * bytes_per_value)


def end_to_end_delay(
    topology: HECTopology,
    layer: int,
    execution_ms: float,
    payload_bytes: float,
    include_downlink: bool = True,
) -> DelayBreakdown:
    """Delay of one detection handled at ``layer`` for a window of ``payload_bytes``.

    ``include_downlink`` covers returning the verdict to the IoT device; the
    paper's end-to-end delay is measured at the device, so it is on by default.
    """
    if execution_ms < 0:
        raise ConfigurationError(f"execution_ms must be non-negative, got {execution_ms}")
    breakdown = DelayBreakdown(layer=layer, execution_ms=float(execution_ms))
    for link in topology.links_to(layer):
        breakdown.uplink_ms += link.transfer_delay_ms(TransferSpec(payload_bytes, "up"))
        breakdown.hops.append(f"{link.name}:up")
    if include_downlink:
        for link in reversed(topology.links_to(layer)):
            breakdown.downlink_ms += link.transfer_delay_ms(
                TransferSpec(RESULT_PAYLOAD_BYTES, "down")
            )
            breakdown.hops.append(f"{link.name}:down")
    return breakdown
