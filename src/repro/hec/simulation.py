"""The HEC system facade used by the model-selection schemes.

:class:`HECSystem` ties the pieces together: a topology, the per-layer model
deployments and the delay model.  A scheme submits one window at a time with
``detect_at(layer, window)`` and receives a :class:`DetectionRecord` holding
the prediction, the detector's confidence and the full delay breakdown.  The
system keeps an event log (one record per handled request) that the demo panel
and the benchmarks consume, and aggregate per-layer counters used to verify
offloading behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import DeploymentError, SchedulingError, ShapeError
from repro.detectors.base import DetectionResult
from repro.hec.delay import (
    RESULT_PAYLOAD_BYTES,
    DelayBreakdown,
    end_to_end_delay,
    window_payload_bytes,
)
from repro.hec.deployment import ModelDeployment
from repro.hec.topology import HECTopology
from repro.utils.timer import SimulatedClock


def _as_float64_batch(windows: np.ndarray) -> np.ndarray:
    """``windows`` as a float64 ndarray, skipping the copy when it already is.

    ``np.asarray`` is already a no-op for a C-contiguous float64 array, but
    the streaming fast path hands freshly stacked float64 batches straight
    back in — the explicit short-circuit documents (and tests pin) that the
    hot path never re-copies what the engine just built.
    """
    if (
        type(windows) is np.ndarray
        and windows.dtype == np.float64
        and windows.flags.c_contiguous
    ):
        return windows
    return np.asarray(windows, dtype=float)


@dataclass(frozen=True)
class BatchDetectionResult:
    """One batched detection outcome as aligned arrays (the columnar view).

    What :meth:`HECSystem.detect_batch_columnar` returns instead of a list of
    :class:`DetectionRecord` objects: exactly the per-window fields the
    streaming metrics and the adaptation loop consume, with no delay
    breakdowns, no per-window records and nothing to tear back apart.
    """

    layer: int
    #: ``(n,)`` int64 binary predictions (1 = anomaly reported).
    predictions: np.ndarray
    #: ``(n,)`` float64 window anomaly scores (minimum logPD).
    anomaly_scores: np.ndarray
    #: ``(n,)`` float64 end-to-end delays.
    delays_ms: np.ndarray
    #: ``(n,)`` bool confidence-rule outcomes — ``None`` unless the caller
    #: asked for them (streaming consumers never do; the Successive scheme's
    #: escalation logic is the confidence rules' only customer).
    confidents: Optional[np.ndarray] = None

    @property
    def n(self) -> int:
        """Number of windows in the batch."""
        return int(self.predictions.shape[0])


@dataclass
class DetectionRecord:
    """Everything known about one detection request handled by the HEC system."""

    window_index: int
    layer: int
    prediction: int
    confident: bool
    anomaly_score: float
    delay: DelayBreakdown
    ground_truth: Optional[int] = None

    @property
    def delay_ms(self) -> float:
        """Total end-to-end delay of the request."""
        return self.delay.total_ms

    @property
    def correct(self) -> Optional[bool]:
        """Whether the prediction matches the ground truth (``None`` if unknown)."""
        if self.ground_truth is None:
            return None
        return bool(self.prediction == self.ground_truth)


@dataclass
class LayerCounters:
    """Aggregate per-layer usage statistics."""

    requests: int = 0
    total_execution_ms: float = 0.0
    total_delay_ms: float = 0.0
    anomalies_reported: int = 0
    #: Requests served here because their requested tier was unreachable.
    redirected: int = 0


class HECSystem:
    """A deployed hierarchical edge computing system handling detection requests."""

    def __init__(
        self,
        topology: HECTopology,
        deployments: Sequence[ModelDeployment],
        clock: Optional[SimulatedClock] = None,
    ) -> None:
        self.topology = topology
        self.clock = clock or SimulatedClock()
        self._deployments: Dict[int, ModelDeployment] = {}
        for deployment in deployments:
            if deployment.layer in self._deployments:
                raise DeploymentError(f"layer {deployment.layer} has two deployments")
            self._deployments[deployment.layer] = deployment
        missing = [
            layer for layer in range(topology.n_layers) if layer not in self._deployments
        ]
        if missing:
            raise DeploymentError(f"no deployment for layers {missing}")
        self.records: List[DetectionRecord] = []
        #: Whether handled requests are appended to :attr:`records`.  The
        #: fleet streaming engine disables this so unbounded streams aggregate
        #: through bounded online metrics instead of an ever-growing log;
        #: counters, clock and link bookkeeping are unaffected.
        self.record_log = True
        self.layer_counters: Dict[int, LayerCounters] = {
            layer: LayerCounters() for layer in range(topology.n_layers)
        }
        self._request_counter = 0
        #: Monotone counter bumped whenever the deployed model set changes
        #: (hot-swaps).  Consumers that snapshot the system — the sharded
        #: engine's forked worker pools — key their snapshots on it so a
        #: swap invalidates them (see :mod:`repro.fleet.sharding`).
        self.state_version = 0
        #: Failover policy under link outage: a request whose tier is behind a
        #: down link is redirected to the best reachable tier and charged
        #: ``retries * timeout`` of retry delay (see :meth:`configure_failover`).
        self._failover_retries = 1
        self._retry_timeout_ms = 200.0

    def bump_state_version(self) -> int:
        """Mark the deployed model set as changed; returns the new version."""
        self.state_version += 1
        return self.state_version

    # -- introspection -------------------------------------------------------------

    @property
    def n_layers(self) -> int:
        """Number of layers in the underlying topology."""
        return self.topology.n_layers

    def deployment_at(self, layer: int) -> ModelDeployment:
        """The model deployment at ``layer``."""
        try:
            return self._deployments[layer]
        except KeyError as exc:
            raise SchedulingError(f"no model deployed at layer {layer}") from exc

    def execution_time_ms(self, layer: int) -> float:
        """Execution time of one detection at ``layer``."""
        return self.deployment_at(layer).execution_time_ms

    def expected_delay_ms(self, layer: int, window_shape: tuple) -> float:
        """Analytic end-to-end delay of handling one window at ``layer``.

        This does not mutate link state; it uses pure propagation latency plus
        serialisation, and is what the reward function and the bandit use to
        reason about candidate actions without actually sending data.
        """
        payload = window_payload_bytes(window_shape)
        delay = self.execution_time_ms(layer)
        for link in self.topology.links_to(layer):
            delay += 2.0 * link.one_way_latency_ms
            delay += link.serialization_delay_ms(payload)
            delay += link.serialization_delay_ms(64.0)
        return float(delay)

    # -- failover ------------------------------------------------------------------

    def configure_failover(self, retries: int = 1, timeout_ms: float = 200.0) -> None:
        """Set the retry policy charged when a request is redirected off a
        tier behind a down link: ``retries * timeout_ms`` of extra delay per
        redirected request, recorded in the delay breakdown's ``retry_ms``."""
        if retries < 1:
            raise SchedulingError(f"failover retries must be >= 1, got {retries}")
        if timeout_ms < 0:
            raise SchedulingError(f"retry timeout must be non-negative, got {timeout_ms}")
        self._failover_retries = int(retries)
        self._retry_timeout_ms = float(timeout_ms)

    def reachable_layer(self, layer: int) -> int:
        """The highest reachable layer on the path to ``layer``.

        Walks the uplink chain and stops below the first down link; a request
        for an unreachable tier is served by the best tier still connected to
        the device (layer 0 — the device itself — is always reachable).
        """
        effective = int(layer)
        for index, link in enumerate(self.topology.links_to(layer)):
            if link.is_down:
                effective = index
                break
        return effective

    def _resolve_layer(self, layer: int):
        """``(effective layer, retry penalty ms, redirected?)`` for a request."""
        self.deployment_at(layer)  # unknown layers stay a scheduling error
        effective = self.reachable_layer(layer)
        if effective == layer:
            return int(layer), 0.0, False
        return effective, float(self._failover_retries * self._retry_timeout_ms), True

    # -- request handling --------------------------------------------------------------

    def detect_at(
        self,
        layer: int,
        window: np.ndarray,
        ground_truth: Optional[int] = None,
        escalated_from: Optional[DelayBreakdown] = None,
    ) -> DetectionRecord:
        """Handle one detection request at ``layer`` and log the outcome.

        ``escalated_from`` carries the delay already spent at lower layers when
        the Successive scheme escalates a non-confident request upward.
        """
        layer, retry_ms, redirected = self._resolve_layer(layer)
        deployment = self.deployment_at(layer)
        window = np.asarray(window, dtype=float)
        batch = window[None, ...]
        results: List[DetectionResult] = deployment.detector.detect(batch)
        result = results[0]

        payload = window_payload_bytes(window.shape)
        breakdown = end_to_end_delay(
            self.topology,
            layer,
            execution_ms=deployment.execution_time_ms,
            payload_bytes=payload,
        )
        breakdown.retry_ms = retry_ms
        if escalated_from is not None:
            breakdown.merge_escalation(escalated_from)
        self.clock.advance(breakdown.total_ms)

        record = DetectionRecord(
            window_index=self._request_counter,
            layer=layer,
            prediction=int(result.is_anomaly),
            confident=result.confident,
            anomaly_score=result.anomaly_score,
            delay=breakdown,
            ground_truth=ground_truth,
        )
        self._request_counter += 1
        if self.record_log:
            self.records.append(record)

        counters = self.layer_counters[layer]
        counters.requests += 1
        counters.total_execution_ms += deployment.execution_time_ms
        counters.total_delay_ms += breakdown.total_ms
        counters.anomalies_reported += record.prediction
        counters.redirected += int(redirected)
        return record

    def detect_batch(
        self,
        layer: int,
        windows: np.ndarray,
        ground_truths: Optional[Sequence[int]] = None,
        escalated_from: Optional[Sequence[Optional[DelayBreakdown]]] = None,
    ) -> List[DetectionRecord]:
        """Handle a batch of detection requests at ``layer`` with one detector call.

        Semantically equivalent to calling :meth:`detect_at` once per window in
        order (records, counters, clock and link bookkeeping all match), but
        the detector's forward pass runs once on the whole ``(n, ...)`` batch
        and the per-window delay breakdowns are replicated from a single
        steady-state computation whenever the links are jitter-free.

        ``escalated_from`` optionally carries, per window, the delay already
        spent at lower layers (the Successive scheme's batched escalation).
        """
        layer, retry_ms, redirected = self._resolve_layer(layer)
        deployment = self.deployment_at(layer)
        windows = _as_float64_batch(windows)
        if windows.ndim < 2:
            raise ShapeError(
                f"detect_batch expects a batch of windows (n, ...), got shape {windows.shape}"
            )
        n = windows.shape[0]
        if ground_truths is not None and len(ground_truths) != n:
            raise ShapeError(
                f"got {len(ground_truths)} ground truths for {n} windows"
            )
        if escalated_from is not None and len(escalated_from) != n:
            raise ShapeError(
                f"got {len(escalated_from)} escalation breakdowns for {n} windows"
            )
        if n == 0:
            return []

        results: List[DetectionResult] = deployment.detector.detect(windows)
        breakdowns = self._batch_delay_breakdowns(layer, windows.shape[1:], n, deployment)

        records: List[DetectionRecord] = []
        counters = self.layer_counters[layer]
        for index in range(n):
            breakdown = breakdowns[index]
            breakdown.retry_ms = retry_ms
            if escalated_from is not None and escalated_from[index] is not None:
                breakdown.merge_escalation(escalated_from[index])
            self.clock.advance(breakdown.total_ms)
            result = results[index]
            record = DetectionRecord(
                window_index=self._request_counter,
                layer=layer,
                prediction=int(result.is_anomaly),
                confident=result.confident,
                anomaly_score=result.anomaly_score,
                delay=breakdown,
                ground_truth=(
                    int(ground_truths[index]) if ground_truths is not None else None
                ),
            )
            self._request_counter += 1
            if self.record_log:
                self.records.append(record)
            records.append(record)
            counters.requests += 1
            counters.total_execution_ms += deployment.execution_time_ms
            counters.total_delay_ms += breakdown.total_ms
            counters.anomalies_reported += record.prediction
            counters.redirected += int(redirected)
        return records

    def detect_batch_columnar(
        self,
        layer: int,
        windows: np.ndarray,
        with_confidence: bool = False,
    ) -> BatchDetectionResult:
        """Handle a batch of detection requests, returning arrays not records.

        The streaming fast path: one detector forward (identical batching to
        :meth:`detect_batch`, so predictions/scores are bit-identical to the
        record path's), per-window delays as one array, and bulk bookkeeping.
        Per-window values — predictions, anomaly scores, delays — match
        :meth:`detect_batch` element for element, including the per-transfer
        jitter draw order on jittery links.  Only the float *accumulation*
        order of the clock and the per-layer counters differs (one batched
        advance instead of ``n`` sequential ones), which is why the streaming
        metrics consume the returned arrays rather than those counters.

        ``with_confidence`` opts into the confidence-rule outcomes
        (``result.confidents``); streaming consumers never read them, so the
        default skips those detector passes entirely.

        With :attr:`record_log` enabled the call routes through
        :meth:`detect_batch` so the event log keeps its one-record-per-request
        contract; the fast path engages only for log-free streaming.
        """
        if self.record_log:
            records = self.detect_batch(layer, windows)
            n = len(records)
            served = records[0].layer if records else self.reachable_layer(layer)
            return BatchDetectionResult(
                layer=int(served),
                predictions=np.fromiter(
                    (r.prediction for r in records), dtype=np.int64, count=n
                ),
                anomaly_scores=np.fromiter(
                    (r.anomaly_score for r in records), dtype=float, count=n
                ),
                delays_ms=np.fromiter(
                    (r.delay_ms for r in records), dtype=float, count=n
                ),
                confidents=np.fromiter(
                    (r.confident for r in records), dtype=bool, count=n
                ),
            )
        layer, retry_ms, redirected = self._resolve_layer(layer)
        deployment = self.deployment_at(layer)
        windows = _as_float64_batch(windows)
        if windows.ndim < 2:
            raise ShapeError(
                f"detect_batch_columnar expects a batch of windows (n, ...), "
                f"got shape {windows.shape}"
            )
        n = windows.shape[0]
        if n == 0:
            return BatchDetectionResult(
                layer=int(layer),
                predictions=np.empty(0, dtype=np.int64),
                anomaly_scores=np.empty(0),
                delays_ms=np.empty(0),
                confidents=np.empty(0, dtype=bool) if with_confidence else None,
            )

        is_anomaly, confident, scores, _ = deployment.detector.detect_arrays(
            windows, with_confidence=with_confidence
        )
        predictions = is_anomaly.astype(np.int64)

        first, steady, jittery = self._batch_delay_profile(
            layer, windows.shape[1:], n, deployment
        )
        delays = np.empty(n)
        delays[0] = first.total_ms
        if steady is not None:
            delays[1:] = steady.total_ms
        elif jittery:
            delays[1:] = [breakdown.total_ms for breakdown in jittery]
        if retry_ms:
            # Bit-identical to setting retry_ms on each breakdown: total_ms
            # sums retry last, and x + 0.0 + r == x + r exactly.
            delays += retry_ms

        total_delay = float(delays.sum())
        self.clock.advance(total_delay)
        self._request_counter += n
        counters = self.layer_counters[layer]
        counters.requests += n
        counters.total_execution_ms += deployment.execution_time_ms * n
        counters.total_delay_ms += total_delay
        counters.anomalies_reported += int(predictions.sum())
        counters.redirected += n if redirected else 0
        return BatchDetectionResult(
            layer=int(layer),
            predictions=predictions,
            confidents=confident,
            anomaly_scores=scores,
            delays_ms=delays,
        )

    def _batch_delay_profile(
        self,
        layer: int,
        window_shape: tuple,
        n: int,
        deployment: ModelDeployment,
    ):
        """The single source of per-batch delay computation and link accounting.

        Returns ``(first, steady, jittery)``: the first request's breakdown
        (which may pay connection setup), then either a steady-state
        breakdown the remaining ``n - 1`` requests replicate (jitter-free
        links — the traffic counters for the ``n - 2`` uncomputed transfers
        are advanced in bulk here) or, on jittery links, the per-window
        breakdowns for requests ``1..n-1`` computed in order (``steady`` is
        ``None``) so the per-transfer RNG draws match sequential handling.
        Both the record path (:meth:`detect_batch`) and the columnar path
        (:meth:`detect_batch_columnar`) consume this profile, so the
        invariant cannot drift between them.
        """
        payload = window_payload_bytes(window_shape)
        links = self.topology.links_to(layer)

        def one_breakdown() -> DelayBreakdown:
            return end_to_end_delay(
                self.topology,
                layer,
                execution_ms=deployment.execution_time_ms,
                payload_bytes=payload,
            )

        first = one_breakdown()
        if n == 1:
            return first, None, []
        if any(link.jitter_ms > 0.0 for link in links):
            return first, None, [one_breakdown() for _ in range(n - 1)]
        steady = one_breakdown()
        for link in links:
            link.record_transfers(payload, n - 2)
            link.record_transfers(RESULT_PAYLOAD_BYTES, n - 2)
        return first, steady, None

    def _batch_delay_breakdowns(
        self,
        layer: int,
        window_shape: tuple,
        n: int,
        deployment: ModelDeployment,
    ) -> List[DelayBreakdown]:
        """Per-window delay breakdowns for ``n`` same-shaped requests at ``layer``.

        Materialises one :class:`DelayBreakdown` per request from
        :meth:`_batch_delay_profile` (steady-state breakdowns are replicated
        as copies so escalation merging never aliases).
        """
        first, steady, jittery = self._batch_delay_profile(
            layer, window_shape, n, deployment
        )
        breakdowns = [first]
        if steady is not None:
            breakdowns.append(steady)
            for _ in range(n - 2):
                breakdowns.append(
                    DelayBreakdown(
                        layer=steady.layer,
                        uplink_ms=steady.uplink_ms,
                        execution_ms=steady.execution_ms,
                        downlink_ms=steady.downlink_ms,
                        hops=list(steady.hops),
                    )
                )
        elif jittery:
            breakdowns.extend(jittery)
        return breakdowns

    # -- checkpointing ---------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Picklable mid-run state for the fleet checkpoint layer.

        Captures the clock position (history excluded — nothing downstream of
        a streaming run reads it), the request counter, per-layer counters and
        per-link state.  The deployed models are *not* captured here; the
        adaptation controller snapshots them (a frozen run redeploys the same
        detectors deterministically).
        """
        return {
            "clock_now_ms": float(self.clock.now_ms),
            "request_counter": int(self._request_counter),
            "state_version": int(self.state_version),
            "failover_retries": self._failover_retries,
            "retry_timeout_ms": self._retry_timeout_ms,
            "layer_counters": {
                layer: dict(
                    requests=c.requests,
                    total_execution_ms=c.total_execution_ms,
                    total_delay_ms=c.total_delay_ms,
                    anomalies_reported=c.anomalies_reported,
                    redirected=c.redirected,
                )
                for layer, c in self.layer_counters.items()
            },
            "links": [link.snapshot() for link in self.topology.links],
        }

    def restore_state(self, snapshot: dict) -> None:
        """Restore the state captured by :meth:`snapshot_state`."""
        self.clock.reset()
        self.clock.now_ms = float(snapshot["clock_now_ms"])
        self._request_counter = int(snapshot["request_counter"])
        self.state_version = int(snapshot["state_version"])
        self._failover_retries = int(snapshot["failover_retries"])
        self._retry_timeout_ms = float(snapshot["retry_timeout_ms"])
        self.layer_counters = {
            int(layer): LayerCounters(**counters)
            for layer, counters in snapshot["layer_counters"].items()
        }
        for link, link_snapshot in zip(self.topology.links, snapshot["links"]):
            link.restore(link_snapshot)

    # -- bookkeeping -----------------------------------------------------------------------

    def reset(self) -> None:
        """Clear the event log, counters, clock and link state."""
        self.records.clear()
        self.layer_counters = {layer: LayerCounters() for layer in range(self.n_layers)}
        self.clock.reset()
        self.topology.reset_links()
        self._request_counter = 0

    def layer_usage(self) -> Dict[int, int]:
        """Number of requests handled per layer."""
        return {layer: counters.requests for layer, counters in self.layer_counters.items()}

    def mean_delay_ms(self) -> float:
        """Mean end-to-end delay over all handled requests."""
        if not self.records:
            return 0.0
        return float(np.mean([record.delay_ms for record in self.records]))
