"""Adaptation subsystem: the model lifecycle for streaming fleets.

After PR 3 the fleet engine streams non-stationary traffic (concept drift,
bursts, churn) into detectors that were fitted once and frozen forever.  This
package closes the loop — the production meaning of the paper's *adaptive*
anomaly detection:

* :mod:`repro.adapt.monitors` — bounded-memory drift monitors (Page–Hinkley,
  ADWIN-style mean-shift, a windowed-F1 floor) over per-tier score streams;
* :mod:`repro.adapt.registry` — a content-addressed, versioned model registry
  with lineage metadata and promote/rollback semantics;
* :mod:`repro.adapt.retrainer` — drift-triggered fine-tuning on a reservoir
  of recent clean windows, behind a shadow-evaluation gate;
* :mod:`repro.adapt.deployer` — atomic hot-swap of promoted (optionally
  FP16-quantised) checkpoints into the running HEC system at tick boundaries;
* :mod:`repro.adapt.controller` — the per-tick state machine gluing the four
  together, driven by the fleet engine;
* :mod:`repro.adapt.spec` — the declarative :class:`~repro.adapt.spec.AdaptSpec`
  hanging off :class:`~repro.experiments.spec.ExperimentSpec` as ``adapt``.

The registered ``adapt-1k-drift-recovery`` scenario
(:mod:`repro.adapt.scenarios`) demonstrates the loop end to end: drift
degrades the windowed F1, a monitor fires, the gated retrain hot-swaps a
recalibrated checkpoint, and the online F1 recovers.
"""

from repro.adapt.controller import AdaptationController, build_controller
from repro.adapt.deployer import HotSwapDeployer
from repro.adapt.events import (
    AdaptationTimeline,
    DriftEvent,
    RetrainEvent,
    SwapEvent,
)
from repro.adapt.monitors import (
    MONITOR_KINDS,
    AdwinMonitor,
    F1FloorMonitor,
    PageHinkleyMonitor,
    ScoreMonitor,
    build_monitor,
)
from repro.adapt.registry import ModelRegistry, ModelVersion
from repro.adapt.retrainer import (
    OnlineRetrainer,
    RetrainOutcome,
    WindowReservoir,
    detection_f1,
)
from repro.adapt.spec import AdaptSpec

__all__ = [
    "AdaptSpec",
    "AdaptationController",
    "AdaptationTimeline",
    "AdwinMonitor",
    "DriftEvent",
    "F1FloorMonitor",
    "HotSwapDeployer",
    "MONITOR_KINDS",
    "ModelRegistry",
    "ModelVersion",
    "OnlineRetrainer",
    "PageHinkleyMonitor",
    "RetrainEvent",
    "RetrainOutcome",
    "ScoreMonitor",
    "SwapEvent",
    "WindowReservoir",
    "build_controller",
    "build_monitor",
    "detection_f1",
]
