"""Hot-swap deployment: promoted checkpoints replacing live detectors.

:class:`HotSwapDeployer` performs the paper's deployment step *online*: a
gated candidate is FP16-quantised when its target tier's original deployment
was quantised (the IoT/edge tiers), committed to the
:class:`~repro.adapt.registry.ModelRegistry`, promoted, and swapped into the
running :class:`~repro.hec.simulation.HECSystem` by replacing the tier's
:class:`~repro.hec.deployment.ModelDeployment` detector reference.  The swap
is a single attribute rebind executed between event-clock ticks (the engine
only calls the deployer at tick boundaries), so no in-flight batch ever sees
a half-updated model — the streaming analogue of an atomic blue/green cut.
"""

from __future__ import annotations

from typing import Optional

from repro.adapt.events import SwapEvent
from repro.adapt.registry import ModelRegistry
from repro.detectors.base import AnomalyDetector
from repro.exceptions import ConfigurationError
from repro.hec.simulation import HECSystem
from repro.nn.quantization import QuantizationReport, quantize_model


class HotSwapDeployer:
    """Commit, promote and atomically deploy candidate detectors."""

    def __init__(
        self,
        system: HECSystem,
        registry: ModelRegistry,
        quantize_swapped: bool = True,
    ) -> None:
        self.system = system
        self.registry = registry
        self.quantize_swapped = bool(quantize_swapped)

    def register_incumbents(self, tier_names) -> None:
        """Commit and promote the initially deployed detectors as root versions.

        Gives every tier a rollback target and every later candidate a parent,
        so lineage is complete from the first swap on.
        """
        for layer, tier in enumerate(tier_names):
            deployment = self.system.deployment_at(layer)
            meta = self.registry.commit(
                deployment.detector,
                tier=tier,
                layer=layer,
                parent=None,
                quantization=deployment.quantization,
            )
            if self.registry.current(tier) is None:
                self.registry.promote(meta.version, tier)

    def prepare_candidate(
        self, layer: int, candidate: AnomalyDetector
    ) -> Optional[QuantizationReport]:
        """Put ``candidate`` into its deployable form for ``layer``.

        FP16-quantises the candidate in place when the tier's original
        deployment was quantised (the paper quantises below the cloud).
        Called *before* the shadow gate, so the gate scores exactly the model
        that would serve traffic.  Returns the quantisation report (``None``
        when the tier deploys at full precision).
        """
        if self.quantize_swapped and self.system.deployment_at(layer).quantized:
            return quantize_model(candidate.model)
        return None

    def swap(
        self,
        tick: int,
        layer: int,
        tier: str,
        candidate: AnomalyDetector,
        quantization: Optional[QuantizationReport] = None,
        training_window: Optional[tuple] = None,
        n_train_windows: int = 0,
    ) -> SwapEvent:
        """Deploy ``candidate`` at ``layer``; returns the recorded swap event.

        The candidate must already be in its deployable form (see
        :meth:`prepare_candidate` — ``quantization`` is that call's report).
        It is committed with full lineage metadata, promoted, and swapped
        into the live system.
        """
        deployment = self.system.deployment_at(layer)
        incumbent_version = self.registry.current(tier)
        if incumbent_version is None:
            raise ConfigurationError(
                f"tier {tier!r} has no promoted incumbent; call "
                "register_incumbents() before swapping"
            )

        meta = self.registry.commit(
            candidate,
            tier=tier,
            layer=layer,
            parent=incumbent_version,
            training_window=training_window,
            n_train_windows=n_train_windows,
            quantization=quantization,
        )
        self.registry.promote(meta.version, tier)

        # The atomic cut: one attribute rebind at a tick boundary.  The
        # deployment's quantisation bookkeeping follows the candidate's
        # actual form so the record never describes a replaced model.
        deployment.detector = candidate
        deployment.quantized = quantization is not None
        deployment.quantization = quantization
        # Invalidate any snapshot keyed on the pre-swap model set (the
        # sharded engine's forked worker pools hold copy-on-write state).
        self.system.bump_state_version()
        return SwapEvent(
            tick=int(tick),
            layer=int(layer),
            tier=str(tier),
            from_version=incumbent_version,
            to_version=meta.version,
            quantized=quantization is not None,
        )
