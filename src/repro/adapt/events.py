"""The adaptation timeline: what the lifecycle machinery did, and when.

Three event kinds flow out of the adaptation loop — a monitor detecting drift
(:class:`DriftEvent`), a drift-triggered retraining attempt passing or failing
the shadow-evaluation gate (:class:`RetrainEvent`), and a gated candidate
being hot-swapped into the running system (:class:`SwapEvent`).  They are
collected into an :class:`AdaptationTimeline` that rides on the
:class:`~repro.fleet.report.FleetReport`, so a streaming run's self-healing
behaviour is part of its serialisable result.

Wall-clock timing deliberately stays *out* of these records (mirroring the
fleet report): two runs of the same spec must produce equal timelines, so the
benchmark harness measures retrain/swap latency separately.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.utils.serialization import to_jsonable


@dataclass(frozen=True)
class DriftEvent:
    """One monitor deciding that a tier's score stream has shifted."""

    tick: int
    layer: int
    tier: str
    monitor: str
    #: The statistic that crossed the monitor's threshold.
    statistic: float
    threshold: float

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DriftEvent":
        return cls(**dict(payload))


@dataclass(frozen=True)
class RetrainEvent:
    """One drift-triggered fine-tuning attempt and its gate decision."""

    tick: int
    layer: int
    tier: str
    #: Windows the candidate was fine-tuned on (reservoir snapshot size).
    n_train_windows: int
    #: Labelled holdout windows the shadow gate scored both models on.
    n_holdout_windows: int
    incumbent_f1: float
    candidate_f1: float
    #: Whether the candidate beat the incumbent and was promoted.
    accepted: bool
    #: Registry version of the candidate (``None`` when the gate rejected it).
    candidate_version: Optional[str] = None

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RetrainEvent":
        return cls(**dict(payload))


@dataclass(frozen=True)
class SwapEvent:
    """A promoted checkpoint atomically replacing a tier's detector."""

    tick: int
    layer: int
    tier: str
    from_version: str
    to_version: str
    #: Whether the deployed candidate was FP16-quantised (IoT/edge tiers).
    quantized: bool

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SwapEvent":
        return cls(**dict(payload))


@dataclass(frozen=True)
class AdaptationTimeline:
    """Everything the adaptation loop did during one streaming run."""

    drifts: Tuple[DriftEvent, ...] = ()
    retrains: Tuple[RetrainEvent, ...] = ()
    swaps: Tuple[SwapEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "drifts", tuple(self.drifts))
        object.__setattr__(self, "retrains", tuple(self.retrains))
        object.__setattr__(self, "swaps", tuple(self.swaps))

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready nested dictionary."""
        return to_jsonable(dataclasses.asdict(self))

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AdaptationTimeline":
        kwargs = dict(payload)
        unknown = sorted(set(kwargs) - {f.name for f in dataclasses.fields(cls)})
        if unknown:
            raise ConfigurationError(
                f"unknown key(s) {unknown} in adaptation timeline payload"
            )
        return cls(
            drifts=tuple(
                e if isinstance(e, DriftEvent) else DriftEvent.from_dict(e)
                for e in kwargs.get("drifts", ())
            ),
            retrains=tuple(
                e if isinstance(e, RetrainEvent) else RetrainEvent.from_dict(e)
                for e in kwargs.get("retrains", ())
            ),
            swaps=tuple(
                e if isinstance(e, SwapEvent) else SwapEvent.from_dict(e)
                for e in kwargs.get("swaps", ())
            ),
        )
