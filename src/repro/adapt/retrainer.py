"""Online retraining: drift-triggered fine-tuning behind a shadow gate.

Two pieces live here:

* :class:`WindowReservoir` — a bounded uniform sample (Vitter's algorithm R,
  the same scheme as the fleet's
  :class:`~repro.fleet.metrics.DelayReservoir`) over a stream of windows,
  optionally keeping labels.  The retrainer feeds one reservoir per tier
  with recent *clean* windows (the delayed-label audit stream the F1 monitor
  already relies on) and a labelled holdout reservoir for gate evaluation.
* :class:`OnlineRetrainer` — given a drift signal, deep-copies the incumbent
  detector, fine-tunes it on the reservoir snapshot with early stopping,
  refits the scorer on the same recent windows (recalibrating the detection
  threshold to the drifted distribution), and shadow-evaluates candidate vs
  incumbent on the held-out labelled slice.  Only a candidate that beats the
  incumbent's F1 is handed to the deployer.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.detectors.base import AnomalyDetector
from repro.exceptions import ConfigurationError
from repro.fleet.metrics import confusion_counts, rates_from_confusion


class WindowReservoir:
    """Bounded uniform sample of a window stream (algorithm R), with labels."""

    def __init__(self, capacity: int, seed_entropy: Sequence[int]) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"reservoir capacity must be positive, got {capacity}"
            )
        self.capacity = int(capacity)
        self.windows: List[np.ndarray] = []
        self.labels: List[int] = []
        self.seen = 0
        self._rng = np.random.default_rng(
            np.random.SeedSequence([int(e) & 0xFFFFFFFF for e in seed_entropy])
        )

    def __len__(self) -> int:
        return len(self.windows)

    def add(self, window: np.ndarray, label: int = 0) -> None:
        """Offer one window (with its label) to the reservoir."""
        self.seen += 1
        if len(self.windows) < self.capacity:
            self.windows.append(np.asarray(window, dtype=float))
            self.labels.append(int(label))
            return
        slot = int(self._rng.integers(self.seen))
        if slot < self.capacity:
            self.windows[slot] = np.asarray(window, dtype=float)
            self.labels[slot] = int(label)

    def extend(self, windows: np.ndarray, labels: Sequence[int]) -> None:
        """Offer a batch of windows in order."""
        for window, label in zip(windows, labels):
            self.add(window, label)

    def snapshot(self) -> Tuple[np.ndarray, np.ndarray]:
        """The sampled (windows, labels) arrays, in reservoir slot order."""
        if not self.windows:
            raise ConfigurationError("cannot snapshot an empty reservoir")
        return np.stack(self.windows), np.asarray(self.labels, dtype=int)


def detection_f1(detector: AnomalyDetector, windows: np.ndarray,
                 labels: np.ndarray) -> float:
    """Windowed detection F1 of ``detector`` on a labelled holdout slice."""
    predictions = detector.predict(windows)
    return rates_from_confusion(confusion_counts(predictions, labels))["f1"]


@dataclass
class RetrainOutcome:
    """What one fine-tuning attempt produced."""

    candidate: AnomalyDetector
    incumbent_f1: float
    candidate_f1: float
    accepted: bool
    n_train_windows: int
    n_holdout_windows: int


class OnlineRetrainer:
    """Fine-tune an incumbent detector on recent clean windows, behind a gate."""

    def __init__(
        self,
        epochs: int = 5,
        batch_size: int = 16,
        learning_rate: float = 1e-3,
        min_improvement: float = 0.0,
    ) -> None:
        if epochs <= 0 or batch_size <= 0:
            raise ConfigurationError(
                f"epochs and batch_size must be positive, got {epochs}/{batch_size}"
            )
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.min_improvement = float(min_improvement)

    def fine_tune(
        self,
        incumbent: AnomalyDetector,
        train_windows: np.ndarray,
    ) -> AnomalyDetector:
        """A candidate: the incumbent deep-copied and fine-tuned on recent data.

        ``fit`` continues from the incumbent's weights (warm start) and refits
        the Gaussian scorer — and thereby the detection threshold — on the
        drifted window sample, which is what recalibrates the false-positive
        rate after a distribution shift.  The incumbent itself is untouched
        and keeps serving traffic until the deployer swaps.
        """
        candidate = copy.deepcopy(incumbent)
        candidate.fit(
            np.asarray(train_windows, dtype=float),
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            early_stopping_patience=2,
        )
        return candidate

    def evaluate(
        self,
        candidate: AnomalyDetector,
        incumbent: AnomalyDetector,
        holdout_windows: np.ndarray,
        holdout_labels: np.ndarray,
        n_train_windows: int = 0,
    ) -> RetrainOutcome:
        """The shadow gate: score both models on the labelled holdout slice.

        ``candidate`` must already be in its *deployable* form — the
        controller FP16-quantises it before calling this, so the gate judges
        exactly the model that would serve traffic, not a higher-precision
        sibling of it.
        """
        incumbent_f1 = detection_f1(incumbent, holdout_windows, holdout_labels)
        candidate_f1 = detection_f1(candidate, holdout_windows, holdout_labels)
        return RetrainOutcome(
            candidate=candidate,
            incumbent_f1=incumbent_f1,
            candidate_f1=candidate_f1,
            accepted=candidate_f1 > incumbent_f1 + self.min_improvement,
            n_train_windows=int(n_train_windows),
            n_holdout_windows=int(np.asarray(holdout_windows).shape[0]),
        )

    def attempt(
        self,
        incumbent: AnomalyDetector,
        train_windows: np.ndarray,
        holdout_windows: np.ndarray,
        holdout_labels: np.ndarray,
    ) -> RetrainOutcome:
        """Fine-tune and shadow-evaluate; ``accepted`` is the gate decision.

        Convenience composition of :meth:`fine_tune` and :meth:`evaluate` for
        unquantised deployments; the controller drives the two halves
        separately so deployment-form quantisation can happen in between.
        """
        candidate = self.fine_tune(incumbent, train_windows)
        return self.evaluate(
            candidate,
            incumbent,
            holdout_windows,
            holdout_labels,
            n_train_windows=int(np.asarray(train_windows).shape[0]),
        )
