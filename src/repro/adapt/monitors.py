"""Drift monitors: bounded-memory online change tests over streaming scores.

Each monitor watches one tier's score stream (per-tick mean reconstruction
badness, or windowed detection F1) and emits a
:class:`~repro.adapt.events.DriftEvent` when the stream shifts.  Three tests
are implemented:

* :class:`PageHinkleyMonitor` — the classic Page–Hinkley cumulative-deviation
  test: O(1) memory, sensitive to sustained mean increases;
* :class:`AdwinMonitor` — an ADWIN-style adaptive-window mean-shift test: a
  bounded window of recent values, every split point checked against a
  Hoeffding-like cut; detects both abrupt and gradual shifts and drops the
  stale half on detection;
* :class:`F1FloorMonitor` — a detection-quality floor over the engine's
  windowed confusion blocks: fires when windowed F1 drops below a fraction of
  the baseline established over the first healthy blocks.

Monitors are deliberately free of any retraining logic — they only *observe*
and *signal*; the :class:`~repro.adapt.controller.AdaptationController`
decides what to do with a signal.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

import numpy as np

from repro.adapt.events import DriftEvent
from repro.exceptions import ConfigurationError

#: Monitor kinds understood by :func:`build_monitor` and the adapt spec.
MONITOR_KINDS = ("page-hinkley", "adwin", "f1-floor")


class ScoreMonitor:
    """Base class: consume one score per update, maybe emit a drift event."""

    #: Kind string used in emitted events (set by subclasses).
    kind = "score-monitor"

    def __init__(self, layer: int, tier: str) -> None:
        self.layer = int(layer)
        self.tier = str(tier)

    def update(self, tick: int, value: float) -> Optional[DriftEvent]:
        """Fold one observation in; returns an event when drift is detected."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget all state (called after the tier's detector is swapped)."""
        raise NotImplementedError

    def _event(self, tick: int, statistic: float, threshold: float) -> DriftEvent:
        return DriftEvent(
            tick=int(tick),
            layer=self.layer,
            tier=self.tier,
            monitor=self.kind,
            statistic=float(statistic),
            threshold=float(threshold),
        )


class PageHinkleyMonitor(ScoreMonitor):
    """Page–Hinkley test for a sustained increase of the stream mean.

    Maintains the running mean and the cumulative deviation
    ``m_t = sum(x_i - mean_i - delta)``; drift is signalled when
    ``m_t - min(m_1..m_t)`` exceeds ``threshold``.  ``min_observations``
    updates must accumulate before the test can fire, so the baseline mean
    forms on healthy traffic.
    """

    kind = "page-hinkley"

    def __init__(
        self,
        layer: int,
        tier: str,
        delta: float = 0.005,
        threshold: float = 1.0,
        min_observations: int = 8,
    ) -> None:
        super().__init__(layer, tier)
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be positive, got {threshold}")
        if min_observations < 2:
            raise ConfigurationError(
                f"min_observations must be at least 2, got {min_observations}"
            )
        self.delta = float(delta)
        self.threshold = float(threshold)
        self.min_observations = int(min_observations)
        self.reset()

    def reset(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.cumulative = 0.0
        self.minimum = 0.0

    def update(self, tick: int, value: float) -> Optional[DriftEvent]:
        value = float(value)
        self.n += 1
        self.mean += (value - self.mean) / self.n
        self.cumulative += value - self.mean - self.delta
        self.minimum = min(self.minimum, self.cumulative)
        statistic = self.cumulative - self.minimum
        if self.n >= self.min_observations and statistic > self.threshold:
            event = self._event(tick, statistic, self.threshold)
            self.reset()
            return event
        return None


class AdwinMonitor(ScoreMonitor):
    """ADWIN-style adaptive-window mean-shift test over a bounded deque.

    Keeps the most recent ``capacity`` values; on every update each split of
    the window into (old, recent) halves with at least ``min_split`` values on
    both sides is tested: drift is signalled when the absolute difference of
    the sub-window means exceeds an (epsilon-cut) bound derived from the
    pooled variance, scaled by ``sensitivity``.  On detection the stale prefix
    is dropped, so the window re-adapts to the new regime.
    """

    kind = "adwin"

    def __init__(
        self,
        layer: int,
        tier: str,
        capacity: int = 64,
        sensitivity: float = 3.0,
        min_split: int = 6,
    ) -> None:
        super().__init__(layer, tier)
        if capacity < 2 * min_split:
            raise ConfigurationError(
                f"capacity ({capacity}) must be at least twice min_split ({min_split})"
            )
        if sensitivity <= 0:
            raise ConfigurationError(f"sensitivity must be positive, got {sensitivity}")
        self.capacity = int(capacity)
        self.sensitivity = float(sensitivity)
        self.min_split = int(min_split)
        self.window: Deque[float] = deque(maxlen=self.capacity)

    def reset(self) -> None:
        self.window.clear()

    def update(self, tick: int, value: float) -> Optional[DriftEvent]:
        self.window.append(float(value))
        n = len(self.window)
        if n < 2 * self.min_split:
            return None
        values = np.asarray(self.window, dtype=float)
        variance = float(values.var())
        if variance == 0.0:
            return None
        prefix = np.cumsum(values)
        total = prefix[-1]
        for cut in range(self.min_split, n - self.min_split + 1):
            n_old, n_new = cut, n - cut
            mean_old = prefix[cut - 1] / n_old
            mean_new = (total - prefix[cut - 1]) / n_new
            harmonic = 1.0 / (1.0 / n_old + 1.0 / n_new)
            epsilon = self.sensitivity * np.sqrt(variance / harmonic)
            gap = abs(mean_new - mean_old)
            if gap > epsilon:
                event = self._event(tick, gap, float(epsilon))
                # Drop the stale prefix: the window keeps only the new regime.
                for _ in range(cut):
                    self.window.popleft()
                return event
        return None


class F1FloorMonitor(ScoreMonitor):
    """Detection-quality floor over windowed F1 blocks.

    The first ``baseline_windows`` F1 values establish the healthy baseline
    (their mean); every later block whose F1 falls below
    ``floor_fraction * baseline`` signals drift.  Updates are per *metrics
    window*, not per tick, so this monitor reuses the engine's existing
    windowed confusion blocks.
    """

    kind = "f1-floor"

    def __init__(
        self,
        layer: int,
        tier: str,
        floor_fraction: float = 0.7,
        baseline_windows: int = 2,
    ) -> None:
        super().__init__(layer, tier)
        if not 0.0 < floor_fraction < 1.0:
            raise ConfigurationError(
                f"floor_fraction must lie in (0, 1), got {floor_fraction}"
            )
        if baseline_windows < 1:
            raise ConfigurationError(
                f"baseline_windows must be positive, got {baseline_windows}"
            )
        self.floor_fraction = float(floor_fraction)
        self.baseline_windows = int(baseline_windows)
        self.reset()

    def reset(self) -> None:
        self._baseline_values: List[float] = []
        self.baseline: Optional[float] = None

    def update(self, tick: int, value: float) -> Optional[DriftEvent]:
        value = float(value)
        if self.baseline is None:
            self._baseline_values.append(value)
            if len(self._baseline_values) >= self.baseline_windows:
                self.baseline = float(np.mean(self._baseline_values))
            return None
        floor = self.floor_fraction * self.baseline
        if value < floor:
            event = self._event(tick, value, floor)
            # Keep the baseline: repeated sub-floor blocks keep signalling
            # until the controller's cooldown gives a retrain a chance to land.
            return event
        return None


def build_monitor(kind: str, layer: int, tier: str, **kwargs) -> ScoreMonitor:
    """Construct one monitor by kind string (see :data:`MONITOR_KINDS`)."""
    if kind == "page-hinkley":
        return PageHinkleyMonitor(layer, tier, **kwargs)
    if kind == "adwin":
        return AdwinMonitor(layer, tier, **kwargs)
    if kind == "f1-floor":
        return F1FloorMonitor(layer, tier, **kwargs)
    raise ConfigurationError(
        f"monitor kind must be one of {MONITOR_KINDS}, got {kind!r}"
    )
