"""The adaptation controller: monitor -> retrain -> gate -> swap, per tick.

:class:`AdaptationController` is the object the streaming engine talks to.
Per tick it ingests every detected batch (windows, predictions, labels and
anomaly scores, per tier), feeds the drift monitors and the retraining
reservoirs, and at the tick boundary runs the lifecycle state machine:

1. a monitor fires -> the tier is marked *pending*;
2. a pending tier outside its cooldown, with enough reservoir fill, gets a
   drift-triggered fine-tune on the recent clean-window sample;
3. the candidate must beat the incumbent's F1 on the labelled holdout slice
   (the shadow gate) — rejected candidates are recorded and discarded;
4. an accepted candidate is quantised like its tier's original deployment,
   committed to the registry, promoted and hot-swapped into the live system;
   the tier's monitors reset so the new model gets a fresh baseline.

Everything the controller does is recorded in an
:class:`~repro.adapt.events.AdaptationTimeline`; wall-clock retrain/swap
latencies are kept separately in :attr:`AdaptationController.timings` so the
timeline (and the fleet report carrying it) stays timing-free and
deterministic.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.adapt.deployer import HotSwapDeployer
from repro.adapt.events import AdaptationTimeline, DriftEvent, RetrainEvent
from repro.adapt.monitors import ScoreMonitor, build_monitor
from repro.adapt.registry import ModelRegistry
from repro.adapt.retrainer import OnlineRetrainer, WindowReservoir
from repro.adapt.spec import AdaptSpec
from repro.hec.simulation import HECSystem

#: SeedSequence entropy tags separating the train/holdout reservoir streams.
_TRAIN_TAG = 0xAD01
_HOLDOUT_TAG = 0xAD02

#: Bucket bounds for the retrain/swap duration histograms (seconds).
_SECONDS_BUCKETS = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0,
)


@dataclass
class RetrainTiming:
    """Wall-clock cost of one retrain attempt (kept out of the timeline)."""

    tick: int
    tier: str
    retrain_seconds: float
    swap_seconds: float
    accepted: bool


class AdaptationController:
    """Drive the model lifecycle against a live HEC system."""

    def __init__(
        self,
        spec: AdaptSpec,
        system: HECSystem,
        tier_names: Sequence[str],
        metrics_window: int,
        master_seed: int = 0,
        registry_root: Optional[str] = None,
    ) -> None:
        self.spec = spec
        self.system = system
        self.tier_names = tuple(tier_names)
        self.metrics_window = int(metrics_window)
        self.master_seed = int(master_seed)
        root = registry_root or spec.registry_dir
        self._tmpdir = None
        if root is None:
            # Genuinely run-scoped: the directory (and its checkpoint
            # archives) is removed when the controller is garbage collected
            # or the interpreter exits, so anonymous runs do not leak weights
            # into the system temp dir.
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-model-registry-")
            root = self._tmpdir.name
        self.registry = ModelRegistry(root)
        self.deployer = HotSwapDeployer(
            system, self.registry, quantize_swapped=spec.quantize_swapped
        )
        self.deployer.register_incumbents(self.tier_names)
        self.retrainer = OnlineRetrainer(
            epochs=spec.retrain_epochs,
            batch_size=spec.retrain_batch_size,
            learning_rate=spec.retrain_learning_rate,
            min_improvement=spec.min_improvement,
        )

        n_layers = len(self.tier_names)
        entropy = (self.master_seed, spec.seed)
        self.train_reservoirs = [
            WindowReservoir(spec.reservoir_size, (*entropy, _TRAIN_TAG, layer))
            for layer in range(n_layers)
        ]
        self.holdout_reservoirs = [
            WindowReservoir(spec.holdout_size, (*entropy, _HOLDOUT_TAG, layer))
            for layer in range(n_layers)
        ]
        # Per-tier score/F1 monitors ("f1-floor" consumes windowed confusion
        # blocks; the others consume the per-tick mean score stream).
        self.score_monitors: List[List[ScoreMonitor]] = []
        self.f1_monitors: List[List[ScoreMonitor]] = []
        for layer, tier in enumerate(self.tier_names):
            per_tick: List[ScoreMonitor] = []
            per_window: List[ScoreMonitor] = []
            for kind in spec.monitors:
                monitor = self._build_monitor(kind, layer, tier)
                (per_window if kind == "f1-floor" else per_tick).append(monitor)
            self.score_monitors.append(per_tick)
            self.f1_monitors.append(per_window)

        #: Per-tier [tp, fp, tn, fn] counts of the metrics window in progress.
        self._window_confusion = np.zeros((n_layers, 4), dtype=np.int64)
        #: Tick range (start, end) covered by each tier's train reservoir.
        self._train_ranges: List[Optional[List[int]]] = [None] * n_layers
        self._pending: set = set()
        self._cooldown_until = [0] * n_layers

        self.drifts: List[DriftEvent] = []
        self.retrains: List[RetrainEvent] = []
        self.swaps: List = []
        self.timings: List[RetrainTiming] = []
        #: Optional :class:`~repro.obs.export.Telemetry` session (the engine
        #: binds it for telemetry-enabled runs).  Read via one ``is None``
        #: check per lifecycle decision — never inside the per-batch hook.
        self.telemetry = None

    def _build_monitor(self, kind: str, layer: int, tier: str) -> ScoreMonitor:
        spec = self.spec
        if kind == "page-hinkley":
            return build_monitor(
                kind, layer, tier, delta=spec.ph_delta, threshold=spec.ph_threshold
            )
        if kind == "adwin":
            return build_monitor(
                kind, layer, tier,
                capacity=spec.adwin_capacity, sensitivity=spec.adwin_sensitivity,
            )
        return build_monitor(
            kind, layer, tier,
            floor_fraction=spec.f1_floor_fraction,
            baseline_windows=spec.f1_baseline_windows,
        )

    # -- ingestion ---------------------------------------------------------------

    def observe_batch(
        self,
        tick: int,
        layer: int,
        windows: np.ndarray,
        predictions: np.ndarray,
        labels: np.ndarray,
        scores: np.ndarray,
    ) -> None:
        """Fold one detected batch (one tier within one tick) into the loop.

        ``scores`` are the per-window anomaly scores (minimum logPD — lower
        means the window reconstructs worse); their negated mean is the
        tier's per-tick "reconstruction badness" stream the Page–Hinkley and
        ADWIN monitors watch.  Labels play the delayed-label audit role:
        label-0 windows feed the clean retraining reservoir, every labelled
        window feeds the holdout slice the shadow gate scores against.

        The hook is array-in/array-out all the way down (the streaming fast
        path hands it the engine's columnar arrays directly): confusion
        folding, reservoir feeding and the monitor stream build no
        intermediate per-window structures.
        """
        from repro.fleet.metrics import confusion_counts

        predictions = np.asarray(predictions, dtype=int)
        labels = np.asarray(labels, dtype=int)
        self._window_confusion[layer] += confusion_counts(predictions, labels)

        clean = np.flatnonzero(labels == 0)
        if clean.size:
            self.train_reservoirs[layer].extend(windows[clean], labels[clean])
            tick_range = self._train_ranges[layer]
            if tick_range is None:
                self._train_ranges[layer] = [int(tick), int(tick)]
            else:
                tick_range[1] = int(tick)
        self.holdout_reservoirs[layer].extend(windows, labels)

        if scores.size:
            badness = float(-np.mean(scores))
            for monitor in self.score_monitors[layer]:
                self._record(tick, monitor.update(tick, badness))

    def _record(self, tick: int, event: Optional[DriftEvent]) -> None:
        if event is None or tick < self.spec.warmup_ticks:
            return
        self.drifts.append(event)
        self._pending.add(event.layer)
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.registry.counter(
                "adapt_drift_total",
                "Drift detections by monitor kind.",
                labelnames=("monitor",),
            ).labels(monitor=event.monitor).value += 1
            telemetry.event(
                "adapt.drift",
                tick=event.tick,
                tier=event.tier,
                monitor=event.monitor,
                statistic=event.statistic,
                threshold=event.threshold,
            )

    # -- tick boundary -----------------------------------------------------------

    def end_tick(self, tick: int) -> None:
        """Run the lifecycle state machine at the tick boundary."""
        self._feed_f1_monitors(tick)
        for layer in sorted(self._pending):
            if tick < self._cooldown_until[layer]:
                continue
            if len(self.train_reservoirs[layer]) < self.spec.min_retrain_windows:
                continue
            self._pending.discard(layer)
            self._cooldown_until[layer] = tick + 1 + self.spec.cooldown_ticks
            self._retrain(tick, layer)

    def _feed_f1_monitors(self, tick: int) -> None:
        if (tick + 1) % self.metrics_window != 0:
            return
        from repro.fleet.metrics import rates_from_confusion

        for layer in range(len(self.tier_names)):
            counts = self._window_confusion[layer]
            if counts.sum():
                f1 = rates_from_confusion(counts)["f1"]
                for monitor in self.f1_monitors[layer]:
                    self._record(tick, monitor.update(tick, f1))
        self._window_confusion[:] = 0

    def _retrain(self, tick: int, layer: int) -> None:
        telemetry = self.telemetry
        if telemetry is not None and telemetry.trace_enabled:
            # One span per lifecycle attempt links the triggering drift to
            # the gate verdict and (when accepted) the hot-swap; activating
            # it stamps the adapt.gate/adapt.swap events with its ids.
            span = telemetry.tracer.start_span(
                "adapt.retrain", tick=int(tick), tier=self.tier_names[layer]
            )
            with telemetry.tracer.activate(span):
                self._retrain_impl(tick, layer, span)
        else:
            self._retrain_impl(tick, layer, None)

    def _retrain_impl(self, tick: int, layer: int, span) -> None:
        tier = self.tier_names[layer]
        telemetry = self.telemetry
        incumbent = self.system.deployment_at(layer).detector
        train_windows, _ = self.train_reservoirs[layer].snapshot()
        holdout_windows, holdout_labels = self.holdout_reservoirs[layer].snapshot()

        started = time.perf_counter()
        # Fine-tune, then put the candidate into its deployable form (FP16 on
        # quantised tiers) *before* the gate — the gate must judge exactly
        # the model that would serve traffic.
        candidate = self.retrainer.fine_tune(incumbent, train_windows)
        quantization = self.deployer.prepare_candidate(layer, candidate)
        outcome = self.retrainer.evaluate(
            candidate,
            incumbent,
            holdout_windows,
            holdout_labels,
            n_train_windows=train_windows.shape[0],
        )
        retrain_seconds = time.perf_counter() - started

        candidate_version = None
        swap_seconds = 0.0
        if outcome.accepted:
            started = time.perf_counter()
            tick_range = self._train_ranges[layer]
            swap = self.deployer.swap(
                tick=tick,
                layer=layer,
                tier=tier,
                candidate=outcome.candidate,
                quantization=quantization,
                training_window=tuple(tick_range) if tick_range else None,
                n_train_windows=outcome.n_train_windows,
            )
            swap_seconds = time.perf_counter() - started
            candidate_version = swap.to_version
            self.swaps.append(swap)
            if telemetry is not None:
                telemetry.registry.counter(
                    "adapt_swaps_total", "Gated candidates hot-swapped live."
                ).inc()
                telemetry.registry.histogram(
                    "adapt_swap_seconds",
                    "Hot-swap (commit + promote + rebind) latency.",
                    buckets=_SECONDS_BUCKETS,
                ).observe(swap_seconds)
                telemetry.event(
                    "adapt.swap",
                    tick=int(tick),
                    tier=tier,
                    from_version=swap.from_version,
                    to_version=swap.to_version,
                )
            # The new model gets fresh monitor baselines.
            for monitor in self.score_monitors[layer] + self.f1_monitors[layer]:
                monitor.reset()

        self.retrains.append(
            RetrainEvent(
                tick=int(tick),
                layer=int(layer),
                tier=tier,
                n_train_windows=outcome.n_train_windows,
                n_holdout_windows=outcome.n_holdout_windows,
                incumbent_f1=outcome.incumbent_f1,
                candidate_f1=outcome.candidate_f1,
                accepted=outcome.accepted,
                candidate_version=candidate_version,
            )
        )
        self.timings.append(
            RetrainTiming(
                tick=int(tick),
                tier=tier,
                retrain_seconds=retrain_seconds,
                swap_seconds=swap_seconds,
                accepted=outcome.accepted,
            )
        )
        if telemetry is not None:
            accepted = "true" if outcome.accepted else "false"
            telemetry.registry.counter(
                "adapt_retrains_total",
                "Retrain attempts by gate verdict.",
                labelnames=("accepted",),
            ).labels(accepted=accepted).value += 1
            telemetry.registry.histogram(
                "adapt_retrain_seconds",
                "Fine-tune + shadow-gate latency.",
                buckets=_SECONDS_BUCKETS,
            ).observe(retrain_seconds)
            telemetry.event(
                "adapt.gate",
                tick=int(tick),
                tier=tier,
                accepted=outcome.accepted,
                incumbent_f1=outcome.incumbent_f1,
                candidate_f1=outcome.candidate_f1,
            )
            if span is not None:
                span.end(accepted=outcome.accepted)

    # -- checkpointing -----------------------------------------------------------

    def snapshot_state(self) -> Dict[str, object]:
        """Picklable mid-run state for the fleet checkpoint layer.

        Captures everything the lifecycle state machine needs to continue
        bit-identically: the reservoirs and monitors (whole objects — their
        internal RNG/statistics are mid-stream), the pending/cooldown machine,
        the recorded timeline, and for each tier the *currently deployed*
        detector plus its registry lineage metadata.  The controller object
        itself is never pickled (it owns an unpicklable run-scoped temporary
        directory); the engine stores this snapshot instead.
        """
        deployments = []
        for layer, tier in enumerate(self.tier_names):
            deployment = self.system.deployment_at(layer)
            current = self.registry.current(tier)
            deployments.append(
                {
                    "tier": tier,
                    "detector": deployment.detector,
                    "quantized": deployment.quantized,
                    "quantization": deployment.quantization,
                    "version": self.registry.show(current) if current else None,
                }
            )
        return {
            "window_confusion": self._window_confusion.copy(),
            "train_ranges": [
                list(r) if r is not None else None for r in self._train_ranges
            ],
            "pending": set(self._pending),
            "cooldown_until": list(self._cooldown_until),
            "drifts": list(self.drifts),
            "retrains": list(self.retrains),
            "swaps": list(self.swaps),
            "timings": list(self.timings),
            "train_reservoirs": self.train_reservoirs,
            "holdout_reservoirs": self.holdout_reservoirs,
            "score_monitors": self.score_monitors,
            "f1_monitors": self.f1_monitors,
            "deployments": deployments,
        }

    def restore_state(self, snapshot: Dict[str, object]) -> None:
        """Restore the state captured by :meth:`snapshot_state`.

        Rebinds the checkpointed detectors into the live system's deployments
        and reconciles the registry: each restored detector is re-committed
        (commits are content-addressed and idempotent) and must hash to the
        exact version recorded at checkpoint time — a mismatch means the
        pickled weights do not match the lineage metadata and resuming would
        silently diverge, so it raises
        :class:`~repro.exceptions.SerializationError`.  Promotion is skipped
        when the registry (a persistent one that survived the crash) already
        has the version current.
        """
        from repro.exceptions import SerializationError
        from repro.nn.quantization import QuantizationReport

        deployments = snapshot["deployments"]
        tiers = tuple(entry["tier"] for entry in deployments)
        if tiers != self.tier_names:
            raise SerializationError(
                f"checkpointed controller served tiers {tiers}, this run serves "
                f"{self.tier_names}"
            )
        self._window_confusion = np.array(snapshot["window_confusion"], dtype=np.int64)
        self._train_ranges = [
            list(r) if r is not None else None for r in snapshot["train_ranges"]
        ]
        self._pending = set(snapshot["pending"])
        self._cooldown_until = list(snapshot["cooldown_until"])
        self.drifts = list(snapshot["drifts"])
        self.retrains = list(snapshot["retrains"])
        self.swaps = list(snapshot["swaps"])
        self.timings = list(snapshot["timings"])
        self.train_reservoirs = list(snapshot["train_reservoirs"])
        self.holdout_reservoirs = list(snapshot["holdout_reservoirs"])
        self.score_monitors = [list(group) for group in snapshot["score_monitors"]]
        self.f1_monitors = [list(group) for group in snapshot["f1_monitors"]]

        for layer, entry in enumerate(deployments):
            deployment = self.system.deployment_at(layer)
            deployment.detector = entry["detector"]
            deployment.quantized = bool(entry["quantized"])
            deployment.quantization = entry["quantization"]
            meta = entry["version"]
            if meta is None:
                continue
            quantization = None
            if meta.quantization is not None:
                quantization = QuantizationReport(
                    parameter_count=meta.quantization["parameter_count"],
                    original_bytes=meta.quantization["original_bytes"],
                    quantized_bytes=meta.quantization["quantized_bytes"],
                    max_absolute_error=meta.quantization["max_absolute_error"],
                )
            committed = self.registry.commit(
                entry["detector"],
                tier=entry["tier"],
                layer=layer,
                parent=meta.parent,
                training_window=meta.training_window,
                n_train_windows=meta.n_train_windows,
                quantization=quantization,
            )
            if committed.version != meta.version:
                raise SerializationError(
                    f"restored detector for tier {entry['tier']!r} hashes to "
                    f"{committed.version}, but the checkpoint recorded "
                    f"{meta.version} — weights and lineage disagree"
                )
            if self.registry.current(entry["tier"]) != meta.version:
                self.registry.promote(meta.version, entry["tier"])
        # No bump_state_version() here: the engine restores the system's
        # checkpointed state_version (already post-swap) around this call.

    # -- result ------------------------------------------------------------------

    @property
    def registry_is_ephemeral(self) -> bool:
        """Whether the registry lives in the run-scoped temporary directory."""
        return self._tmpdir is not None

    def timeline(self) -> AdaptationTimeline:
        """The (deterministic, timing-free) record of what the loop did."""
        return AdaptationTimeline(
            drifts=tuple(self.drifts),
            retrains=tuple(self.retrains),
            swaps=tuple(self.swaps),
        )


def build_controller(
    spec: AdaptSpec,
    system: HECSystem,
    tier_names: Sequence[str],
    metrics_window: int,
    master_seed: int = 0,
    registry_root: Optional[str] = None,
) -> AdaptationController:
    """Construct the controller for one streaming run (convenience factory)."""
    return AdaptationController(
        spec=spec,
        system=system,
        tier_names=tier_names,
        metrics_window=metrics_window,
        master_seed=master_seed,
        registry_root=registry_root,
    )
