"""Built-in adaptation scenario: drift, degradation, gated recovery.

``adapt-1k-drift-recovery`` is the fleet-1k-drift workload with the model
lifecycle switched on: a thousand power-metering devices drift away from the
training distribution, the deployed detectors' windowed F1 collapses under
false positives, a drift monitor fires, the affected tier is fine-tuned on a
reservoir of recent clean windows, the candidate passes the shadow gate and
is hot-swapped (FP16-quantised below the cloud) — after which the windowed
online F1 recovers.  The recovery contract (post-swap F1 strictly above the
trough and within 10% of the pre-drift level, deterministically under a
fixed seed) is pinned by the tests and recorded by
``benchmarks/bench_adapt.py``.

The module is imported (and thereby registered) by :mod:`repro.experiments`,
next to the offline and fleet built-ins.
"""

from __future__ import annotations

from dataclasses import replace

from repro.adapt.spec import AdaptSpec
from repro.experiments.registry import register_scenario
from repro.experiments.scenarios import univariate_power
from repro.experiments.spec import ExperimentSpec
from repro.fleet.spec import FleetSpec, MutatorSpec


@register_scenario("adapt-1k-drift-recovery", tags=("fleet", "adapt", "extended"))
def adapt_1k_drift_recovery() -> ExperimentSpec:
    """1000 drifting devices with drift-triggered retraining and hot-swap."""
    return replace(
        univariate_power(),
        name="adapt-1k-drift-recovery",
        description=(
            "thousand-device power fleet under concept drift with the "
            "adaptation loop closed: monitors catch the F1 collapse, a gated "
            "online retrain hot-swaps a recalibrated checkpoint and the "
            "windowed F1 recovers to near its pre-drift level"
        ),
        fleet=FleetSpec(
            n_devices=1000,
            ticks=48,
            arrival_rate=0.2,
            anomaly_rate=0.08,
            metrics_window=4,
            # The stream shifts to a new regime: drift ramps up and plateaus
            # at tick 20, so a recalibrated checkpoint can actually converge.
            mutators=(
                MutatorSpec(
                    kind="concept-drift",
                    drift_per_tick=0.06,
                    drift_saturation_tick=20,
                ),
            ),
        ),
        adapt=AdaptSpec(
            monitors=("page-hinkley", "f1-floor"),
            ph_delta=0.01,
            ph_threshold=4.0,
            f1_floor_fraction=0.7,
            f1_baseline_windows=2,
            warmup_ticks=8,
            cooldown_ticks=12,
            reservoir_size=256,
            holdout_size=192,
            min_retrain_windows=48,
            retrain_epochs=6,
            retrain_batch_size=16,
            retrain_learning_rate=1e-3,
        ),
    )
