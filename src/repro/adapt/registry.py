"""Versioned model registry: content-addressed detector checkpoints on disk.

The registry is the adaptation loop's persistence layer.  Every checkpoint is
a full detector snapshot — architecture config, weight arrays (dtype
preserved, so FP16-quantised checkpoints stay FP16 on disk) and the fitted
Gaussian scorer state — stored under a version id derived from the content
itself, plus lineage metadata (parent version, the training-window tick
range, the quantization report).  Committing identical content twice yields
the same version, which is what makes rollback and replay deterministic.

On-disk layout (deterministic; everything JSON or ``.npz``)::

    <root>/
      manifest.json                  # {"tiers": {tier: [v0, v1, ...]}} lineage
      versions/<version>/meta.json   # ModelVersion metadata
      versions/<version>/model.json  # architecture config
      versions/<version>/model.weights.npz
      versions/<version>/scorer.npz  # GaussianLogPDScorer state

The per-tier lineage in ``manifest.json`` is an ordered promotion history:
the last entry is the *current* version, :meth:`ModelRegistry.rollback` pops
it, and rolling back past the root raises.  Checkpoint I/O builds on
:mod:`repro.nn.model_io` and :mod:`repro.utils.serialization`; a missing or
corrupt checkpoint surfaces as :class:`~repro.exceptions.SerializationError`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

import numpy as np

from repro.detectors.base import AnomalyDetector
from repro.exceptions import ConfigurationError, SerializationError
from repro.nn.model_io import _flatten_weights, _unflatten_weights
from repro.nn.quantization import QuantizationReport
from repro.utils.serialization import (
    load_arrays,
    load_json,
    save_arrays,
    save_json,
)

PathLike = Union[str, Path]

#: Hex digits of the content hash used as the version id.
_VERSION_DIGEST_CHARS = 12


def _detector_parts(detector: AnomalyDetector):
    """The (model, scorer) pair behind a detector, unwrapping window adapters."""
    target = getattr(detector, "inner", detector)
    model = getattr(target, "model", None)
    scorer = getattr(target, "scorer", None)
    if model is None or scorer is None:
        raise ConfigurationError(
            f"detector {detector.name!r} exposes no model/scorer to checkpoint"
        )
    return target, model, scorer


def _content_version(tier: str, config: Mapping[str, Any],
                     flat_weights: Mapping[str, np.ndarray],
                     scorer_state: Mapping[str, np.ndarray]) -> str:
    """Content-addressed version id: a digest over tier + config + weights + scorer.

    Hashes the tier, the canonical JSON of the config and, for every array
    (sorted by key), its key, dtype, shape and raw bytes — so the id is a
    pure function of the checkpoint content, independent of when or where it
    is written.  The tier is part of the content: two tiers deploying
    byte-identical models still get distinct versions, so each checkpoint's
    stored lineage metadata (tier, parent, training window) is unambiguous.
    """
    digest = hashlib.sha256()
    digest.update(f"tier:{tier}\n".encode("utf-8"))
    digest.update(json.dumps(config, sort_keys=True, default=str).encode("utf-8"))
    for name, arrays in (("weights", flat_weights), ("scorer", scorer_state)):
        for key in sorted(arrays):
            array = np.ascontiguousarray(np.asarray(arrays[key]))
            digest.update(f"{name}/{key}:{array.dtype.str}:{array.shape}".encode("utf-8"))
            digest.update(array.tobytes())
    return f"v-{digest.hexdigest()[:_VERSION_DIGEST_CHARS]}"


@dataclass(frozen=True)
class ModelVersion:
    """Lineage metadata of one committed checkpoint."""

    version: str
    tier: str
    layer: int
    detector_name: str
    #: Parent version this checkpoint was fine-tuned from (``None`` = root).
    parent: Optional[str]
    #: Event-clock tick range ``[start, end]`` of the training windows
    #: (``None`` for offline-trained roots).
    training_window: Optional[tuple]
    #: Number of windows the checkpoint was (re)trained on.
    n_train_windows: int
    parameter_count: int
    #: Weight dtypes present in the checkpoint, e.g. ``{"float64": 6}``.
    weight_dtypes: Dict[str, int]
    #: Quantization report of the deployed form (``None`` when unquantised).
    quantization: Optional[Dict[str, Any]]

    def to_dict(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        if self.training_window is not None:
            payload["training_window"] = list(self.training_window)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ModelVersion":
        kwargs = dict(payload)
        if kwargs.get("training_window") is not None:
            kwargs["training_window"] = tuple(int(t) for t in kwargs["training_window"])
        return cls(**kwargs)


class ModelRegistry:
    """Content-addressed, versioned detector checkpoints with promote/rollback."""

    def __init__(self, root: PathLike) -> None:
        # The directory is created lazily on the first write (commit/promote),
        # so read-only operations against a mistyped path fail loudly instead
        # of conjuring an empty registry.
        self.root = Path(root)

    # -- paths -------------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    def _version_dir(self, version: str) -> Path:
        return self.root / "versions" / version

    def _manifest(self) -> Dict[str, Any]:
        if not self.manifest_path.exists():
            return {"tiers": {}}
        return load_json(self.manifest_path)

    def _write_manifest(self, manifest: Dict[str, Any]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        save_json(self.manifest_path, manifest)

    # -- committing --------------------------------------------------------------

    def commit(
        self,
        detector: AnomalyDetector,
        tier: str,
        layer: int,
        parent: Optional[str] = None,
        training_window: Optional[tuple] = None,
        n_train_windows: int = 0,
        quantization: Optional[QuantizationReport] = None,
    ) -> ModelVersion:
        """Checkpoint ``detector`` and return its (content-addressed) version.

        Re-committing identical content returns the existing version without
        rewriting it.  The detector must be fitted (the scorer state is part
        of the checkpoint).
        """
        target, model, scorer = _detector_parts(detector)
        config = model.get_config() if hasattr(model, "get_config") else {}
        flat = _flatten_weights(model.get_weights())
        scorer_state = {k: np.asarray(v) for k, v in scorer.get_state().items()}
        version = _content_version(str(tier), config, flat, scorer_state)

        quant_payload = None
        if quantization is not None:
            quant_payload = {
                "parameter_count": quantization.parameter_count,
                "original_bytes": quantization.original_bytes,
                "quantized_bytes": quantization.quantized_bytes,
                "max_absolute_error": quantization.max_absolute_error,
                "compression_ratio": quantization.compression_ratio,
            }
        dtypes: Dict[str, int] = {}
        for array in flat.values():
            key = str(np.asarray(array).dtype)
            dtypes[key] = dtypes.get(key, 0) + 1

        meta = ModelVersion(
            version=version,
            tier=str(tier),
            layer=int(layer),
            detector_name=detector.name,
            parent=parent,
            training_window=(
                tuple(int(t) for t in training_window) if training_window else None
            ),
            n_train_windows=int(n_train_windows),
            parameter_count=int(detector.parameter_count()),
            weight_dtypes=dtypes,
            quantization=quant_payload,
        )

        directory = self._version_dir(version)
        if not directory.exists():
            directory.mkdir(parents=True)
            save_json(directory / "model.json", config)
            save_arrays(directory / "model.weights.npz", flat)
            save_arrays(directory / "scorer.npz", scorer_state)
            save_json(directory / "meta.json", meta.to_dict())
        return meta

    # -- reading -----------------------------------------------------------------

    def versions(self) -> List[ModelVersion]:
        """All committed versions, sorted by version id (deterministic)."""
        versions_dir = self.root / "versions"
        if not versions_dir.exists():
            return []
        return [self.show(path.name) for path in sorted(versions_dir.iterdir())]

    def show(self, version: str) -> ModelVersion:
        """The metadata of one committed version."""
        directory = self._version_dir(version)
        if not directory.exists():
            raise SerializationError(
                f"no checkpoint {version!r} in registry {self.root}"
            )
        return ModelVersion.from_dict(load_json(directory / "meta.json"))

    def restore(self, version: str, detector: AnomalyDetector) -> ModelVersion:
        """Load checkpoint ``version`` into an already-built ``detector``.

        Restores the weight arrays (dtype preserved) and the fitted scorer
        state, and marks the detector fitted.  A missing or structurally
        corrupt checkpoint raises :class:`SerializationError`.
        """
        meta = self.show(version)
        directory = self._version_dir(version)
        target, model, _scorer = _detector_parts(detector)
        try:
            flat = load_arrays(directory / "model.weights.npz")
            scorer_state = load_arrays(directory / "scorer.npz")
            model.set_weights(_unflatten_weights(flat))
            target.scorer = type(target.scorer).from_state(scorer_state)
        except SerializationError:
            raise
        except Exception as exc:
            raise SerializationError(
                f"checkpoint {version!r} in registry {self.root} is corrupt: {exc}"
            ) from exc
        target.fitted = True
        return meta

    # -- promotion ---------------------------------------------------------------

    def current(self, tier: str) -> Optional[str]:
        """The currently promoted version for ``tier`` (``None`` when empty)."""
        lineage = self._manifest()["tiers"].get(str(tier), [])
        return lineage[-1] if lineage else None

    def lineage(self, tier: str) -> List[str]:
        """The tier's promotion history, oldest first (last entry = current)."""
        return list(self._manifest()["tiers"].get(str(tier), []))

    def promote(self, version: str, tier: str) -> None:
        """Append ``version`` to the tier's promotion history (make it current).

        Promoting the already-current version raises — a duplicate promote is
        always a lifecycle bug (the swap would be a no-op that still pollutes
        the rollback history).
        """
        self.show(version)  # must exist
        manifest = self._manifest()
        lineage = manifest["tiers"].setdefault(str(tier), [])
        if lineage and lineage[-1] == version:
            raise ConfigurationError(
                f"version {version!r} is already current for tier {tier!r}"
            )
        lineage.append(version)
        self._write_manifest(manifest)

    def rollback(self, tier: str) -> str:
        """Demote the tier's current version; returns the new current version.

        Rolling back past the root (a tier with fewer than two promoted
        versions) raises.
        """
        manifest = self._manifest()
        lineage = manifest["tiers"].get(str(tier), [])
        if len(lineage) < 2:
            raise ConfigurationError(
                f"cannot roll back tier {tier!r}: "
                + ("it has no promoted versions" if not lineage
                   else f"{lineage[0]!r} is the root version")
            )
        lineage.pop()
        self._write_manifest(manifest)
        return lineage[-1]
