"""Declarative adaptation specifications.

An :class:`AdaptSpec` describes the model-lifecycle loop attached to a fleet
streaming run: which drift monitors watch the per-tier score streams, how the
drift-triggered retrainer samples recent windows and fine-tunes, what the
shadow-evaluation gate requires before promotion, and whether hot-swapped
checkpoints are FP16-quantised for the lower tiers.  Like the rest of the
spec tree it is pure data — frozen, comparable, JSON round-trippable,
``--set``-able — and hangs off
:class:`~repro.experiments.spec.ExperimentSpec` as the optional ``adapt``
node consumed by the runner's ``stream`` stage.

This module deliberately imports nothing from :mod:`repro.experiments` so the
spec tree can import it without cycles (the same rule as
:mod:`repro.fleet.spec`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Tuple

from repro.adapt.monitors import MONITOR_KINDS
from repro.exceptions import ConfigurationError
from repro.utils.validation import checked_dataclass_kwargs


@dataclass(frozen=True)
class AdaptSpec:
    """The adaptation loop attached to a streaming experiment.

    ``seed`` is the loop's own entropy; the controller folds it with the
    experiment's master seed, so reseeding an experiment reseeds the
    reservoirs without coupling them to the device streams.
    """

    #: Monitor kinds watching each tier (see :data:`~repro.adapt.monitors.MONITOR_KINDS`).
    monitors: Tuple[str, ...] = ("page-hinkley", "f1-floor")
    # page-hinkley knobs
    ph_delta: float = 0.005
    ph_threshold: float = 1.0
    # adwin knobs
    adwin_capacity: int = 64
    adwin_sensitivity: float = 3.0
    # f1-floor knobs
    f1_floor_fraction: float = 0.7
    f1_baseline_windows: int = 2
    #: Ticks before any monitor may fire (baselines form on healthy traffic).
    warmup_ticks: int = 8
    #: Ticks a tier stays quiet after a retrain attempt (accepted or not).
    cooldown_ticks: int = 8
    #: Capacity of the per-tier reservoir of recent clean windows.
    reservoir_size: int = 256
    #: Capacity of the per-tier labelled holdout reservoir (shadow gate).
    holdout_size: int = 128
    #: Minimum reservoir fill before a retrain is attempted.
    min_retrain_windows: int = 32
    # fine-tuning knobs
    retrain_epochs: int = 5
    retrain_batch_size: int = 16
    retrain_learning_rate: float = 1e-3
    #: The gate: candidate F1 must exceed incumbent F1 by more than this.
    min_improvement: float = 0.0
    #: FP16-quantise swapped checkpoints on tiers whose deployment is quantised.
    quantize_swapped: bool = True
    #: On-disk model registry root; ``None`` uses a run-scoped temporary dir.
    registry_dir: Optional[str] = None
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "monitors", tuple(str(m) for m in self.monitors))
        if not self.monitors:
            raise ConfigurationError("adapt.monitors needs at least one monitor kind")
        unknown = sorted(set(self.monitors) - set(MONITOR_KINDS))
        if unknown:
            raise ConfigurationError(
                f"unknown monitor kind(s) {unknown}; valid kinds: {MONITOR_KINDS}"
            )
        if self.warmup_ticks < 0 or self.cooldown_ticks < 0:
            raise ConfigurationError(
                f"warmup_ticks and cooldown_ticks must be non-negative, got "
                f"{self.warmup_ticks}/{self.cooldown_ticks}"
            )
        if self.reservoir_size <= 0 or self.holdout_size <= 0:
            raise ConfigurationError(
                f"reservoir_size and holdout_size must be positive, got "
                f"{self.reservoir_size}/{self.holdout_size}"
            )
        if self.min_retrain_windows <= 1:
            raise ConfigurationError(
                f"min_retrain_windows must exceed 1, got {self.min_retrain_windows}"
            )
        if self.retrain_epochs <= 0 or self.retrain_batch_size <= 0:
            raise ConfigurationError(
                f"retrain_epochs and retrain_batch_size must be positive, got "
                f"{self.retrain_epochs}/{self.retrain_batch_size}"
            )
        if self.retrain_learning_rate <= 0:
            raise ConfigurationError(
                f"retrain_learning_rate must be positive, got {self.retrain_learning_rate}"
            )
        if self.min_improvement < 0:
            raise ConfigurationError(
                f"min_improvement must be non-negative, got {self.min_improvement}"
            )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AdaptSpec":
        kwargs = checked_dataclass_kwargs(cls, payload, "adapt")
        if "monitors" in kwargs:
            kwargs["monitors"] = tuple(kwargs["monitors"])
        return cls(**kwargs)
