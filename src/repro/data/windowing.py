"""Sliding-window extraction.

The paper's multivariate pipeline cuts the 18-channel series into windows of
128 timesteps (~2.56 s at 50 Hz) with a stride of 64; its univariate pipeline
uses non-overlapping weekly windows (see :func:`repro.data.power.weekly_windows`).
This module provides the generic sliding-window machinery shared by both.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ShapeError
from repro.data.datasets import LabeledWindows, TimeSeriesDataset


def sliding_windows(
    values: np.ndarray,
    window_size: int,
    stride: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Extract sliding windows from a series.

    Parameters
    ----------
    values:
        Array of shape ``(timesteps,)`` or ``(timesteps, channels)``.
    window_size:
        Number of timesteps per window.
    stride:
        Step between the starts of consecutive windows.

    Returns
    -------
    (windows, start_indices):
        ``windows`` has shape ``(n_windows, window_size[, channels])`` and
        ``start_indices`` holds the index of the first timestep of each window.
    """
    values = np.asarray(values, dtype=float)
    if window_size <= 0:
        raise ShapeError(f"window_size must be positive, got {window_size}")
    if stride <= 0:
        raise ShapeError(f"stride must be positive, got {stride}")
    n = values.shape[0]
    if n < window_size:
        raise ShapeError(
            f"series of length {n} is shorter than the window size {window_size}"
        )
    starts = np.arange(0, n - window_size + 1, stride)
    windows = np.stack([values[s: s + window_size] for s in starts], axis=0)
    return windows, starts


def window_labels(
    labels: np.ndarray,
    start_indices: np.ndarray,
    window_size: int,
    anomaly_threshold: float = 0.0,
) -> np.ndarray:
    """Derive one binary label per window from per-timestep labels.

    A window is anomalous when the fraction of anomalous timesteps inside it
    strictly exceeds ``anomaly_threshold`` (default 0: any anomalous timestep
    makes the window anomalous).
    """
    labels = np.asarray(labels)
    result = np.zeros(len(start_indices), dtype=int)
    for index, start in enumerate(np.asarray(start_indices, dtype=int)):
        fraction = float(np.mean(labels[start: start + window_size]))
        result[index] = 1 if fraction > anomaly_threshold else 0
    return result


def windows_from_dataset(
    dataset: TimeSeriesDataset,
    window_size: int,
    stride: int,
    anomaly_threshold: float = 0.0,
    purity: Optional[str] = None,
) -> LabeledWindows:
    """Cut a :class:`TimeSeriesDataset` into labelled windows.

    Parameters
    ----------
    dataset:
        The source series.
    window_size, stride:
        Window geometry.
    anomaly_threshold:
        See :func:`window_labels`.
    purity:
        ``"activity"`` keeps only windows that do not straddle an activity (or
        subject) boundary, using the ``activity``/``subject`` metadata when
        present — this mirrors how windows are extracted per activity bout in
        the MHEALTH pipeline.  ``None`` keeps every window.
    """
    windows, starts = sliding_windows(dataset.as_2d(), window_size, stride)
    labels = window_labels(dataset.labels, starts, window_size, anomaly_threshold)

    if purity == "activity" and "activity" in dataset.metadata:
        activity = np.asarray(dataset.metadata["activity"])
        subject = np.asarray(dataset.metadata.get("subject", np.zeros_like(activity)))
        keep = []
        for index, start in enumerate(starts):
            stop = start + window_size
            same_activity = np.all(activity[start:stop] == activity[start])
            same_subject = np.all(subject[start:stop] == subject[start])
            keep.append(bool(same_activity and same_subject))
        keep = np.asarray(keep)
        windows, starts, labels = windows[keep], starts[keep], labels[keep]

    if dataset.values.ndim == 1:
        windows = windows[:, :, 0]
    return LabeledWindows(windows=windows, labels=labels, start_indices=starts)
