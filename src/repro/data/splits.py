"""Train/test splits following Section III-A of the paper.

For the multivariate (MHEALTH) pipeline the paper uses:

* **anomaly-detection models**: 70 % of the normal windows (across all
  subjects) as the training set; the remaining 30 % of normal windows plus 5 %
  of each anomalous activity as the test set;
* **policy network**: 30 % of the normal windows plus 5 % of each anomalous
  activity as the training set, and the whole window set as the test set.

For the univariate pipeline the same machinery is reused with the anomaly
classes collapsed into a single "anomalous" group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.data.datasets import LabeledWindows
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class SplitResult:
    """A train/test pair of window batches."""

    train: LabeledWindows
    test: LabeledWindows


def train_test_split_windows(
    windows: LabeledWindows,
    train_fraction: float = 0.7,
    rng: RngLike = 0,
    stratify: bool = True,
) -> SplitResult:
    """Random (optionally label-stratified) train/test split of a window batch."""
    if not 0.0 < train_fraction < 1.0:
        raise ConfigurationError(f"train_fraction must lie in (0, 1), got {train_fraction}")
    generator = ensure_rng(rng)
    n = len(windows)
    if n < 2:
        raise ConfigurationError(f"need at least 2 windows to split, got {n}")

    if stratify:
        train_mask = np.zeros(n, dtype=bool)
        for label in np.unique(windows.labels):
            indices = np.flatnonzero(windows.labels == label)
            generator.shuffle(indices)
            n_train = int(round(train_fraction * len(indices)))
            n_train = min(max(n_train, 1), len(indices) - 1) if len(indices) > 1 else n_train
            train_mask[indices[:n_train]] = True
    else:
        order = generator.permutation(n)
        n_train = int(round(train_fraction * n))
        train_mask = np.zeros(n, dtype=bool)
        train_mask[order[:n_train]] = True

    return SplitResult(train=windows.subset(train_mask), test=windows.subset(~train_mask))


def _select_fraction(indices: np.ndarray, fraction: float,
                     generator: np.random.Generator) -> np.ndarray:
    """Randomly select ``fraction`` of ``indices`` (at least one when non-empty)."""
    if len(indices) == 0 or fraction <= 0.0:
        return indices[:0]
    count = max(1, int(round(fraction * len(indices))))
    chosen = generator.choice(indices, size=min(count, len(indices)), replace=False)
    return np.sort(chosen)


def anomaly_detection_split(
    windows: LabeledWindows,
    normal_train_fraction: float = 0.7,
    anomaly_test_fraction: float = 0.05,
    anomaly_groups: Optional[np.ndarray] = None,
    rng: RngLike = 0,
) -> SplitResult:
    """The paper's anomaly-detection split.

    ``normal_train_fraction`` of the normal windows form the (purely normal)
    training set; the remaining normal windows plus ``anomaly_test_fraction``
    of each anomalous group form the test set.  ``anomaly_groups`` assigns each
    window to a group (e.g. its activity id); when omitted, all anomalous
    windows form a single group.
    """
    if not 0.0 < normal_train_fraction < 1.0:
        raise ConfigurationError(
            f"normal_train_fraction must lie in (0, 1), got {normal_train_fraction}"
        )
    if not 0.0 < anomaly_test_fraction <= 1.0:
        raise ConfigurationError(
            f"anomaly_test_fraction must lie in (0, 1], got {anomaly_test_fraction}"
        )
    generator = ensure_rng(rng)
    labels = windows.labels
    normal_indices = np.flatnonzero(labels == 0)
    anomalous_indices = np.flatnonzero(labels == 1)
    if len(normal_indices) < 2:
        raise ConfigurationError("need at least 2 normal windows for the AD split")

    generator.shuffle(normal_indices)
    n_train = max(1, int(round(normal_train_fraction * len(normal_indices))))
    n_train = min(n_train, len(normal_indices) - 1)
    train_indices = np.sort(normal_indices[:n_train])
    test_normal = np.sort(normal_indices[n_train:])

    if anomaly_groups is None:
        groups = np.zeros(len(windows), dtype=int)
    else:
        groups = np.asarray(anomaly_groups)
        if groups.shape[0] != len(windows):
            raise ConfigurationError("anomaly_groups must have one entry per window")

    test_anomalous_parts = []
    for group in np.unique(groups[anomalous_indices]):
        group_indices = anomalous_indices[groups[anomalous_indices] == group]
        test_anomalous_parts.append(_select_fraction(group_indices, anomaly_test_fraction, generator))
    test_anomalous = (
        np.concatenate(test_anomalous_parts) if test_anomalous_parts else anomalous_indices[:0]
    )

    test_indices = np.sort(np.concatenate([test_normal, test_anomalous]))
    return SplitResult(train=windows.subset(train_indices), test=windows.subset(test_indices))


def policy_training_split(
    windows: LabeledWindows,
    normal_fraction: float = 0.3,
    anomaly_fraction: float = 0.05,
    anomaly_groups: Optional[np.ndarray] = None,
    rng: RngLike = 0,
) -> Tuple[LabeledWindows, LabeledWindows]:
    """The paper's policy-network split.

    Returns ``(policy_train, policy_test)`` where the training set holds
    ``normal_fraction`` of the normal windows plus ``anomaly_fraction`` of each
    anomalous group, and the test set is the whole window batch.
    """
    if not 0.0 < normal_fraction <= 1.0:
        raise ConfigurationError(f"normal_fraction must lie in (0, 1], got {normal_fraction}")
    if not 0.0 < anomaly_fraction <= 1.0:
        raise ConfigurationError(f"anomaly_fraction must lie in (0, 1], got {anomaly_fraction}")
    generator = ensure_rng(rng)
    labels = windows.labels
    normal_indices = np.flatnonzero(labels == 0)
    anomalous_indices = np.flatnonzero(labels == 1)

    train_normal = _select_fraction(normal_indices, normal_fraction, generator)

    if anomaly_groups is None:
        groups = np.zeros(len(windows), dtype=int)
    else:
        groups = np.asarray(anomaly_groups)
        if groups.shape[0] != len(windows):
            raise ConfigurationError("anomaly_groups must have one entry per window")
    train_anomalous_parts = []
    for group in np.unique(groups[anomalous_indices]):
        group_indices = anomalous_indices[groups[anomalous_indices] == group]
        train_anomalous_parts.append(_select_fraction(group_indices, anomaly_fraction, generator))
    train_anomalous = (
        np.concatenate(train_anomalous_parts) if train_anomalous_parts else anomalous_indices[:0]
    )

    train_indices = np.sort(np.concatenate([train_normal, train_anomalous]))
    return windows.subset(train_indices), windows
