"""Dataset generators and preprocessing.

The paper evaluates on two public datasets that are not redistributable inside
this offline reproduction, so this subpackage provides synthetic generators
with the same structure (see DESIGN.md, "Substitutions"):

* :mod:`repro.data.power` — a univariate power-consumption series with a
  strongly weekly-periodic normal regime and anomalous days/weeks, standing in
  for the UCR power-demand dataset.
* :mod:`repro.data.mhealth` — a multivariate (18-channel, 50 Hz) human-activity
  dataset with 10 subjects and 12 activities, standing in for UCI MHEALTH.

Windowing, standardisation and the paper's train/test splits are implemented
in :mod:`repro.data.windowing`, :mod:`repro.data.preprocessing` and
:mod:`repro.data.splits`.
"""

from repro.data.datasets import LabeledWindows, TimeSeriesDataset
from repro.data.power import PowerDatasetConfig, generate_power_dataset
from repro.data.mhealth import MHealthConfig, generate_mhealth_dataset, ACTIVITY_NAMES
from repro.data.windowing import sliding_windows, window_labels
from repro.data.preprocessing import StandardScaler
from repro.data.splits import train_test_split_windows, anomaly_detection_split, policy_training_split

__all__ = [
    "LabeledWindows",
    "TimeSeriesDataset",
    "PowerDatasetConfig",
    "generate_power_dataset",
    "MHealthConfig",
    "generate_mhealth_dataset",
    "ACTIVITY_NAMES",
    "sliding_windows",
    "window_labels",
    "StandardScaler",
    "train_test_split_windows",
    "anomaly_detection_split",
    "policy_training_split",
]
