"""Preprocessing: standardisation to zero mean and unit variance.

The paper standardises all data "to zero mean and unit variance for all of the
training tasks and datasets".  :class:`StandardScaler` reproduces that with the
usual fit-on-train / apply-everywhere discipline, supporting both flat window
matrices (univariate pipeline) and 3-D window tensors (multivariate pipeline,
where statistics are computed per channel).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import NotFittedError, ShapeError


class StandardScaler:
    """Zero-mean / unit-variance scaler with per-channel statistics.

    For 1-D or 2-D univariate inputs a single (mean, std) pair is used.  For
    3-D inputs of shape ``(windows, time, channels)`` one (mean, std) pair is
    maintained per channel.
    """

    def __init__(self, epsilon: float = 1e-8) -> None:
        if epsilon <= 0:
            raise ShapeError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None
        self._per_channel = False

    # -- fitting -------------------------------------------------------------

    def fit(self, data: np.ndarray) -> "StandardScaler":
        """Estimate the statistics from ``data`` (training data only)."""
        data = np.asarray(data, dtype=float)
        if data.size == 0:
            raise ShapeError("cannot fit a scaler on empty data")
        if data.ndim == 3:
            self._per_channel = True
            self.mean_ = data.mean(axis=(0, 1))
            self.std_ = data.std(axis=(0, 1))
        elif data.ndim in (1, 2):
            self._per_channel = False
            self.mean_ = np.asarray(data.mean())
            self.std_ = np.asarray(data.std())
        else:
            raise ShapeError(f"expected 1-D, 2-D or 3-D data, got shape {data.shape}")
        self.std_ = np.where(self.std_ < self.epsilon, 1.0, self.std_)
        return self

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` and return its standardised version."""
        return self.fit(data).transform(data)

    # -- application -----------------------------------------------------------

    def _check_fitted(self) -> None:
        if self.mean_ is None or self.std_ is None:
            raise NotFittedError("StandardScaler must be fitted before use")

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Standardise ``data`` using the fitted statistics."""
        self._check_fitted()
        data = np.asarray(data, dtype=float)
        if self._per_channel and data.ndim not in (2, 3):
            raise ShapeError(
                f"scaler was fitted per-channel (3-D); got data of shape {data.shape}"
            )
        return (data - self.mean_) / self.std_

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        """Map standardised data back to the original scale."""
        self._check_fitted()
        data = np.asarray(data, dtype=float)
        return data * self.std_ + self.mean_

    # -- persistence -------------------------------------------------------------

    def get_state(self) -> dict:
        """JSON/npz-friendly snapshot of the fitted statistics."""
        self._check_fitted()
        return {
            "mean": np.asarray(self.mean_),
            "std": np.asarray(self.std_),
            "per_channel": np.asarray(self._per_channel),
            "epsilon": np.asarray(self.epsilon),
        }

    @classmethod
    def from_state(cls, state: dict) -> "StandardScaler":
        """Rebuild a scaler from :meth:`get_state` output."""
        scaler = cls(epsilon=float(state.get("epsilon", 1e-8)))
        scaler.mean_ = np.asarray(state["mean"], dtype=float)
        scaler.std_ = np.asarray(state["std"], dtype=float)
        scaler._per_channel = bool(np.asarray(state["per_channel"]))
        return scaler
