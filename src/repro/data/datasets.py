"""Dataset containers.

Two light-weight containers are used throughout the library:

* :class:`TimeSeriesDataset` — a raw (possibly multivariate) time series with
  per-timestep anomaly labels and metadata;
* :class:`LabeledWindows` — a batch of fixed-length windows with one binary
  label per window, which is what detectors, schemes and the bandit consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.exceptions import ShapeError
from repro.utils.validation import check_binary_labels


@dataclass
class TimeSeriesDataset:
    """A raw time series with per-timestep anomaly labels.

    Attributes
    ----------
    values:
        Array of shape ``(timesteps,)`` for univariate data or
        ``(timesteps, channels)`` for multivariate data.
    labels:
        Binary array of shape ``(timesteps,)``: 1 marks anomalous timesteps.
    sampling_rate_hz:
        Nominal sampling rate of the series.
    name:
        Human-readable dataset name.
    metadata:
        Free-form extra information (activity ids, subject ids, ...).
    """

    values: np.ndarray
    labels: np.ndarray
    sampling_rate_hz: float = 1.0
    name: str = "timeseries"
    metadata: Dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        self.labels = check_binary_labels(self.labels, "labels")
        if self.values.shape[0] != self.labels.shape[0]:
            raise ShapeError(
                f"values ({self.values.shape[0]} steps) and labels "
                f"({self.labels.shape[0]} steps) disagree in length"
            )

    @property
    def n_timesteps(self) -> int:
        """Number of timesteps in the series."""
        return int(self.values.shape[0])

    @property
    def n_channels(self) -> int:
        """Number of channels (1 for univariate data)."""
        return 1 if self.values.ndim == 1 else int(self.values.shape[1])

    @property
    def anomaly_fraction(self) -> float:
        """Fraction of timesteps labelled anomalous."""
        if self.labels.size == 0:
            return 0.0
        return float(np.mean(self.labels))

    def as_2d(self) -> np.ndarray:
        """The values with an explicit channel axis (``(timesteps, channels)``)."""
        if self.values.ndim == 1:
            return self.values[:, None]
        return self.values


@dataclass
class LabeledWindows:
    """A batch of fixed-length windows with one binary anomaly label each.

    Attributes
    ----------
    windows:
        Array of shape ``(n_windows, window_size)`` (univariate) or
        ``(n_windows, window_size, channels)`` (multivariate).
    labels:
        Binary array of shape ``(n_windows,)``: 1 marks an anomalous window.
    start_indices:
        Index of the first timestep of each window in the source series
        (optional; used by the demo panel to plot aligned results).
    """

    windows: np.ndarray
    labels: np.ndarray
    start_indices: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.windows = np.asarray(self.windows, dtype=float)
        self.labels = check_binary_labels(self.labels, "labels")
        if self.windows.shape[0] != self.labels.shape[0]:
            raise ShapeError(
                f"windows ({self.windows.shape[0]}) and labels ({self.labels.shape[0]}) "
                "disagree in count"
            )
        if self.start_indices is not None:
            self.start_indices = np.asarray(self.start_indices, dtype=int)
            if self.start_indices.shape[0] != self.windows.shape[0]:
                raise ShapeError("start_indices must have one entry per window")

    def __len__(self) -> int:
        return int(self.windows.shape[0])

    @property
    def window_size(self) -> int:
        """Number of timesteps per window."""
        return int(self.windows.shape[1])

    @property
    def n_channels(self) -> int:
        """Number of channels per timestep (1 for univariate windows)."""
        return 1 if self.windows.ndim == 2 else int(self.windows.shape[2])

    @property
    def normal(self) -> "LabeledWindows":
        """The subset of windows labelled normal."""
        return self.subset(self.labels == 0)

    @property
    def anomalous(self) -> "LabeledWindows":
        """The subset of windows labelled anomalous."""
        return self.subset(self.labels == 1)

    def subset(self, mask_or_indices) -> "LabeledWindows":
        """Windows selected by a boolean mask or an index array."""
        indices = np.asarray(mask_or_indices)
        starts = self.start_indices[indices] if self.start_indices is not None else None
        return LabeledWindows(
            windows=self.windows[indices],
            labels=self.labels[indices],
            start_indices=starts,
        )

    def concatenate(self, other: "LabeledWindows") -> "LabeledWindows":
        """Stack another batch of windows after this one."""
        if self.windows.ndim != other.windows.ndim:
            raise ShapeError("cannot concatenate windows of different dimensionality")
        starts = None
        if self.start_indices is not None and other.start_indices is not None:
            starts = np.concatenate([self.start_indices, other.start_indices])
        return LabeledWindows(
            windows=np.concatenate([self.windows, other.windows], axis=0),
            labels=np.concatenate([self.labels, other.labels]),
            start_indices=starts,
        )

    def shuffled(self, rng: np.random.Generator) -> "LabeledWindows":
        """A randomly permuted copy of the batch."""
        order = rng.permutation(len(self))
        return self.subset(order)
