"""Synthetic univariate power-consumption dataset.

The paper's univariate experiments use a public power-demand series whose
normal behaviour is a strongly weekly-periodic load curve (five working days
with a pronounced daytime peak, followed by two low-demand weekend days);
anomalies are days whose shape departs from that pattern (e.g. a holiday
falling on a weekday, or an unusually low/high demand day).

Because this reproduction runs offline, :func:`generate_power_dataset`
synthesises a series with exactly that structure: ``weeks`` weeks sampled at
``samples_per_day`` points per day (default 96, i.e. 15-minute sampling, one
year by default), where a configurable fraction of days is replaced by one of
several anomaly shapes.  Detection windows and the contextual features used by
the policy network are built downstream from this series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.exceptions import DataGenerationError
from repro.data.datasets import TimeSeriesDataset
from repro.utils.rng import RngLike, ensure_rng

#: Number of days per synthetic week.
DAYS_PER_WEEK = 7

#: Anomaly shapes that can be injected into a day.
ANOMALY_KINDS = ("flat_day", "missing_peak", "double_peak", "high_night")


@dataclass(frozen=True)
class PowerDatasetConfig:
    """Configuration of the synthetic power-consumption generator.

    Attributes
    ----------
    weeks:
        Number of weeks to generate (the paper's dataset covers roughly one
        year; 52 weeks by default).
    samples_per_day:
        Samples per day (default 96 = 15-minute sampling).
    anomalous_day_fraction:
        Fraction of days (over the whole series) whose shape is replaced by an
        anomalous pattern.
    noise_std:
        Standard deviation of the additive Gaussian observation noise,
        relative to a unit-amplitude daily profile.
    weekend_level:
        Demand level of weekend days relative to the weekday peak.
    seed:
        Seed of the generator (``None`` for non-deterministic output).
    """

    weeks: int = 52
    samples_per_day: int = 96
    anomalous_day_fraction: float = 0.05
    noise_std: float = 0.05
    weekend_level: float = 0.35
    seed: RngLike = 7

    def __post_init__(self) -> None:
        if self.weeks <= 0:
            raise DataGenerationError(f"weeks must be positive, got {self.weeks}")
        if self.samples_per_day < 4:
            raise DataGenerationError(
                f"samples_per_day must be at least 4, got {self.samples_per_day}"
            )
        if not 0.0 <= self.anomalous_day_fraction < 1.0:
            raise DataGenerationError(
                "anomalous_day_fraction must lie in [0, 1), got "
                f"{self.anomalous_day_fraction}"
            )
        if self.noise_std < 0:
            raise DataGenerationError(f"noise_std must be non-negative, got {self.noise_std}")

    @property
    def samples_per_week(self) -> int:
        """Number of samples in one week (the window size used by the AE models)."""
        return self.samples_per_day * DAYS_PER_WEEK

    @property
    def total_days(self) -> int:
        """Total number of days in the generated series."""
        return self.weeks * DAYS_PER_WEEK

    @property
    def total_samples(self) -> int:
        """Total number of samples in the generated series."""
        return self.total_days * self.samples_per_day


def _weekday_profile(samples_per_day: int) -> np.ndarray:
    """Normalised demand curve of a working day: low at night, high plateau at daytime."""
    hours = np.linspace(0.0, 24.0, samples_per_day, endpoint=False)
    morning_ramp = 1.0 / (1.0 + np.exp(-(hours - 7.0) * 1.8))
    evening_drop = 1.0 / (1.0 + np.exp((hours - 20.0) * 1.5))
    base = 0.25 + 0.75 * morning_ramp * evening_drop
    lunch_dip = 0.08 * np.exp(-0.5 * ((hours - 13.0) / 1.0) ** 2)
    return base - lunch_dip


def _weekend_profile(samples_per_day: int, level: float) -> np.ndarray:
    """Normalised demand curve of a weekend day: low and flat with a mild midday bump."""
    hours = np.linspace(0.0, 24.0, samples_per_day, endpoint=False)
    bump = 0.15 * np.exp(-0.5 * ((hours - 14.0) / 3.0) ** 2)
    return level + bump


def _anomalous_day(kind: str, samples_per_day: int, weekend_level: float,
                   rng: np.random.Generator) -> np.ndarray:
    """One anomalous day of the requested ``kind`` (see :data:`ANOMALY_KINDS`)."""
    hours = np.linspace(0.0, 24.0, samples_per_day, endpoint=False)
    if kind == "flat_day":
        # A weekday that behaves like a holiday: flat, weekend-like demand.
        return _weekend_profile(samples_per_day, weekend_level * rng.uniform(0.9, 1.1))
    if kind == "missing_peak":
        # The daytime plateau partially collapses part-way through the day.  The
        # collapse depth varies, so some of these days are subtle and only the
        # higher-capacity models reconstruct normal weeks tightly enough to
        # notice them.
        profile = _weekday_profile(samples_per_day).copy()
        collapse_start = int(samples_per_day * rng.uniform(0.35, 0.5))
        profile[collapse_start:] *= rng.uniform(0.45, 0.75)
        return profile
    if kind == "double_peak":
        # An extra demand surge late in the evening (variable magnitude).
        profile = _weekday_profile(samples_per_day).copy()
        surge = rng.uniform(0.35, 0.6) * np.exp(-0.5 * ((hours - 22.0) / 1.0) ** 2)
        return profile + surge
    if kind == "high_night":
        # Abnormally high demand during the night hours.
        profile = _weekday_profile(samples_per_day).copy()
        night = (hours < 5.0) | (hours > 22.5)
        profile[night] += rng.uniform(0.3, 0.55)
        return profile
    raise DataGenerationError(f"unknown anomaly kind {kind!r}")


def generate_power_dataset(config: PowerDatasetConfig | None = None) -> TimeSeriesDataset:
    """Generate the synthetic power-consumption series.

    Returns a :class:`~repro.data.datasets.TimeSeriesDataset` whose ``labels``
    mark every sample of an anomalous day as 1.  The ``metadata`` dictionary
    records, per day, whether it is anomalous and which anomaly kind was used
    (empty string for normal days).
    """
    config = config or PowerDatasetConfig()
    rng = ensure_rng(config.seed)
    spd = config.samples_per_day

    weekday = _weekday_profile(spd)
    weekend = _weekend_profile(spd, config.weekend_level)

    total_days = config.total_days
    n_anomalous = int(round(config.anomalous_day_fraction * total_days))
    # Only weekdays become anomalous: a flat weekend day is normal by definition.
    weekday_indices = [d for d in range(total_days) if d % DAYS_PER_WEEK < 5]
    if n_anomalous > len(weekday_indices):
        raise DataGenerationError(
            "anomalous_day_fraction too large: "
            f"{n_anomalous} anomalous days requested but only {len(weekday_indices)} weekdays exist"
        )
    anomalous_days = set(
        rng.choice(weekday_indices, size=n_anomalous, replace=False).tolist()
        if n_anomalous
        else []
    )

    values = np.zeros(config.total_samples)
    labels = np.zeros(config.total_samples, dtype=int)
    day_is_anomalous = np.zeros(total_days, dtype=int)
    day_kind: list[str] = []

    for day in range(total_days):
        day_of_week = day % DAYS_PER_WEEK
        start = day * spd
        stop = start + spd
        if day in anomalous_days:
            kind = str(rng.choice(ANOMALY_KINDS))
            profile = _anomalous_day(kind, spd, config.weekend_level, rng)
            labels[start:stop] = 1
            day_is_anomalous[day] = 1
            day_kind.append(kind)
        else:
            profile = weekday if day_of_week < 5 else weekend
            day_kind.append("")
        scale = rng.uniform(0.95, 1.05)
        noise = rng.normal(0.0, config.noise_std, size=spd)
        values[start:stop] = scale * profile + noise

    return TimeSeriesDataset(
        values=values,
        labels=labels,
        sampling_rate_hz=spd / (24.0 * 3600.0),
        name="synthetic-power",
        metadata={
            "day_is_anomalous": day_is_anomalous,
            "day_kind": np.asarray(day_kind),
            "samples_per_day": np.asarray(spd),
        },
    )


def weekly_windows(dataset: TimeSeriesDataset, samples_per_day: int | None = None
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Cut a power series into non-overlapping weekly windows.

    Returns ``(windows, labels)`` with ``windows`` of shape
    ``(n_weeks, 7 * samples_per_day)`` and a window labelled anomalous when it
    contains at least one anomalous day.  Weekly windows are what the paper's
    autoencoders consume (and what the per-day contextual features summarise).
    """
    if samples_per_day is None:
        stored = dataset.metadata.get("samples_per_day")
        if stored is None:
            raise DataGenerationError(
                "samples_per_day not provided and absent from dataset metadata"
            )
        samples_per_day = int(stored)
    samples_per_week = samples_per_day * DAYS_PER_WEEK
    n_weeks = dataset.n_timesteps // samples_per_week
    if n_weeks == 0:
        raise DataGenerationError(
            f"series too short ({dataset.n_timesteps} samples) for one weekly window "
            f"({samples_per_week} samples)"
        )
    usable = n_weeks * samples_per_week
    windows = dataset.values[:usable].reshape(n_weeks, samples_per_week)
    label_windows = dataset.labels[:usable].reshape(n_weeks, samples_per_week)
    labels = (label_windows.sum(axis=1) > 0).astype(int)
    return windows, labels
