"""Synthetic multivariate human-activity dataset (MHEALTH-like).

The paper's multivariate experiments use the UCI MHEALTH dataset: 10 subjects
performing 12 activities, each wearing two motion sensors (left ankle and
right wrist) that both report a 3-axis accelerometer, a 3-axis gyroscope and a
3-axis magnetometer — 18 channels in total sampled at 50 Hz.  The dominant
activity (e.g. walking) is treated as normal and every other activity as
anomalous.

This module synthesises a dataset with identical structure.  Each activity has
a characteristic multi-channel signature composed of activity-specific
harmonic content (frequency, amplitude and phase patterns differing across
channels), a static gravity/orientation offset, per-subject variation, and
sensor noise.  The generator returns a single concatenated time series with
per-timestep activity identifiers, from which windows of 128 steps with a
stride of 64 are extracted downstream, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.exceptions import DataGenerationError
from repro.data.datasets import TimeSeriesDataset
from repro.utils.rng import RngLike, ensure_rng

#: Number of channels: 2 sensors x (3-axis accel + 3-axis gyro + 3-axis magnetometer).
N_CHANNELS = 18

#: The twelve MHEALTH activities (activity 4, walking, is the paper's "normal" class).
ACTIVITY_NAMES = (
    "standing",
    "sitting",
    "lying",
    "walking",
    "climbing_stairs",
    "waist_bends",
    "arm_elevation",
    "knees_bending",
    "cycling",
    "jogging",
    "running",
    "jump_front_back",
)


@dataclass(frozen=True)
class MHealthConfig:
    """Configuration of the synthetic MHEALTH-like generator.

    Attributes
    ----------
    n_subjects:
        Number of simulated subjects (10 in MHEALTH).
    seconds_per_activity:
        Duration of each activity bout per subject, in seconds.
    sampling_rate_hz:
        Sampling rate (50 Hz in MHEALTH).
    normal_activity:
        Name or index of the activity treated as normal (walking by default,
        following the paper's "dominant activity" convention).
    noise_std:
        Standard deviation of the additive sensor noise.
    subject_variability:
        Scale of per-subject random variation of amplitudes and frequencies.
    seed:
        Generator seed.
    """

    n_subjects: int = 10
    seconds_per_activity: float = 30.0
    sampling_rate_hz: float = 50.0
    normal_activity: str | int = "walking"
    noise_std: float = 0.12
    subject_variability: float = 0.12
    seed: RngLike = 11

    def __post_init__(self) -> None:
        if self.n_subjects <= 0:
            raise DataGenerationError(f"n_subjects must be positive, got {self.n_subjects}")
        if self.seconds_per_activity <= 0:
            raise DataGenerationError(
                f"seconds_per_activity must be positive, got {self.seconds_per_activity}"
            )
        if self.sampling_rate_hz <= 0:
            raise DataGenerationError(
                f"sampling_rate_hz must be positive, got {self.sampling_rate_hz}"
            )
        if self.noise_std < 0:
            raise DataGenerationError(f"noise_std must be non-negative, got {self.noise_std}")
        self.normal_activity_index  # validates the name/index

    @property
    def normal_activity_index(self) -> int:
        """Index of the normal activity inside :data:`ACTIVITY_NAMES`."""
        if isinstance(self.normal_activity, str):
            try:
                return ACTIVITY_NAMES.index(self.normal_activity)
            except ValueError as exc:
                raise DataGenerationError(
                    f"unknown activity {self.normal_activity!r}; known: {ACTIVITY_NAMES}"
                ) from exc
        index = int(self.normal_activity)
        if not 0 <= index < len(ACTIVITY_NAMES):
            raise DataGenerationError(
                f"normal_activity index must lie in [0, {len(ACTIVITY_NAMES)}), got {index}"
            )
        return index

    @property
    def samples_per_activity(self) -> int:
        """Number of samples in one activity bout."""
        return int(round(self.seconds_per_activity * self.sampling_rate_hz))


def _activity_signature(activity_index: int, rng: np.random.Generator) -> Dict[str, np.ndarray]:
    """Deterministic per-activity signal signature.

    The signature consists of, per channel: a base offset (gravity/orientation),
    a fundamental frequency, an amplitude, a phase and a harmonic weight.
    Static activities (standing/sitting/lying) get near-zero amplitude;
    locomotion activities get progressively higher frequency and amplitude.
    """
    # Activity "intensity" ladder: static postures < bends < walking < ... < jumping.
    # Several ambulatory activities (climbing stairs, knee bends, cycling) are
    # deliberately close to walking in both intensity and cadence, so that
    # telling them apart from the normal activity requires a model with enough
    # capacity — this is what creates the accuracy gap between the IoT, edge
    # and cloud models in Table I.
    intensity_by_activity = np.array(
        [0.05, 0.04, 0.03, 1.0, 1.08, 0.6, 0.7, 0.92, 1.05, 1.4, 1.7, 1.9]
    )
    frequency_by_activity = np.array(
        [0.1, 0.1, 0.05, 1.8, 1.9, 0.7, 0.9, 1.65, 1.72, 2.3, 2.6, 2.15]
    )
    intensity = intensity_by_activity[activity_index]
    frequency = frequency_by_activity[activity_index]

    offsets = rng.normal(0.0, 1.0, size=N_CHANNELS)
    # Gravity dominates accelerometer z-axes (channels 2 and 11 by convention).
    offsets[2] += 9.8
    offsets[11] += 9.8
    amplitudes = intensity * rng.uniform(0.3, 1.0, size=N_CHANNELS)
    phases = rng.uniform(0.0, 2.0 * np.pi, size=N_CHANNELS)
    frequencies = frequency * rng.uniform(0.9, 1.1, size=N_CHANNELS)
    harmonic_weights = rng.uniform(0.0, 0.5, size=N_CHANNELS)
    return {
        "offsets": offsets,
        "amplitudes": amplitudes,
        "phases": phases,
        "frequencies": frequencies,
        "harmonic_weights": harmonic_weights,
    }


def _activity_bout(
    signature: Dict[str, np.ndarray],
    n_samples: int,
    sampling_rate_hz: float,
    subject_scale: np.ndarray,
    noise_std: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Synthesise one activity bout of shape ``(n_samples, N_CHANNELS)``."""
    t = np.arange(n_samples) / sampling_rate_hz
    phase = 2.0 * np.pi * np.outer(t, signature["frequencies"]) + signature["phases"]
    fundamental = np.sin(phase)
    harmonic = signature["harmonic_weights"] * np.sin(2.0 * phase)
    signal = signature["offsets"] + subject_scale * signature["amplitudes"] * (fundamental + harmonic)
    return signal + rng.normal(0.0, noise_std, size=signal.shape)


def generate_mhealth_dataset(config: MHealthConfig | None = None) -> TimeSeriesDataset:
    """Generate the synthetic MHEALTH-like dataset.

    The returned :class:`~repro.data.datasets.TimeSeriesDataset` concatenates,
    subject by subject, one bout of every activity.  ``labels`` are 1 for every
    timestep whose activity is *not* the configured normal activity.
    ``metadata`` records per-timestep ``activity`` and ``subject`` identifiers
    so the splits module can reproduce the paper's subject/activity-aware
    train/test selection.
    """
    config = config or MHealthConfig()
    rng = ensure_rng(config.seed)
    normal_index = config.normal_activity_index
    samples_per_activity = config.samples_per_activity

    # Per-activity signatures are shared across subjects (drawn from a child
    # generator so subject noise does not perturb them).
    signature_rng = ensure_rng(rng.integers(0, 2**63 - 1))
    signatures = [
        _activity_signature(activity, signature_rng) for activity in range(len(ACTIVITY_NAMES))
    ]

    segments: List[np.ndarray] = []
    activity_ids: List[np.ndarray] = []
    subject_ids: List[np.ndarray] = []

    for subject in range(config.n_subjects):
        subject_scale = 1.0 + config.subject_variability * rng.normal(0.0, 1.0, size=N_CHANNELS)
        for activity in range(len(ACTIVITY_NAMES)):
            bout = _activity_bout(
                signatures[activity],
                samples_per_activity,
                config.sampling_rate_hz,
                subject_scale,
                config.noise_std,
                rng,
            )
            segments.append(bout)
            activity_ids.append(np.full(samples_per_activity, activity, dtype=int))
            subject_ids.append(np.full(samples_per_activity, subject, dtype=int))

    values = np.concatenate(segments, axis=0)
    activity_array = np.concatenate(activity_ids)
    subject_array = np.concatenate(subject_ids)
    labels = (activity_array != normal_index).astype(int)

    return TimeSeriesDataset(
        values=values,
        labels=labels,
        sampling_rate_hz=config.sampling_rate_hz,
        name="synthetic-mhealth",
        metadata={
            "activity": activity_array,
            "subject": subject_array,
            "normal_activity_index": np.asarray(normal_index),
        },
    )
