"""One-call orchestration of a serving run: server + load generator + report.

:func:`serve_workload` wires an :class:`~repro.serving.server.IngestServer`
to an :class:`~repro.serving.loadgen.OpenLoopLoadGenerator` inside a fresh
event loop, optionally lands one hot swap mid-run through the drain-and-swap
gate, and assembles the :class:`~repro.serving.report.ServingReport`.  It is
what the runner's ``serve`` stage and ``benchmarks/bench_serving.py`` call.
"""

from __future__ import annotations

import asyncio
import copy
from typing import Callable, List, Optional, Sequence, Tuple

from repro.fleet.devices import DeviceFleet
from repro.serving.loadgen import OpenLoopLoadGenerator
from repro.serving.report import ServingReport, report_from_server
from repro.serving.server import IngestServer, ServeResult
from repro.serving.spec import ServingSpec


def blue_green_swap(system, layer: int = 0) -> Callable[[], int]:
    """A swap callable rebinding ``layer``'s detector to a fresh deep copy.

    The registry-backed path (:class:`~repro.adapt.deployer.HotSwapDeployer`)
    carries lineage and quantisation; a blue/green redeploy of the *same*
    weights only needs the atomic rebind plus a version bump, which is what
    ``repro serve --hot-swap`` exercises.  Returns the new state version.
    """

    def _swap() -> int:
        deployment = system.deployment_at(layer)
        deployment.detector = copy.deepcopy(deployment.detector)
        return system.bump_state_version()

    return _swap


async def _swap_midstream(
    server: IngestServer,
    generator: OpenLoopLoadGenerator,
    swap: Callable[[], object],
    at_fraction: float,
) -> None:
    """Wait until a fraction of the stream has been offered, then swap."""
    target = max(1, int(generator.n_requests * at_fraction))
    while server.n_submitted < target:
        await asyncio.sleep(0.002)
    await server.drain_and_swap(swap)


def serve_workload(
    *,
    system,
    policy,
    context_extractor,
    serving: ServingSpec,
    fleet: DeviceFleet,
    master_seed: int = 0,
    name: str = "serving",
    tier_names: Optional[Sequence[str]] = None,
    swap: Optional[Callable[[], object]] = None,
    swap_at_fraction: float = 0.5,
    telemetry=None,
    faults=None,
) -> Tuple[ServingReport, List[ServeResult]]:
    """Serve the fleet's arrival stream through the front door, end to end.

    Returns the report plus the per-request results in submission order.
    When ``swap`` is given, it lands once through
    :meth:`~repro.serving.server.IngestServer.drain_and_swap` after
    ``swap_at_fraction`` of the stream has been offered.  ``faults`` (a
    :class:`~repro.fleet.faults.FaultSpec`) injects its link windows into
    the dispatch path, keyed by each request's origin fleet tick.
    """

    async def _main():
        server = IngestServer(
            system,
            policy,
            context_extractor,
            serving,
            master_seed=master_seed,
            tier_names=tier_names,
            telemetry=telemetry,
            faults=faults,
        )
        generator = OpenLoopLoadGenerator(fleet, serving, master_seed=master_seed)
        await server.start()
        loop = asyncio.get_running_loop()
        start = loop.time()
        swapper = None
        if swap is not None:
            swapper = loop.create_task(
                _swap_midstream(server, generator, swap, swap_at_fraction)
            )
        try:
            results = await generator.run(server)
            if swapper is not None:
                await swapper
        finally:
            if swapper is not None and not swapper.done():
                swapper.cancel()
            await server.stop()
        duration = loop.time() - start
        return report_from_server(server, name=name, duration_seconds=duration), results

    return asyncio.run(_main())
