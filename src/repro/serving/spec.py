"""Declarative serving-front-door specifications.

A :class:`ServingSpec` describes one open-loop serving run: how the
micro-batcher coalesces per-device submissions (flush on ``max_batch`` or
``max_wait_ms``, whichever first), how admission control bounds the ingress
queue and sheds under overload, how fast the load generator offers traffic,
and the p99 latency SLO the run is judged against.  Like the rest of the
experiment-spec tree it is pure data — frozen, comparable, JSON
round-trippable and overridable with the CLI's dotted ``--set serve.*``
paths — and it hangs off :class:`~repro.experiments.spec.ExperimentSpec` as
the optional ``serve`` node consumed by the runner's ``serve`` stage.

This module deliberately imports nothing from :mod:`repro.experiments` so the
spec tree can import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.exceptions import ConfigurationError
from repro.utils.validation import checked_dataclass_kwargs

#: Admission-control policies for a full ingress queue: ``reject-new`` turns
#: the incoming request away immediately; ``shed-oldest`` evicts the oldest
#: queued request (resolving it as shed) to admit the new one.
SHED_POLICIES = ("reject-new", "shed-oldest")


@dataclass(frozen=True)
class ServingSpec:
    """An open-loop serving workload attached to an experiment.

    ``seed`` is the serving run's own stream seed; the server and load
    generator fold it together with the experiment's master seed, so
    ``repro serve --seed`` reseeds the arrival process and the latency
    reservoir without perturbing the fleet's device streams.
    """

    # -- micro-batcher ---------------------------------------------------------
    #: Flush a micro-batch once it holds this many requests ...
    max_batch: int = 32
    #: ... or once the oldest request in it has waited this long.
    max_wait_ms: float = 5.0
    # -- admission control / load shedding -------------------------------------
    #: Bounded ingress queue; submissions beyond it trigger ``shed_policy``.
    queue_capacity: int = 128
    shed_policy: str = "reject-new"
    #: In-flight micro-batches allowed per tier before dispatch blocks
    #: (the backpressure that fills the ingress queue under overload).
    tier_concurrency: int = 2
    #: Queued requests older than this are shed at dispatch time instead of
    #: being served hopelessly late; ``None`` derives ``slo_p99_ms / 2``.
    max_age_ms: Optional[float] = None
    # -- SLO -------------------------------------------------------------------
    #: The served-request p99 latency target (measured wall-clock, from the
    #: scheduled arrival to the completed response).  The default leaves the
    #: derived shed deadline (``slo_p99_ms / 2``) enough headroom above the
    #: slowest simulated tier (~505 ms for cloud at ``service_time_scale=1``)
    #: that a request shedding protects can still be served within the SLO:
    #: the served tail is bounded by ``deadline + slowest service``.
    slo_p99_ms: float = 1500.0
    #: Service is paced by the simulated HEC delay scaled by this factor (the
    #: tier slot is held for ``scale * delay_ms``), so throughput is bounded
    #: by the simulated hierarchy, not by host speed; ``0`` disables pacing.
    service_time_scale: float = 1.0
    # -- open-loop load generator ----------------------------------------------
    #: Mean offered arrival rate (exponential inter-arrivals), decoupled from
    #: the service rate so queueing under overload is real.
    offered_rps: float = 200.0
    #: Requests the generator schedules (capped by the fleet's arrivals).
    max_requests: int = 512
    seed: int = 0
    #: Capacity of the bounded latency reservoir behind the p50/p90/p99.
    reservoir_size: int = 2048

    def __post_init__(self) -> None:
        if self.max_batch <= 0:
            raise ConfigurationError(f"max_batch must be positive, got {self.max_batch}")
        if self.max_wait_ms <= 0:
            raise ConfigurationError(
                f"max_wait_ms must be positive, got {self.max_wait_ms}"
            )
        if self.queue_capacity <= 0:
            raise ConfigurationError(
                f"queue_capacity must be positive, got {self.queue_capacity}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ConfigurationError(
                f"shed_policy must be one of {SHED_POLICIES}, got {self.shed_policy!r}"
            )
        if self.tier_concurrency <= 0:
            raise ConfigurationError(
                f"tier_concurrency must be positive, got {self.tier_concurrency}"
            )
        if self.slo_p99_ms <= 0:
            raise ConfigurationError(
                f"slo_p99_ms must be positive, got {self.slo_p99_ms}"
            )
        if self.service_time_scale < 0:
            raise ConfigurationError(
                f"service_time_scale must be non-negative, got {self.service_time_scale}"
            )
        if self.offered_rps <= 0:
            raise ConfigurationError(
                f"offered_rps must be positive, got {self.offered_rps}"
            )
        if self.max_requests <= 0:
            raise ConfigurationError(
                f"max_requests must be positive, got {self.max_requests}"
            )
        if self.reservoir_size <= 0:
            raise ConfigurationError(
                f"reservoir_size must be positive, got {self.reservoir_size}"
            )
        # Unreachable-SLO configurations are rejected up front: the batcher may
        # legitimately hold a request for the full max wait, so a shed deadline
        # at or below it sheds every admitted request and nothing can ever be
        # served within the SLO.
        if self.max_age_ms is not None:
            if self.max_age_ms <= self.max_wait_ms:
                raise ConfigurationError(
                    f"max_age_ms ({self.max_age_ms}) must exceed max_wait_ms "
                    f"({self.max_wait_ms}); the micro-batcher alone may hold a "
                    "request for the full max wait, so a smaller age budget "
                    "sheds every admitted request"
                )
            if self.slo_p99_ms <= self.max_wait_ms:
                raise ConfigurationError(
                    f"unreachable SLO: slo_p99_ms ({self.slo_p99_ms}) must exceed "
                    f"max_wait_ms ({self.max_wait_ms}) — no request completes "
                    "faster than the batcher's max wait"
                )
        elif self.slo_p99_ms <= 2.0 * self.max_wait_ms:
            raise ConfigurationError(
                f"unreachable SLO: slo_p99_ms ({self.slo_p99_ms}) must exceed "
                f"2 x max_wait_ms ({self.max_wait_ms}) so the derived shed "
                "deadline (slo_p99_ms / 2) clears the micro-batcher's max "
                "wait; set max_age_ms explicitly to override"
            )

    @property
    def effective_max_age_ms(self) -> float:
        """The shed deadline actually enforced at dispatch time."""
        if self.max_age_ms is not None:
            return float(self.max_age_ms)
        return float(self.slo_p99_ms) / 2.0

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ServingSpec":
        return cls(**checked_dataclass_kwargs(cls, payload, "serve"))
