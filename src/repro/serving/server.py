"""The asyncio ingestion front door: micro-batching, backpressure, drain-and-swap.

:class:`IngestServer` accepts per-device window submissions
(:meth:`IngestServer.submit`), coalesces them across devices with a tunable
micro-batcher — a batch flushes once it holds ``serve.max_batch`` requests or
once its oldest request has waited ``serve.max_wait_ms``, whichever first —
and routes each flushed batch through the trained policy into
:meth:`~repro.hec.simulation.HECSystem.detect_batch_columnar`.  Every
submission resolves to a :class:`ServeResult`; served results carry the
prediction, the simulated HEC delay, the *measured* wall-clock service
latency (scheduled arrival to completed response, so a backlog cannot hide
behind coordinated omission) and the model version that computed them.

Overload degrades gracefully instead of growing the queue without bound:

* the ingress queue is bounded at ``serve.queue_capacity``; a full queue
  either rejects the newcomer (``reject-new``) or evicts the oldest queued
  request (``shed-oldest``),
* dispatched batches are bounded per tier by ``serve.tier_concurrency``
  slots; when a tier is saturated, dispatch blocks, the queue fills, and
  admission control takes over — that chain is the backpressure,
* requests older than ``serve.effective_max_age_ms`` are shed instead of
  being served hopelessly late — checked at dispatch *and* again once a tier
  slot is actually acquired (the semaphore wait is unbounded under
  saturation), which is what keeps the *served* p99 inside the SLO while
  overload is shed.

The first shed/reject of a run emits a named :class:`RuntimeWarning` (the
PR 5 pool-fallback convention: overload must be impossible to miss, but once
is enough); every shed is counted and reported.

Service is paced by the simulated HEC delay (``serve.service_time_scale``):
a tier slot is held for the scaled simulated duration of its batch, so
serving throughput is bounded by the simulated hierarchy rather than by how
fast the host spins a for-loop.  The raw detector compute runs on a
single-worker thread pool — :class:`~repro.hec.simulation.HECSystem` mutates
its event clock and counters and is not thread-safe, so compute serialises
there while the event loop stays free to admit (or shed) arrivals.

:meth:`IngestServer.drain_and_swap` is the deployment gate: it blocks new
dispatches, waits for every in-flight batch to complete, runs the swap
against the quiescent system, and resumes.  Queued requests stay queued —
zero are dropped — and every response computed after the swap carries the
bumped ``model_version``.
"""

from __future__ import annotations

import asyncio
import warnings
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.fleet.faults import FaultSchedule, FaultSpec
from repro.fleet.metrics import DelayReservoir, confusion_counts
from repro.obs.export import Telemetry
from repro.obs.metrics import DEFAULT_BUCKETS
from repro.serving.spec import ServingSpec

#: SeedSequence entropy tag for the serving latency reservoir.
_SERVE_TAG = 0x5E21

#: Bucket bounds for the micro-batch size histogram (requests per batch).
_BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)

#: Final request statuses the ``serve_requests_total`` counter is keyed by.
_STATUSES = ("submitted", "served", "rejected", "shed", "expired")


@dataclass(frozen=True)
class ServeResult:
    """What one submitted window got back from the front door."""

    device_id: int
    #: ``"served"``, ``"rejected"`` (refused at admission) or ``"shed"``
    #: (evicted from the queue or expired past its age budget).
    status: str
    prediction: Optional[int] = None
    anomaly_score: Optional[float] = None
    #: The layer that actually served the request (after failover, if any).
    layer: Optional[int] = None
    #: The simulated HEC end-to-end delay of this request.
    simulated_delay_ms: Optional[float] = None
    #: Measured wall-clock latency: scheduled arrival -> completed response.
    latency_ms: Optional[float] = None
    #: ``HECSystem.state_version`` at compute time — how the drain-and-swap
    #: tests prove post-swap responses come from the new deployment.
    model_version: Optional[int] = None
    #: Ground-truth label carried through from the load generator, if known.
    label: Optional[int] = None
    #: ``"queue-full"`` or ``"expired"`` for rejected/shed results.
    shed_reason: Optional[str] = None

    @property
    def served(self) -> bool:
        return self.status == "served"


class _Pending:
    """One queued submission awaiting its micro-batch."""

    __slots__ = ("device_id", "window", "label", "arrival_time", "future", "span", "tick")

    def __init__(self, device_id, window, label, arrival_time, future, span=None, tick=None):
        self.device_id = device_id
        self.window = window
        self.label = label
        self.arrival_time = arrival_time
        self.future = future
        self.span = span
        #: Origin fleet tick of the window (drives serving fault windows).
        self.tick = tick


class IngestServer:
    """Async request/response serving over a trained HEC system."""

    def __init__(
        self,
        system,
        policy,
        context_extractor,
        serving: ServingSpec,
        *,
        master_seed: int = 0,
        tier_names: Optional[Sequence[str]] = None,
        telemetry: Optional[Telemetry] = None,
        faults: Optional[FaultSpec] = None,
    ) -> None:
        if policy.n_actions != system.n_layers:
            raise ConfigurationError(
                f"policy selects between {policy.n_actions} actions but the "
                f"system has {system.n_layers} layers"
            )
        self.system = system
        self.policy = policy
        self.context_extractor = context_extractor
        self.serving = serving
        if tier_names is None:
            tier_names = tuple(f"layer-{i}" for i in range(system.n_layers))
        if len(tier_names) != system.n_layers:
            raise ConfigurationError(
                f"got {len(tier_names)} tier names for {system.n_layers} layers"
            )
        self.tier_names = tuple(tier_names)

        # -- counters & metrics (read by report_from_server) --------------------
        self.n_submitted = 0
        self.n_served = 0
        self.n_rejected = 0   # refused at admission (reject-new)
        self.n_shed = 0       # evicted from the queue (shed-oldest)
        self.n_expired = 0    # past the age budget at dispatch
        self.n_batches = 0
        self.batched_requests = 0
        self.max_batch_size = 0
        self.n_swaps = 0
        self.swap_versions: List[int] = []
        # -- serving-path fault injection ---------------------------------------
        #: The experiment's fault plan; link windows are keyed by the origin
        #: fleet tick each request carries (pure, wall-clock-free), so which
        #: batches hit a partition is deterministic under a fixed seed.
        self.faults = faults
        self._fault_schedule: Optional[FaultSchedule] = None
        if faults is not None and faults.events:
            schedule = FaultSchedule(faults)
            if schedule.has_link_faults:
                self._fault_schedule = schedule
        #: Retry-with-backoff attempts spent on batches whose chosen tier sat
        #: behind a down link before failing over (report + contract input).
        self.n_retries = 0
        self._fault_tick = 0
        self.latency = DelayReservoir(
            serving.reservoir_size, (master_seed, serving.seed, _SERVE_TAG)
        )
        self.tier_served = np.zeros(system.n_layers, dtype=np.int64)
        self.tier_redirected = np.zeros(system.n_layers, dtype=np.int64)
        self.confusion = np.zeros(4, dtype=np.int64)
        self.simulated_delay_sum = 0.0
        # Exact mean/max live outside the reservoir (which only samples).
        self.latency_sum_ms = 0.0
        self.latency_max_ms = 0.0

        # -- telemetry (optional; every hot site pays one `is None` check) ------
        self.telemetry = telemetry
        if telemetry is not None:
            registry = telemetry.registry
            status_family = registry.counter(
                "serve_requests_total",
                "Requests by final status.",
                labelnames=("status",),
            )
            self._tel_status = {
                status: status_family.labels(status=status) for status in _STATUSES
            }
            tier_family = registry.counter(
                "serve_tier_requests_total",
                "Requests served per tier (post-failover accounting).",
                labelnames=("tier",),
            )
            self._tel_tiers = [
                tier_family.labels(tier=tier) for tier in self.tier_names
            ]
            self._tel_queue_wait = registry.histogram(
                "serve_queue_wait_ms",
                "Queue wait from scheduled arrival to dispatch.",
                buckets=DEFAULT_BUCKETS,
            )
            self._tel_batch_size = registry.histogram(
                "serve_batch_size",
                "Requests per dispatched micro-batch.",
                buckets=_BATCH_BUCKETS,
            )
            self._tel_latency = registry.histogram(
                "serve_latency_ms",
                "Measured wall-clock service latency.",
                buckets=DEFAULT_BUCKETS,
            )
            self._tel_swaps = registry.counter(
                "serve_swaps_total", "Drain-and-swap deployments landed."
            )
            self._tel_queue_depth = registry.gauge(
                "serve_queue_depth",
                "Peak ingress queue depth observed (gauges merge by max).",
            )
            self._tel_retries = registry.counter(
                "serve_retries_total",
                "Backoff retries against tiers behind a down link.",
            )

        # -- runtime state (created by start()) ---------------------------------
        self._queue: Deque[_Pending] = deque()
        self._started = False
        self._closing = False
        self._warned_overload = False
        self._inflight = 0
        self._saved_record_log: Optional[bool] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._batcher: Optional[asyncio.Task] = None

    # -- lifecycle --------------------------------------------------------------

    async def start(self) -> None:
        """Reset the system for serving and start the micro-batcher."""
        if self._started:
            raise ConfigurationError("IngestServer.start() called twice")
        self._started = True
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._gate = asyncio.Lock()
        self._idle = asyncio.Event()
        self._idle.set()
        self._sems = [
            asyncio.Semaphore(self.serving.tier_concurrency)
            for _ in range(self.system.n_layers)
        ]
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-detect"
        )
        # The engine's serving preamble: fresh clock/counters, warmed links,
        # and no per-request record log (the fast columnar path requires it).
        self._saved_record_log = self.system.record_log
        self.system.reset()
        self.system.topology.warm_links()
        self.system.record_log = False
        if self.faults is not None:
            self.system.configure_failover(
                self.faults.failover_retries, self.faults.retry_timeout_ms
            )
        self._batcher = self._loop.create_task(self._run())

    async def stop(self) -> None:
        """Flush the remaining queue, wait for in-flight work, shut down."""
        if not self._started:
            return
        self._closing = True
        self._wake.set()
        await self._batcher
        await self._idle.wait()
        self._executor.shutdown(wait=True)
        self.system.record_log = self._saved_record_log
        if self._fault_schedule is not None:
            # Leave the topology healthy for whoever uses the system next.
            for link in self.system.topology.links:
                link.set_status("up")

    # -- ingestion --------------------------------------------------------------

    async def submit(
        self,
        device_id: int,
        window: np.ndarray,
        label: Optional[int] = None,
        arrival_time: Optional[float] = None,
        tick: Optional[int] = None,
    ) -> ServeResult:
        """Submit one window; resolves when served, rejected or shed.

        ``arrival_time`` (event-loop clock) lets an open-loop generator pass
        the *scheduled* send time, so measured latency includes any lag the
        caller accumulated — coordinated-omission-free percentiles.
        ``tick`` carries the window's origin fleet tick; with a fault plan
        configured it selects which link faults cover the request.
        """
        if not self._started or self._closing:
            raise ConfigurationError(
                "IngestServer.submit() needs a started, not-yet-stopped server"
            )
        now = self._loop.time()
        arrival = now if arrival_time is None else float(arrival_time)
        self.n_submitted += 1
        telemetry = self.telemetry
        if telemetry is not None:
            self._tel_status["submitted"].value += 1
        serving = self.serving
        if len(self._queue) >= serving.queue_capacity:
            if serving.shed_policy == "reject-new":
                self.n_rejected += 1
                if telemetry is not None:
                    self._tel_overload(
                        "rejected",
                        policy="reject-new",
                        device_id=int(device_id),
                        queue_depth=len(self._queue),
                    )
                self._warn_overload_once("rejected a new request")
                return ServeResult(
                    device_id=int(device_id),
                    status="rejected",
                    label=label,
                    shed_reason="queue-full",
                )
            oldest = self._queue.popleft()
            self.n_shed += 1
            if telemetry is not None:
                self._tel_overload(
                    "shed",
                    policy="shed-oldest",
                    device_id=oldest.device_id,
                    queue_depth=len(self._queue) + 1,
                )
            self._warn_overload_once("shed the oldest queued request")
            self._resolve_shed(oldest, "queue-full")
        future = self._loop.create_future()
        span = None
        if telemetry is not None and telemetry.trace_enabled:
            span = telemetry.tracer.start_span(
                "serve.request", device_id=int(device_id)
            )
        self._queue.append(
            _Pending(int(device_id), np.asarray(window, dtype=float), label,
                     arrival, future, span,
                     tick if tick is None else int(tick))
        )
        if telemetry is not None:
            self._tel_queue_depth.set_max(len(self._queue))
        self._wake.set()
        return await future

    @property
    def total_shed(self) -> int:
        """Everything that did not get served: rejected + evicted + expired."""
        return self.n_rejected + self.n_shed + self.n_expired

    # -- deployment gate --------------------------------------------------------

    async def drain_and_swap(self, swap: Callable[[], object]):
        """Land a deployment between micro-batches; returns ``swap()``'s result.

        Holds the dispatch gate (no new micro-batch dispatches), waits for
        every in-flight tier batch to complete, runs ``swap()`` in the event
        loop thread against the now-quiescent system, and resumes.  Queued
        requests stay queued — nothing is dropped or recomputed — and every
        response computed afterwards carries the bumped ``state_version``.
        """
        async with self._gate:
            await self._idle.wait()
            result = swap()
            self.n_swaps += 1
            self.swap_versions.append(int(self.system.state_version))
            if self.telemetry is not None:
                self._tel_swaps.inc()
                self.telemetry.event(
                    "serve.swap",
                    version=int(self.system.state_version),
                    n_swaps=self.n_swaps,
                )
            return result

    # -- internals --------------------------------------------------------------

    def _warn_overload_once(self, what: str) -> None:
        # Satellite contract: silent load shedding turns an overloaded server
        # into a mystery, but warning per request would melt the log — so name
        # the condition once per run and count the rest (see the serving
        # report's shed counters).
        if self._warned_overload:
            return
        self._warned_overload = True
        serving = self.serving
        warnings.warn(
            f"serving ingress overloaded: {what} "
            f"(queue_capacity={serving.queue_capacity}, "
            f"shed_policy={serving.shed_policy!r}); further sheds are counted "
            "silently and reported in the serving report",
            RuntimeWarning,
            stacklevel=3,
        )

    def _tel_overload(self, status: str, **fields) -> None:
        """Count + structurally log one overload decision (telemetry on).

        The warn-once RuntimeWarning stays the human-facing signal; this is
        the machine-readable record of *every* shed with its full context.
        """
        self._tel_status[status].value += 1
        self.telemetry.event("serve.overload", reason=status, **fields)

    def _resolve_shed(self, pending: _Pending, reason: str) -> None:
        if pending.span is not None:
            pending.span.end(status="shed", shed_reason=reason)
            pending.span = None
        if not pending.future.done():
            pending.future.set_result(
                ServeResult(
                    device_id=pending.device_id,
                    status="shed",
                    label=pending.label,
                    shed_reason=reason,
                )
            )

    # -- serving-path fault injection -------------------------------------------

    def _batch_tick(self, pending: List[_Pending]) -> Optional[int]:
        """The fault tick governing a batch (``None`` without a fault plan).

        Requests carry their origin fleet tick; the newest one in the batch
        wins, and tickless submissions inherit the latest tick seen so far —
        the fault clock never runs backwards.
        """
        if self._fault_schedule is None:
            return None
        ticks = [p.tick for p in pending if p.tick is not None]
        tick = max(ticks) if ticks else self._fault_tick
        if tick > self._fault_tick:
            self._fault_tick = tick
        return tick

    def _tier_partitioned(self, layer: int, tick: int) -> bool:
        """Whether ``layer`` sits behind a link scheduled down at ``tick``.

        Computed purely from the fault schedule (never from the shared
        system, which only the detect executor thread may touch): the uplink
        chain to ``layer`` is links ``0..layer-1``.
        """
        down = self._fault_schedule.down_links(tick)
        return any(index < layer for index in down)

    async def _retry_with_backoff(self, layer: int, tick: int) -> None:
        """Spend the failover retry budget against a partitioned tier.

        Exponential backoff starting at ``retry_timeout_ms`` (scaled like
        service pacing by ``service_time_scale``); the partition state is a
        pure function of the batch's tick, so once the budget is spent the
        batch proceeds and the system's failover redirects it to the best
        reachable tier with the retry delay charged to its simulated delay.
        """
        backoff = (
            self.faults.retry_timeout_ms
            * self.serving.service_time_scale
            / 1000.0
        )
        for attempt in range(self.faults.failover_retries):
            self.n_retries += 1
            if self.telemetry is not None:
                self._tel_retries.inc()
                self.telemetry.event(
                    "serve.retry",
                    tier=self.tier_names[layer],
                    tick=int(tick),
                    attempt=attempt + 1,
                )
            if backoff > 0:
                await asyncio.sleep(backoff)
            backoff *= 2.0

    def _detect_batch(self, layer: int, windows: np.ndarray, tick: Optional[int]):
        """Detect one batch, applying the tick's link faults first.

        Runs on the single-worker detect executor, which serialises the link
        mutation with every other batch's detection — concurrent tier tasks
        can never observe a torn link state.
        """
        if self._fault_schedule is not None and tick is not None:
            self._fault_schedule.apply_links(self.system, tick)
        return self.system.detect_batch_columnar(layer, windows)

    async def _run(self) -> None:
        """The micro-batcher: collect, then dispatch under the swap gate."""
        serving = self.serving
        while True:
            while not self._queue:
                if self._closing:
                    return
                self._wake.clear()
                await self._wake.wait()
            batch = [self._queue.popleft()]
            deadline = self._loop.time() + serving.max_wait_ms / 1000.0
            while len(batch) < serving.max_batch:
                if self._queue:
                    batch.append(self._queue.popleft())
                    continue
                if self._closing:
                    break
                remaining = deadline - self._loop.time()
                if remaining <= 0:
                    break
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=remaining)
                except asyncio.TimeoutError:
                    break
            async with self._gate:
                await self._dispatch(batch)

    async def _dispatch(self, batch: List[_Pending]) -> None:
        """Expire stale requests, route the rest, hand each tier its share.

        Runs while holding the dispatch gate.  Acquiring a saturated tier's
        slot blocks *here*, which stalls the batcher, fills the ingress queue
        and triggers admission control — the backpressure chain.
        """
        now = self._loop.time()
        age_budget = self.serving.effective_max_age_ms / 1000.0
        telemetry = self.telemetry
        live = []
        for pending in batch:
            if now - pending.arrival_time > age_budget:
                self.n_expired += 1
                if telemetry is not None:
                    self._tel_overload(
                        "expired", stage="dispatch", device_id=pending.device_id
                    )
                self._warn_overload_once("expired a queued request")
                self._resolve_shed(pending, "expired")
            else:
                live.append(pending)
        if not live:
            return
        windows = np.stack([pending.window for pending in live])
        contexts = self.context_extractor.extract(windows)
        actions = np.asarray(self.policy.select_actions(contexts, greedy=True))
        self.n_batches += 1
        self.batched_requests += len(live)
        self.max_batch_size = max(self.max_batch_size, len(live))
        if telemetry is not None:
            self._tel_batch_size.observe(len(live))
            for pending in live:
                wait_ms = (now - pending.arrival_time) * 1000.0
                self._tel_queue_wait.observe(wait_ms)
                if pending.span is not None:
                    pending.span.set_attribute("queue_ms", wait_ms)
        for action in np.unique(actions):
            chosen = np.flatnonzero(actions == action)
            sem = self._sems[int(action)]
            await sem.acquire()
            self._inflight += 1
            self._idle.clear()
            self._loop.create_task(
                self._serve_tier(
                    int(action),
                    windows[chosen],
                    [live[i] for i in chosen],
                    sem,
                )
            )

    async def _serve_tier(
        self,
        layer: int,
        windows: np.ndarray,
        pending: List[_Pending],
        sem: asyncio.Semaphore,
    ) -> None:
        try:
            # Second expiry check: the batch may have aged past its budget
            # while waiting for this tier's slot, and serving it anyway would
            # push the *served* latency tail past the SLO the shed deadline
            # exists to protect.
            now = self._loop.time()
            age_budget = self.serving.effective_max_age_ms / 1000.0
            fresh = [
                i for i, p in enumerate(pending)
                if now - p.arrival_time <= age_budget
            ]
            if len(fresh) < len(pending):
                stale = set(range(len(pending))) - set(fresh)
                for i in stale:
                    self.n_expired += 1
                    if self.telemetry is not None:
                        self._tel_overload(
                            "expired",
                            stage="tier-slot",
                            device_id=pending[i].device_id,
                        )
                    self._warn_overload_once("expired a queued request")
                    self._resolve_shed(pending[i], "expired")
                pending = [pending[i] for i in fresh]
                windows = windows[fresh]
            if not pending:
                return
            telemetry = self.telemetry
            batch_span = None
            if telemetry is not None and telemetry.trace_enabled:
                batch_span = telemetry.tracer.start_span(
                    "serve.batch", tier=self.tier_names[layer], n=len(pending)
                )
            batch_tick = self._batch_tick(pending)
            if batch_tick is not None and self._tier_partitioned(layer, batch_tick):
                await self._retry_with_backoff(layer, batch_tick)
            detected = await self._loop.run_in_executor(
                self._executor, self._detect_batch, layer, windows, batch_tick
            )
            # Safe to read outside the gate: a swap needs the in-flight count
            # (which includes this task) to reach zero first.
            version = int(self.system.state_version)
            if self.serving.service_time_scale > 0:
                await asyncio.sleep(
                    float(detected.delays_ms.max())
                    * self.serving.service_time_scale
                    / 1000.0
                )
            done = self._loop.time()
            served = int(detected.layer)
            latencies = (done - np.array([p.arrival_time for p in pending])) * 1000.0
            self.latency.extend(latencies)
            self.latency_sum_ms += float(latencies.sum())
            self.latency_max_ms = max(self.latency_max_ms, float(latencies.max()))
            self.n_served += len(pending)
            self.tier_served[served] += len(pending)
            if served != layer:
                self.tier_redirected[served] += len(pending)
            self.simulated_delay_sum += float(detected.delays_ms.sum())
            if telemetry is not None:
                self._tel_status["served"].value += len(pending)
                self._tel_tiers[served].value += len(pending)
                for value in latencies:
                    self._tel_latency.observe(float(value))
                if batch_span is not None:
                    batch_span.end(
                        tier=self.tier_names[served], model_version=version
                    )
                if telemetry.watcher is not None:
                    # Progress key = requests served so far; the watcher
                    # decides the cadence.  The instantaneous queue depth
                    # rides on the watch.rollup event for the live views.
                    telemetry.watcher.observe(
                        float(self.n_served), queue_depth=len(self._queue)
                    )
            known = [i for i, p in enumerate(pending) if p.label is not None]
            if known:
                self.confusion += confusion_counts(
                    detected.predictions[known],
                    np.array([pending[i].label for i in known]),
                )
            for i, request in enumerate(pending):
                if request.span is not None:
                    request.span.end(
                        status="served",
                        tier=self.tier_names[served],
                        model_version=version,
                        latency_ms=float(latencies[i]),
                    )
                    request.span = None
                if not request.future.done():
                    request.future.set_result(
                        ServeResult(
                            device_id=request.device_id,
                            status="served",
                            prediction=int(detected.predictions[i]),
                            anomaly_score=float(detected.anomaly_scores[i]),
                            layer=served,
                            simulated_delay_ms=float(detected.delays_ms[i]),
                            latency_ms=float(latencies[i]),
                            model_version=version,
                            label=request.label,
                        )
                    )
        except Exception as exc:  # pragma: no cover - defensive
            for request in pending:
                if not request.future.done():
                    request.future.set_exception(exc)
            raise
        finally:
            sem.release()
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()
