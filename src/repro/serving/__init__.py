"""Online serving front door for the trained HEC system.

The packages below turn the closed-loop simulation into request/response
serving under real queueing:

* :mod:`repro.serving.spec` — the frozen, ``--set serve.*``-able
  :class:`~repro.serving.spec.ServingSpec` (micro-batcher, admission
  control, SLO, offered load);
* :mod:`repro.serving.server` — the asyncio
  :class:`~repro.serving.server.IngestServer`: micro-batching into
  ``detect_batch_columnar``, bounded-queue load shedding, per-tier
  concurrency backpressure and the drain-and-swap deployment gate;
* :mod:`repro.serving.loadgen` — the open-loop
  :class:`~repro.serving.loadgen.OpenLoopLoadGenerator` backed by
  :class:`~repro.fleet.devices.DeviceFleet`;
* :mod:`repro.serving.report` — the serialisable
  :class:`~repro.serving.report.ServingReport`;
* :mod:`repro.serving.run` — :func:`~repro.serving.run.serve_workload`, the
  one-call orchestration used by the runner's ``serve`` stage, the
  ``repro serve`` CLI and ``benchmarks/bench_serving.py``.
"""

from repro.serving.loadgen import OpenLoopLoadGenerator
from repro.serving.report import ServingReport, ServingTierUsage, report_from_server
from repro.serving.run import blue_green_swap, serve_workload
from repro.serving.server import IngestServer, ServeResult
from repro.serving.spec import SHED_POLICIES, ServingSpec

__all__ = [
    "SHED_POLICIES",
    "ServingSpec",
    "IngestServer",
    "ServeResult",
    "OpenLoopLoadGenerator",
    "ServingReport",
    "ServingTierUsage",
    "report_from_server",
    "serve_workload",
    "blue_green_swap",
]
