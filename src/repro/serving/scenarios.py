"""Registered serving scenarios.

Imported for its registration side effects by :mod:`repro.experiments` (the
same pattern as :mod:`repro.fleet.scenarios`): each scenario extends a base
experiment with a ``fleet`` node (the traffic source) and a ``serve`` node
(the front-door configuration), so ``repro serve <name>`` works out of the
box and every knob stays ``--set serve.*``-able.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.registry import register_scenario
from repro.experiments.scenarios import univariate_power
from repro.fleet.spec import FleetSpec
from repro.serving.spec import ServingSpec


@register_scenario("serve-front-door", tags=("serving", "extended"))
def serve_front_door():
    """Open-loop online serving of the univariate fleet (micro-batching, SLO)."""
    return replace(
        univariate_power(),
        name="serve-front-door",
        description=(
            "Serve the univariate power fleet through the asyncio ingest front "
            "door: micro-batched detection, bounded ingress queue with load "
            "shedding, and a p99 latency SLO over an open-loop Poisson arrival "
            "stream."
        ),
        fleet=FleetSpec(n_devices=200, ticks=40, arrival_rate=0.5, anomaly_rate=0.08),
        serve=ServingSpec(),
    )
