"""The serialisable result of one serving run.

A :class:`ServingReport` summarises what the front door did under one
open-loop load: request conservation (submitted = served + rejected + shed +
expired, with the residue pinned at zero), offered vs achieved throughput,
measured latency percentiles against the p99 SLO, micro-batch shape, per-tier
utilisation, detection quality over the served traffic, and the hot swaps
that landed mid-run.

Unlike :class:`~repro.fleet.report.FleetReport`, a serving report is
inherently wall-clock — two runs of the same spec will not compare equal —
so CI gates only its machine-relative leaves (ratios and the SLO pass/fail
booleans; see ``benchmarks/compare_results.py --preset serving``).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.fleet.metrics import rates_from_confusion
from repro.fleet.report import DelaySummary
from repro.serving.server import IngestServer
from repro.utils.serialization import load_json, save_json, to_jsonable

PathLike = Union[str, Path]


@dataclass(frozen=True)
class ServingTierUsage:
    """How much of the served traffic one tier handled."""

    layer: int
    tier: str
    requests: int
    fraction: float
    #: Requests redirected *to* this tier because the chosen one was
    #: unreachable (zero on healthy runs).
    redirected: int = 0

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ServingTierUsage":
        return cls(**dict(payload))


@dataclass(frozen=True)
class ServingReport:
    """Everything one open-loop serving run produced."""

    name: str
    # -- request conservation ---------------------------------------------------
    n_submitted: int
    n_served: int
    n_rejected: int
    n_shed: int
    n_expired: int
    #: ``n_submitted - n_served - n_rejected - n_shed - n_expired``; the
    #: zero-drop contract, pinned at 0 by the serving tests.
    n_dropped: int
    shed_rate: float
    # -- throughput --------------------------------------------------------------
    offered_rps: float
    achieved_rps: float
    duration_seconds: float
    # -- SLO ---------------------------------------------------------------------
    slo_p99_ms: float
    slo_met: bool
    # -- micro-batching ----------------------------------------------------------
    n_batches: int
    mean_batch_size: float
    max_batch_size: int
    # -- latency & quality -------------------------------------------------------
    #: Measured wall-clock service latency of *served* requests.
    latency: DelaySummary
    mean_simulated_delay_ms: float
    accuracy: float
    f1: float
    tiers: Tuple[ServingTierUsage, ...]
    # -- deployments -------------------------------------------------------------
    n_swaps: int
    swap_versions: Tuple[int, ...]
    shed_policy: str
    # -- fault injection ---------------------------------------------------------
    #: Backoff retries spent against tiers behind a down link (0 on healthy
    #: runs; defaulted so pre-fault-injection payloads still load).
    n_retries: int = 0

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready nested dictionary."""
        return to_jsonable(dataclasses.asdict(self))

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ServingReport":
        kwargs = dict(payload)
        unknown = sorted(set(kwargs) - {f.name for f in dataclasses.fields(cls)})
        if unknown:
            raise ConfigurationError(
                f"unknown key(s) {unknown} in serving report payload"
            )
        kwargs["tiers"] = tuple(
            t if isinstance(t, ServingTierUsage) else ServingTierUsage.from_dict(t)
            for t in kwargs.get("tiers", ())
        )
        latency = kwargs.get("latency")
        if latency is not None and not isinstance(latency, DelaySummary):
            kwargs["latency"] = DelaySummary.from_dict(latency)
        kwargs["swap_versions"] = tuple(kwargs.get("swap_versions", ()))
        return cls(**kwargs)

    def to_json(self, path: PathLike) -> Path:
        """Write the report as pretty-printed JSON; returns the path."""
        return save_json(path, self.to_dict())

    @classmethod
    def from_json(cls, path: PathLike) -> "ServingReport":
        """Load a report written by :meth:`to_json`."""
        return cls.from_dict(load_json(path))

    # -- presentation ------------------------------------------------------------

    def summary(self) -> str:
        """Short plain-text summary of the run."""
        slo = "met" if self.slo_met else "MISSED"
        lines = [
            f"Serving report for {self.name}:",
            f"  {self.n_submitted} requests offered at {self.offered_rps:.0f} rps "
            f"over {self.duration_seconds:.2f} s -> {self.n_served} served "
            f"({self.achieved_rps:.0f} rps achieved)",
            f"  shed: {self.n_rejected} rejected, {self.n_shed} evicted, "
            f"{self.n_expired} expired ({100 * self.shed_rate:.1f}% of offered; "
            f"policy {self.shed_policy}); dropped: {self.n_dropped}",
            f"  latency p50={self.latency.p50_ms:.1f} ms  p90={self.latency.p90_ms:.1f}  "
            f"p99={self.latency.p99_ms:.1f}  (SLO {self.slo_p99_ms:.0f} ms: {slo})",
            f"  micro-batches: {self.n_batches} "
            f"(mean {self.mean_batch_size:.1f}, max {self.max_batch_size} requests)",
            f"  served-traffic accuracy={100 * self.accuracy:.2f}%  F1={self.f1:.3f}  "
            f"mean simulated delay={self.mean_simulated_delay_ms:.1f} ms",
        ]
        for tier in self.tiers:
            lines.append(
                f"  tier {tier.tier:<8s} {tier.requests:>8d} served "
                f"({100 * tier.fraction:5.1f}%)"
                + (f"  [{tier.redirected} redirected]" if tier.redirected else "")
            )
        if self.n_retries:
            lines.append(f"  fault retries: {self.n_retries} (backoff before failover)")
        if self.n_swaps:
            versions = " -> ".join(f"v{v}" for v in self.swap_versions)
            lines.append(f"  hot swaps: {self.n_swaps} ({versions})")
        return "\n".join(lines)


def report_from_server(
    server: IngestServer,
    *,
    name: str,
    duration_seconds: float,
) -> ServingReport:
    """Assemble the immutable :class:`ServingReport` from a stopped server."""
    serving = server.serving
    n_dropped = (
        server.n_submitted
        - server.n_served
        - server.n_rejected
        - server.n_shed
        - server.n_expired
    )
    p99 = server.latency.percentile(99.0)
    quality = rates_from_confusion(server.confusion)
    tiers = []
    for layer, tier in enumerate(server.tier_names):
        requests = int(server.tier_served[layer])
        tiers.append(
            ServingTierUsage(
                layer=layer,
                tier=tier,
                requests=requests,
                fraction=float(requests / server.n_served) if server.n_served else 0.0,
                redirected=int(server.tier_redirected[layer]),
            )
        )
    latency = DelaySummary(
        mean_ms=(
            float(server.latency_sum_ms / server.n_served) if server.n_served else 0.0
        ),
        p50_ms=server.latency.percentile(50.0),
        p90_ms=server.latency.percentile(90.0),
        p99_ms=p99,
        max_ms=float(server.latency_max_ms),
        samples_seen=int(server.latency.seen),
        reservoir_size=int(server.latency.capacity),
    )
    return ServingReport(
        name=name,
        n_submitted=int(server.n_submitted),
        n_served=int(server.n_served),
        n_rejected=int(server.n_rejected),
        n_shed=int(server.n_shed),
        n_expired=int(server.n_expired),
        n_dropped=int(n_dropped),
        shed_rate=(
            float(server.total_shed / server.n_submitted) if server.n_submitted else 0.0
        ),
        offered_rps=float(serving.offered_rps),
        achieved_rps=(
            float(server.n_served / duration_seconds) if duration_seconds > 0 else 0.0
        ),
        duration_seconds=float(duration_seconds),
        slo_p99_ms=float(serving.slo_p99_ms),
        slo_met=bool(
            server.n_served > 0 and not math.isnan(p99) and p99 <= serving.slo_p99_ms
        ),
        n_batches=int(server.n_batches),
        mean_batch_size=(
            float(server.batched_requests / server.n_batches) if server.n_batches else 0.0
        ),
        max_batch_size=int(server.max_batch_size),
        latency=latency,
        mean_simulated_delay_ms=(
            float(server.simulated_delay_sum / server.n_served) if server.n_served else 0.0
        ),
        accuracy=quality["accuracy"],
        f1=quality["f1"],
        tiers=tuple(tiers),
        n_swaps=int(server.n_swaps),
        swap_versions=tuple(int(v) for v in server.swap_versions),
        shed_policy=serving.shed_policy,
        n_retries=int(server.n_retries),
    )
