"""Open-loop load generation for the serving front door.

:class:`OpenLoopLoadGenerator` turns a :class:`~repro.fleet.devices.DeviceFleet`
into request traffic: it materialises the fleet's deterministic arrival
stream up front (windows, labels, device ids), then replays it against an
:class:`~repro.serving.server.IngestServer` with exponential inter-arrival
times at ``serve.offered_rps``.

The generator is *open loop*: arrivals follow their schedule regardless of
how fast responses come back (each submission is a fire-and-forget task), so
the arrival process is decoupled from the service rate and queueing under
overload is real.  Each submission passes its *scheduled* send time as the
arrival timestamp — if the generator itself lags, that lag lands in the
measured latency instead of silently stretching the schedule (no coordinated
omission).
"""

from __future__ import annotations

import asyncio
from typing import List

import numpy as np

from repro.exceptions import ConfigurationError
from repro.fleet.devices import DeviceFleet
from repro.serving.server import IngestServer, ServeResult
from repro.serving.spec import ServingSpec

#: SeedSequence entropy tag for the arrival-timing draws.
_ARRIVAL_TAG = 0x10AD


class OpenLoopLoadGenerator:
    """Replay a device fleet's arrival stream as open-loop request traffic."""

    def __init__(
        self,
        fleet: DeviceFleet,
        serving: ServingSpec,
        master_seed: int = 0,
    ) -> None:
        self.serving = serving
        # Columnar arrivals must be drawn sequentially from tick 0 (the fleet
        # contract), so the request stream is materialised once, up front.
        windows, labels, device_ids, ticks = [], [], [], []
        collected = 0
        for tick in range(fleet.spec.ticks):
            batch = fleet.arrivals_columnar(tick)
            if collected >= serving.max_requests:
                continue  # keep draining ticks to respect the sequencing contract
            take = min(batch.windows.shape[0], serving.max_requests - collected)
            if take:
                windows.append(batch.windows[:take])
                labels.append(batch.labels[:take])
                device_ids.append(batch.device_ids[:take])
                ticks.append(np.full(take, tick, dtype=np.int64))
                collected += take
        if not collected:
            raise ConfigurationError(
                "the fleet produced no arrivals to serve; raise fleet.ticks, "
                "fleet.n_devices or fleet.arrival_rate"
            )
        self.windows = np.concatenate(windows, axis=0)
        self.labels = np.concatenate(labels, axis=0)
        self.device_ids = np.concatenate(device_ids, axis=0)
        #: Origin fleet tick per request (drives serving-path fault windows).
        self.ticks = np.concatenate(ticks, axis=0)
        rng = np.random.default_rng(
            np.random.SeedSequence(
                [int(e) & 0xFFFFFFFF for e in (master_seed, serving.seed, _ARRIVAL_TAG)]
            )
        )
        # Scheduled offsets from the run start: exponential inter-arrivals at
        # the offered rate (a Poisson arrival process).  With a fleet load
        # curve the *same* time-varying multiplier that drove the device
        # Poisson rates modulates the offered rate per request, so the flash
        # crowd hits the front door in the same tick windows it hit the fleet.
        if fleet.spec.load_curve is None:
            gaps = rng.exponential(1.0 / serving.offered_rps, size=self.n_requests)
        else:
            multipliers = np.array(
                [fleet.spec.rate_multiplier(t) for t in range(fleet.spec.ticks)]
            )
            rates = serving.offered_rps * multipliers[self.ticks]
            gaps = rng.exponential(1.0, size=self.n_requests) / rates
        self.offsets = np.cumsum(gaps)

    @property
    def n_requests(self) -> int:
        """How many requests the generator will offer."""
        return int(self.windows.shape[0])

    async def run(self, server: IngestServer) -> List[ServeResult]:
        """Offer the whole stream; returns results in submission order.

        Resolves once every submission has a result (served, rejected or
        shed) — the returned list is conservation-complete by construction.
        """
        loop = asyncio.get_running_loop()
        start = loop.time()
        tasks = []
        for i in range(self.n_requests):
            target = start + float(self.offsets[i])
            delay = target - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(
                asyncio.create_task(
                    server.submit(
                        int(self.device_ids[i]),
                        self.windows[i],
                        label=int(self.labels[i]),
                        arrival_time=target,
                        tick=int(self.ticks[i]),
                    )
                )
            )
        return list(await asyncio.gather(*tasks))
