"""Experiment reporting: persist pipeline results as JSON and Markdown.

A :class:`~repro.pipelines.common.PipelineResult` contains everything needed
to regenerate the paper's tables for one dataset.  This module serialises that
result into two artefacts:

* ``<name>.json`` — machine-readable summary (Table I rows, Table II rows,
  bandit training log, layer usage), suitable for further analysis;
* ``<name>.md`` — a human-readable Markdown report with the measured tables
  side by side with the paper's reference numbers.

These are the files EXPERIMENTS.md points to and the benchmark harness links
against.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.evaluation.tables import PAPER_TABLE1, PAPER_TABLE2
from repro.utils.serialization import save_json

PathLike = Union[str, Path]

#: Row order used for the scheme table, matching the paper's Table II.
SCHEME_ORDER = ("IoT Device", "Edge", "Cloud", "Successive", "Our Method")


def result_to_dict(result) -> Dict:
    """Convert a :class:`PipelineResult` into a JSON-serialisable dictionary."""
    return {
        "dataset": result.dataset_name,
        "table1": [row.as_dict() for row in result.table1_rows],
        "table2": [row.as_dict() for row in result.table2_rows],
        "layer_usage": {
            name: {str(layer): count for layer, count in evaluation.layer_usage.items()}
            for name, evaluation in result.evaluations.items()
        },
        "bandit_training": {
            "episodes": result.bandit_log.episodes,
            "episode_mean_rewards": list(result.bandit_log.episode_mean_rewards),
            "final_action_distribution": result.bandit_log.final_action_distribution().tolist(),
        },
        "policy": result.policy.get_config(),
        "deployments": [
            {
                "layer": deployment.layer,
                "model": deployment.detector.name,
                "device": deployment.device_name,
                "quantized": deployment.quantized,
                "execution_time_ms": deployment.execution_time_ms,
                "parameters": deployment.detector.parameter_count(),
            }
            for deployment in result.deployments
        ],
        "n_test_windows": int(result.test_labels.shape[0]),
    }


def _markdown_table(headers: List[str], rows: List[List[str]]) -> str:
    lines = ["| " + " | ".join(headers) + " |", "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def _fmt(value, digits: int = 3) -> str:
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def result_to_markdown(result, title: Optional[str] = None) -> str:
    """Render a Markdown report comparing measured values against the paper."""
    dataset = result.dataset_name
    lines = [f"# {title or f'Reproduction report: {dataset} dataset'}", ""]

    # Table I ---------------------------------------------------------------
    lines.append("## Table I — comparison among AD models")
    lines.append("")
    headers = ["Tier", "Model", "Params (ours)", "Params (paper)",
               "Accuracy % (ours)", "Accuracy % (paper)", "F1 (ours)", "F1 (paper)",
               "Exec ms (ours)", "Exec ms (paper)"]
    rows = []
    for row in result.table1_rows:
        reference = PAPER_TABLE1.get((dataset, row.tier), {})
        rows.append([
            row.tier,
            row.model_name,
            str(row.parameter_count),
            str(reference.get("parameters", "-")),
            _fmt(100.0 * row.accuracy, 2),
            _fmt(reference.get("accuracy_percent", float("nan")), 2),
            _fmt(row.f1),
            _fmt(reference.get("f1", float("nan"))),
            _fmt(row.execution_time_ms, 1),
            _fmt(reference.get("execution_time_ms", float("nan")), 1),
        ])
    lines.append(_markdown_table(headers, rows))
    lines.append("")

    # Table II --------------------------------------------------------------
    lines.append("## Table II — comparison among model-selection schemes")
    lines.append("")
    headers = ["Scheme", "F1 (ours)", "F1 (paper)", "Accuracy % (ours)", "Accuracy % (paper)",
               "Delay ms (ours)", "Delay ms (paper)", "Reward (ours)", "Reward (paper)"]
    rows = []
    by_name = {row.scheme: row for row in result.table2_rows}
    # Paper order first, then any extra schemes (custom-topology fixed layers)
    # in their evaluation order.
    ordered = [name for name in SCHEME_ORDER if name in by_name]
    ordered += [row.scheme for row in result.table2_rows if row.scheme not in ordered]
    for name in ordered:
        row = by_name[name]
        reference = PAPER_TABLE2.get((dataset, name), {})
        rows.append([
            name,
            _fmt(row.f1),
            _fmt(reference.get("f1", float("nan"))),
            _fmt(100.0 * row.accuracy, 2),
            _fmt(reference.get("accuracy_percent", float("nan")), 2),
            _fmt(row.delay_ms, 1),
            _fmt(reference.get("delay_ms", float("nan")), 1),
            _fmt(row.reward, 2),
            _fmt(reference.get("reward", float("nan")), 2),
        ])
    lines.append(_markdown_table(headers, rows))
    lines.append("")

    # Adaptive-scheme detail -------------------------------------------------
    adaptive = result.evaluations.get("Our Method")
    cloud = result.evaluations.get("Cloud")
    if adaptive is not None and cloud is not None and cloud.mean_delay_ms > 0:
        delay_reduction = 100.0 * (1.0 - adaptive.mean_delay_ms / cloud.mean_delay_ms)
        lines.append("## Adaptive scheme summary")
        lines.append("")
        lines.append(
            f"* end-to-end delay reduction vs always-cloud: **{delay_reduction:.1f}%** "
            f"(paper reports 71.4% univariate / 7.84% multivariate)"
        )
        lines.append(f"* accuracy gap to always-cloud: "
                     f"{100.0 * (cloud.accuracy - adaptive.accuracy):.2f} percentage points")
        lines.append(f"* requests per layer: {adaptive.layer_usage}")
        lines.append("")
    return "\n".join(lines)


def write_report(result, directory: PathLike, name: Optional[str] = None) -> Dict[str, Path]:
    """Write the JSON and Markdown reports for one pipeline result.

    Returns a dict with the paths of the written files (keys ``"json"`` and
    ``"markdown"``).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = name or f"report_{result.dataset_name}"
    json_path = save_json(directory / f"{stem}.json", result_to_dict(result))
    markdown_path = directory / f"{stem}.md"
    markdown_path.write_text(result_to_markdown(result) + "\n", encoding="utf-8")
    return {"json": json_path, "markdown": markdown_path}
