"""Binary anomaly-detection metrics: accuracy, precision, recall, F1.

The positive class is "anomalous" (label 1) throughout, matching the paper's
F1-score convention.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ShapeError
from repro.utils.validation import check_binary_labels


@dataclass(frozen=True)
class ConfusionCounts:
    """Binary confusion-matrix counts with the anomaly class as positive."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def total(self) -> int:
        """Total number of evaluated windows."""
        return (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )


def _check_pair(predictions, labels) -> tuple[np.ndarray, np.ndarray]:
    predictions = check_binary_labels(predictions, "predictions")
    labels = check_binary_labels(labels, "labels")
    if predictions.shape != labels.shape:
        raise ShapeError(
            f"predictions {predictions.shape} and labels {labels.shape} must have the same shape"
        )
    return predictions, labels


def confusion_counts(predictions, labels) -> ConfusionCounts:
    """Compute the binary confusion counts (anomaly = positive class)."""
    predictions, labels = _check_pair(predictions, labels)
    true_positives = int(np.sum((predictions == 1) & (labels == 1)))
    false_positives = int(np.sum((predictions == 1) & (labels == 0)))
    true_negatives = int(np.sum((predictions == 0) & (labels == 0)))
    false_negatives = int(np.sum((predictions == 0) & (labels == 1)))
    return ConfusionCounts(true_positives, false_positives, true_negatives, false_negatives)


def accuracy_score(predictions, labels) -> float:
    """Fraction of windows classified correctly."""
    predictions, labels = _check_pair(predictions, labels)
    if predictions.size == 0:
        return 0.0
    return float(np.mean(predictions == labels))


def precision_score(predictions, labels) -> float:
    """Precision of the anomaly class (0 when nothing was predicted anomalous)."""
    counts = confusion_counts(predictions, labels)
    denominator = counts.true_positives + counts.false_positives
    if denominator == 0:
        return 0.0
    return counts.true_positives / denominator


def recall_score(predictions, labels) -> float:
    """Recall of the anomaly class (0 when no anomaly exists)."""
    counts = confusion_counts(predictions, labels)
    denominator = counts.true_positives + counts.false_negatives
    if denominator == 0:
        return 0.0
    return counts.true_positives / denominator


def f1_score(predictions, labels) -> float:
    """Harmonic mean of precision and recall (0 when both are 0)."""
    precision = precision_score(predictions, labels)
    recall = recall_score(predictions, labels)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def detection_report(predictions, labels) -> dict:
    """All metrics in one dictionary (used by tables and the demo panel)."""
    counts = confusion_counts(predictions, labels)
    return {
        "accuracy": accuracy_score(predictions, labels),
        "precision": precision_score(predictions, labels),
        "recall": recall_score(predictions, labels),
        "f1": f1_score(predictions, labels),
        "true_positives": counts.true_positives,
        "false_positives": counts.false_positives,
        "true_negatives": counts.true_negatives,
        "false_negatives": counts.false_negatives,
        "n_windows": counts.total,
    }


def cumulative_accuracy(predictions, labels) -> np.ndarray:
    """Running accuracy after each window (the demo panel's accuracy curve)."""
    predictions, labels = _check_pair(predictions, labels)
    if predictions.size == 0:
        return np.array([])
    correct = (predictions == labels).astype(float)
    return np.cumsum(correct) / np.arange(1, len(correct) + 1)


def cumulative_f1(predictions, labels) -> np.ndarray:
    """Running F1-score after each window (the demo panel's F1 curve)."""
    predictions, labels = _check_pair(predictions, labels)
    scores = np.zeros(len(predictions))
    for index in range(len(predictions)):
        scores[index] = f1_score(predictions[: index + 1], labels[: index + 1])
    return scores
