"""Evaluation: detection metrics, experiment running and table/figure generation."""

from repro.evaluation.metrics import (
    ConfusionCounts,
    confusion_counts,
    accuracy_score,
    precision_score,
    recall_score,
    f1_score,
    detection_report,
)
from repro.evaluation.experiment import SchemeEvaluation, evaluate_scheme, evaluate_outcomes
from repro.evaluation.tables import ModelComparisonRow, SchemeComparisonRow, format_table
from repro.evaluation.figures import DemoPanelSeries, build_demo_panel_series

__all__ = [
    "ConfusionCounts",
    "confusion_counts",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "detection_report",
    "SchemeEvaluation",
    "evaluate_scheme",
    "evaluate_outcomes",
    "ModelComparisonRow",
    "SchemeComparisonRow",
    "format_table",
    "DemoPanelSeries",
    "build_demo_panel_series",
]
