"""Scheme evaluation: run a selection scheme over a test set and aggregate metrics.

This produces exactly the quantities of the paper's Table II: F1, accuracy,
mean end-to-end delay and cumulative reward per scheme, plus the per-layer
usage distribution that explains *why* a scheme achieves its delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.bandit.reward import RewardFunction
from repro.evaluation.metrics import accuracy_score, f1_score
from repro.schemes.base import SchemeOutcome, SelectionScheme


@dataclass
class SchemeEvaluation:
    """Aggregated evaluation of one scheme on one test set."""

    scheme_name: str
    f1: float
    accuracy: float
    mean_delay_ms: float
    total_reward: float
    mean_reward: float
    n_windows: int
    layer_usage: Dict[int, int] = field(default_factory=dict)
    predictions: np.ndarray = field(default_factory=lambda: np.array([], dtype=int))
    labels: np.ndarray = field(default_factory=lambda: np.array([], dtype=int))
    delays_ms: np.ndarray = field(default_factory=lambda: np.array([]))
    layers: np.ndarray = field(default_factory=lambda: np.array([], dtype=int))

    def as_dict(self) -> dict:
        """A JSON-friendly summary (without the per-window arrays)."""
        return {
            "scheme": self.scheme_name,
            "f1": self.f1,
            "accuracy": self.accuracy,
            "accuracy_percent": 100.0 * self.accuracy,
            "mean_delay_ms": self.mean_delay_ms,
            "total_reward": self.total_reward,
            "mean_reward": self.mean_reward,
            "n_windows": self.n_windows,
            "layer_usage": {str(k): v for k, v in self.layer_usage.items()},
        }


def evaluate_outcomes(
    scheme_name: str,
    outcomes: List[SchemeOutcome],
    labels: np.ndarray,
    reward_fn: Optional[RewardFunction] = None,
) -> SchemeEvaluation:
    """Aggregate a list of scheme outcomes against the ground-truth labels."""
    labels = np.asarray(labels, dtype=int)
    if len(outcomes) != labels.shape[0]:
        raise ValueError(
            f"got {len(outcomes)} outcomes for {labels.shape[0]} labels"
        )
    predictions = np.asarray([outcome.prediction for outcome in outcomes], dtype=int)
    delays = np.asarray([outcome.delay_ms for outcome in outcomes], dtype=float)
    layers = np.asarray([outcome.layer for outcome in outcomes], dtype=int)

    correct = (predictions == labels).astype(float)
    if reward_fn is not None:
        rewards = reward_fn.batch(correct, delays)
        total_reward = float(rewards.sum())
        mean_reward = float(rewards.mean()) if rewards.size else 0.0
    else:
        total_reward = float("nan")
        mean_reward = float("nan")

    usage: Dict[int, int] = {}
    for layer in layers:
        usage[int(layer)] = usage.get(int(layer), 0) + 1

    return SchemeEvaluation(
        scheme_name=scheme_name,
        f1=f1_score(predictions, labels),
        accuracy=accuracy_score(predictions, labels),
        mean_delay_ms=float(delays.mean()) if delays.size else 0.0,
        total_reward=total_reward,
        mean_reward=mean_reward,
        n_windows=int(labels.shape[0]),
        layer_usage=usage,
        predictions=predictions,
        labels=labels,
        delays_ms=delays,
        layers=layers,
    )


def evaluate_scheme(
    scheme: SelectionScheme,
    windows: np.ndarray,
    labels: np.ndarray,
    reward_fn: Optional[RewardFunction] = None,
    reset_system: bool = True,
    batched: bool = True,
) -> SchemeEvaluation:
    """Run ``scheme`` over ``windows`` and aggregate the results.

    ``reset_system=True`` (default) clears the HEC system's event log, clock
    and link state before the run so evaluations of different schemes against
    the same system are independent.  ``batched=True`` (default) drives the
    scheme through its vectorised :meth:`~repro.schemes.base.SelectionScheme.run_batch`
    path; set it to ``False`` to force the one-window-at-a-time loop.
    """
    if reset_system:
        scheme.system.reset()
    windows = np.asarray(windows, dtype=float)
    labels_array = np.asarray(labels, dtype=int)
    if batched:
        outcomes = scheme.run_batch(windows, labels_array)
    else:
        outcomes = scheme.run(windows, labels_array)
    return evaluate_outcomes(scheme.name, outcomes, labels, reward_fn=reward_fn)
