"""Generators for the paper's Table I and Table II.

Table I compares the anomaly-detection models themselves (parameters,
accuracy, F1, execution time per layer); Table II compares the five
model-selection schemes (F1, accuracy, end-to-end delay, cumulative reward).
``format_table`` renders either as aligned plain text, which is what the
benchmark harness prints alongside the paper's reference numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.detectors.base import AnomalyDetector
from repro.evaluation.experiment import SchemeEvaluation
from repro.evaluation.metrics import accuracy_score, f1_score


@dataclass
class ModelComparisonRow:
    """One column of Table I (one model at one HEC layer)."""

    dataset: str
    tier: str
    model_name: str
    parameter_count: int
    accuracy: float
    f1: float
    execution_time_ms: float

    def as_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "dataset": self.dataset,
            "tier": self.tier,
            "model": self.model_name,
            "parameters": self.parameter_count,
            "accuracy_percent": 100.0 * self.accuracy,
            "f1": self.f1,
            "execution_time_ms": self.execution_time_ms,
        }


@dataclass
class SchemeComparisonRow:
    """One row of Table II (one selection scheme on one dataset)."""

    dataset: str
    scheme: str
    f1: float
    accuracy: float
    delay_ms: float
    reward: float

    def as_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "dataset": self.dataset,
            "scheme": self.scheme,
            "f1": self.f1,
            "accuracy_percent": 100.0 * self.accuracy,
            "delay_ms": self.delay_ms,
            "reward": self.reward,
        }


def model_comparison_row(
    dataset: str,
    tier: str,
    detector: AnomalyDetector,
    test_windows: np.ndarray,
    test_labels: np.ndarray,
    execution_time_ms: float,
) -> ModelComparisonRow:
    """Evaluate one detector in isolation and build its Table I column."""
    predictions = detector.predict(test_windows)
    return ModelComparisonRow(
        dataset=dataset,
        tier=tier,
        model_name=detector.name,
        parameter_count=detector.parameter_count(),
        accuracy=accuracy_score(predictions, test_labels),
        f1=f1_score(predictions, test_labels),
        execution_time_ms=execution_time_ms,
    )


def scheme_comparison_row(dataset: str, evaluation: SchemeEvaluation) -> SchemeComparisonRow:
    """Convert a :class:`SchemeEvaluation` into its Table II row."""
    return SchemeComparisonRow(
        dataset=dataset,
        scheme=evaluation.scheme_name,
        f1=evaluation.f1,
        accuracy=evaluation.accuracy,
        delay_ms=evaluation.mean_delay_ms,
        reward=evaluation.total_reward,
    )


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[List[str]] = None,
    float_format: str = "{:.3f}",
    title: Optional[str] = None,
) -> str:
    """Render dictionaries as an aligned plain-text table."""
    rows = [dict(row) for row in rows]
    if not rows:
        return title or ""
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered)) for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
    return "\n".join(lines)


#: Reference values from the paper, used by benchmarks and EXPERIMENTS.md to
#: report paper-vs-measured side by side.  Keys: (dataset, tier) for Table I
#: and (dataset, scheme) for Table II.
PAPER_TABLE1: Dict[tuple, dict] = {
    ("univariate", "iot"): {"parameters": 271_017, "accuracy_percent": 78.09, "f1": 0.465, "execution_time_ms": 12.4},
    ("univariate", "edge"): {"parameters": 949_468, "accuracy_percent": 93.33, "f1": 0.741, "execution_time_ms": 7.4},
    ("univariate", "cloud"): {"parameters": 1_085_077, "accuracy_percent": 98.09, "f1": 0.909, "execution_time_ms": 4.5},
    ("multivariate", "iot"): {"parameters": 28_518, "accuracy_percent": 82.63, "f1": 0.852, "execution_time_ms": 591.0},
    ("multivariate", "edge"): {"parameters": 97_818, "accuracy_percent": 94.21, "f1": 0.955, "execution_time_ms": 417.3},
    ("multivariate", "cloud"): {"parameters": 1_028_018, "accuracy_percent": 97.37, "f1": 0.980, "execution_time_ms": 232.3},
}

PAPER_TABLE2: Dict[tuple, dict] = {
    ("univariate", "IoT Device"): {"f1": 0.465, "accuracy_percent": 93.68, "delay_ms": 12.4, "reward": 48.39},
    ("univariate", "Edge"): {"f1": 0.800, "accuracy_percent": 98.63, "delay_ms": 257.43, "reward": 45.36},
    ("univariate", "Cloud"): {"f1": 0.909, "accuracy_percent": 99.46, "delay_ms": 504.50, "reward": 41.24},
    ("univariate", "Successive"): {"f1": 0.769, "accuracy_percent": 98.35, "delay_ms": 105.27, "reward": float("nan")},
    ("univariate", "Our Method"): {"f1": 0.870, "accuracy_percent": 99.17, "delay_ms": 144.50, "reward": 49.52},
    ("multivariate", "IoT Device"): {"f1": 0.848, "accuracy_percent": 93.19, "delay_ms": 591.0, "reward": 389.85},
    ("multivariate", "Edge"): {"f1": 0.951, "accuracy_percent": 97.59, "delay_ms": 667.30, "reward": 403.77},
    ("multivariate", "Cloud"): {"f1": 0.980, "accuracy_percent": 99.00, "delay_ms": 732.30, "reward": 404.12},
    ("multivariate", "Successive"): {"f1": 0.911, "accuracy_percent": 95.79, "delay_ms": 626.16, "reward": float("nan")},
    ("multivariate", "Our Method"): {"f1": 0.972, "accuracy_percent": 98.60, "delay_ms": 674.87, "reward": 408.06},
}
