"""Demo result-panel series (Fig. 3b of the paper).

The paper's GUI continuously plots, for the selected dataset and scheme:

* the raw sensory signals,
* the anomaly-detection outcome (0/1) versus the ground truth,
* the detection delay versus the action (layer) chosen by the policy network,
* the cumulative accuracy and F1-score.

:func:`build_demo_panel_series` produces exactly those series from a list of
scheme outcomes, so examples and benchmarks can print/plot the same content
without a GUI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.evaluation.metrics import cumulative_accuracy, cumulative_f1
from repro.schemes.base import SchemeOutcome


@dataclass
class DemoPanelSeries:
    """The time series shown in the demo's result panel."""

    window_indices: np.ndarray
    predictions: np.ndarray
    ground_truth: np.ndarray
    delays_ms: np.ndarray
    actions: np.ndarray
    cumulative_accuracy: np.ndarray
    cumulative_f1: np.ndarray
    raw_signal_preview: Optional[np.ndarray] = None
    scheme_name: str = ""

    def summary_lines(self, max_rows: int = 10) -> List[str]:
        """A compact textual rendering of the panel (first ``max_rows`` windows)."""
        lines = [
            f"Demo panel — scheme: {self.scheme_name}",
            "idx  pred  truth  layer  delay_ms  cum_acc  cum_f1",
        ]
        for i in range(min(max_rows, len(self.window_indices))):
            lines.append(
                f"{int(self.window_indices[i]):3d}  "
                f"{int(self.predictions[i]):4d}  "
                f"{int(self.ground_truth[i]):5d}  "
                f"{int(self.actions[i]):5d}  "
                f"{self.delays_ms[i]:8.1f}  "
                f"{self.cumulative_accuracy[i]:7.3f}  "
                f"{self.cumulative_f1[i]:6.3f}"
            )
        if len(self.window_indices) > max_rows:
            lines.append(f"... ({len(self.window_indices) - max_rows} more windows)")
        return lines


def demo_panel_from_evaluation(evaluation, scheme_name: str = "") -> DemoPanelSeries:
    """Assemble the demo-panel series from a finished :class:`SchemeEvaluation`.

    The evaluation already stores the per-window prediction/delay/action
    arrays, so no outcome objects are needed — this is what the experiment
    runner uses to attach the adaptive scheme's panel to a pipeline result.
    """
    predictions = np.asarray(evaluation.predictions, dtype=int)
    labels = np.asarray(evaluation.labels, dtype=int)
    return DemoPanelSeries(
        window_indices=np.arange(len(labels)),
        predictions=predictions,
        ground_truth=labels,
        delays_ms=np.asarray(evaluation.delays_ms, dtype=float),
        actions=np.asarray(evaluation.layers, dtype=int),
        cumulative_accuracy=cumulative_accuracy(predictions, labels),
        cumulative_f1=cumulative_f1(predictions, labels),
        scheme_name=scheme_name or evaluation.scheme_name,
    )


def build_demo_panel_series(
    outcomes: List[SchemeOutcome],
    labels: np.ndarray,
    windows: Optional[np.ndarray] = None,
    scheme_name: str = "",
) -> DemoPanelSeries:
    """Assemble the demo-panel series from scheme outcomes and ground truth.

    ``windows`` is optional; when provided, the mean over channels of each
    window is kept as a light-weight raw-signal preview (what the GUI's top
    plot shows, decimated).
    """
    labels = np.asarray(labels, dtype=int)
    predictions = np.asarray([outcome.prediction for outcome in outcomes], dtype=int)
    delays = np.asarray([outcome.delay_ms for outcome in outcomes], dtype=float)
    actions = np.asarray([outcome.layer for outcome in outcomes], dtype=int)
    indices = np.asarray([outcome.window_index for outcome in outcomes], dtype=int)

    preview = None
    if windows is not None:
        windows = np.asarray(windows, dtype=float)
        if windows.ndim == 3:
            preview = windows.mean(axis=2)
        else:
            preview = windows

    return DemoPanelSeries(
        window_indices=indices,
        predictions=predictions,
        ground_truth=labels,
        delays_ms=delays,
        actions=actions,
        cumulative_accuracy=cumulative_accuracy(predictions, labels),
        cumulative_f1=cumulative_f1(predictions, labels),
        raw_signal_preview=preview,
        scheme_name=scheme_name,
    )
