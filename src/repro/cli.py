"""Command-line interface.

The CLI is scenario-driven: every experiment is a registered
:class:`~repro.experiments.spec.ExperimentSpec` that can be listed, inspected
and run with declarative overrides::

    python -m repro.cli list
    python -m repro.cli describe univariate-power
    python -m repro.cli run univariate-power --set data.weeks=20 --set policy.episodes=10
    python -m repro.cli run mixed-detectors --output-dir reports/

``--set`` takes dotted spec paths (``data.weeks``, ``detectors.0.epochs``,
``policy.episodes``, ...); values are coerced to the type of the field they
replace and unknown keys are rejected.  ``repro describe`` prints the full
spec as JSON, which doubles as the reference for valid ``--set`` keys.

The legacy subcommands ``univariate`` / ``multivariate`` / ``both`` are kept
as deprecated aliases over the corresponding scenarios; each prints a pointer
to the ``run`` command on stderr.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import List, Optional

from repro.data.mhealth import MHealthConfig
from repro.data.power import PowerDatasetConfig
from repro.evaluation.reporting import write_report
from repro.evaluation.tables import format_table
from repro.exceptions import ReproError
from repro.experiments import (
    SCENARIOS,
    ExperimentRunner,
    apply_overrides,
    get_scenario,
    parse_set_arguments,
)
from repro.pipelines import (
    MultivariatePipelineConfig,
    UnivariatePipelineConfig,
    run_multivariate_pipeline,
    run_univariate_pipeline,
)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the contextual-bandit HEC anomaly-detection experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # -- scenario commands ------------------------------------------------------

    run = subparsers.add_parser(
        "run", help="run a registered scenario (see 'repro list')"
    )
    run.add_argument("scenario", help="scenario name, e.g. univariate-power")
    run.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a spec field by dotted path, e.g. --set data.weeks=20; "
        "repeatable ('repro describe <scenario>' shows the valid keys)",
    )
    run.add_argument("--seed", type=int, default=None,
                     help="master random seed (the data seed follows)")
    run.add_argument("--output-dir", type=str, default=None,
                     help="directory for the JSON/Markdown reproduction reports")
    run.add_argument("--quiet", action="store_true", help="suppress table output")
    run.add_argument("--spec-only", action="store_true",
                     help="print the resolved spec as JSON and exit without running")

    subparsers.add_parser("list", help="list the registered scenarios")

    describe = subparsers.add_parser(
        "describe", help="show a scenario's description and full spec as JSON"
    )
    describe.add_argument("scenario", help="scenario name, e.g. univariate-power")

    # -- deprecated aliases -----------------------------------------------------

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--seed", type=int, default=0, help="master random seed")
        sub.add_argument("--paper-scale", action="store_true",
                         help="use the paper-scale configuration (slow)")
        sub.add_argument("--output-dir", type=str, default=None,
                         help="directory for the JSON/Markdown reproduction reports")
        sub.add_argument("--quiet", action="store_true", help="suppress table output")

    univariate = subparsers.add_parser(
        "univariate",
        help="[deprecated alias of 'run univariate-power'] run the univariate experiment",
    )
    add_common(univariate)
    univariate.add_argument("--weeks", type=int, default=40,
                            help="number of synthetic weeks (fast configuration only)")
    univariate.add_argument("--policy-episodes", type=int, default=40)

    multivariate = subparsers.add_parser(
        "multivariate",
        help="[deprecated alias of 'run multivariate-mhealth'] run the multivariate experiment",
    )
    add_common(multivariate)
    multivariate.add_argument("--subjects", type=int, default=3,
                              help="number of simulated subjects (fast configuration only)")
    multivariate.add_argument("--policy-episodes", type=int, default=30)

    both = subparsers.add_parser(
        "both", help="[deprecated] run both experiments back to back"
    )
    add_common(both)
    # Per-track knobs must be registered here too — an earlier version of the
    # CLI silently ignored them on 'both' because getattr() fell back to the
    # defaults.  None means "use the track's own default".
    both.add_argument("--weeks", type=int, default=None,
                      help="number of synthetic weeks for the univariate track")
    both.add_argument("--subjects", type=int, default=None,
                      help="number of simulated subjects for the multivariate track")
    both.add_argument("--policy-episodes", type=int, default=None,
                      help="policy-training episodes for both tracks")

    return parser


def _resolved(args: argparse.Namespace, name: str, default):
    """An argument value with ``None`` (the 'both' subparser) meaning default."""
    value = getattr(args, name, None)
    return default if value is None else value


def _univariate_config(args: argparse.Namespace) -> UnivariatePipelineConfig:
    if args.paper_scale:
        return UnivariatePipelineConfig.paper_scale()
    config = UnivariatePipelineConfig(
        data=PowerDatasetConfig(
            weeks=_resolved(args, "weeks", 40), samples_per_day=24,
            anomalous_day_fraction=0.06, seed=args.seed + 7,
        ),
        policy_episodes=_resolved(args, "policy_episodes", 40),
        seed=args.seed,
    )
    return config


def _multivariate_config(args: argparse.Namespace) -> MultivariatePipelineConfig:
    if args.paper_scale:
        return MultivariatePipelineConfig.paper_scale()
    base = MultivariatePipelineConfig(seed=args.seed)
    return replace(
        base,
        data=MHealthConfig(
            n_subjects=_resolved(args, "subjects", 3),
            seconds_per_activity=base.data.seconds_per_activity,
            sampling_rate_hz=base.data.sampling_rate_hz,
            seed=args.seed + 11,
        ),
        policy_episodes=_resolved(args, "policy_episodes", 30),
    )


def _report(result, args: argparse.Namespace, report_name: Optional[str] = None) -> None:
    if not args.quiet:
        print(format_table([row.as_dict() for row in result.table1_rows],
                           title=f"Table I ({result.dataset_name})"))
        print()
        print(format_table([row.as_dict() for row in result.table2_rows],
                           title=f"Table II ({result.dataset_name})"))
        print()
    if args.output_dir:
        paths = write_report(result, args.output_dir, name=report_name)
        if not args.quiet:
            print(f"Wrote {paths['json']} and {paths['markdown']}")


def _run_scenario(args: argparse.Namespace) -> int:
    spec = get_scenario(args.scenario)
    if args.seed is not None:
        spec = spec.with_seed(args.seed)
    overrides = parse_set_arguments(args.overrides)
    if overrides:
        spec = apply_overrides(spec, overrides)
    if args.spec_only:
        print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
        return 0
    result = ExperimentRunner(spec).run()
    _report(result, args, report_name=f"report_{args.scenario}")
    return 0


def _list_scenarios() -> int:
    print("Registered scenarios:")
    for entry in SCENARIOS.entries():
        tags = f"  [{', '.join(entry.tags)}]" if entry.tags else ""
        print(f"  {entry.name:<28s} {entry.description}{tags}")
    print()
    print("Run one with: python -m repro.cli run <scenario> [--set dotted.key=value ...]")
    return 0


def _describe_scenario(args: argparse.Namespace) -> int:
    entry = SCENARIOS.entry(args.scenario)
    spec = SCENARIOS.spec(args.scenario)
    print(f"Scenario: {entry.name}")
    if entry.description:
        print(f"Description: {entry.description}")
    if entry.tags:
        print(f"Tags: {', '.join(entry.tags)}")
    print()
    print("Spec (valid --set keys are the dotted paths into this document):")
    print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
    return 0


def _warn_deprecated(command: str, replacement: str) -> None:
    print(
        f"note: '{command}' is a deprecated alias; "
        f"use 'python -m repro.cli {replacement}'",
        file=sys.stderr,
    )


def run_command(args: argparse.Namespace) -> int:
    """Execute one parsed CLI command; returns a process exit code."""
    if args.command == "run":
        return _run_scenario(args)
    if args.command == "list":
        return _list_scenarios()
    if args.command == "describe":
        return _describe_scenario(args)

    # Deprecated aliases over the legacy pipeline shims.
    if args.command == "univariate":
        _warn_deprecated("univariate", "run univariate-power")
    elif args.command == "multivariate":
        _warn_deprecated("multivariate", "run multivariate-mhealth")
    else:
        _warn_deprecated("both", "run univariate-power / run multivariate-mhealth")
    if args.command in ("univariate", "both"):
        result = run_univariate_pipeline(_univariate_config(args))
        _report(result, args)
    if args.command in ("multivariate", "both"):
        result = run_multivariate_pipeline(_multivariate_config(args))
        _report(result, args)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return run_command(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
