"""Command-line interface.

The CLI is scenario-driven: every experiment is a registered
:class:`~repro.experiments.spec.ExperimentSpec` that can be listed, inspected
and run with declarative overrides::

    python -m repro.cli list --verbose
    python -m repro.cli describe univariate-power
    python -m repro.cli run univariate-power --set data.weeks=20 --set policy.episodes=10
    python -m repro.cli run mixed-detectors --output-dir reports/
    python -m repro.cli fleet fleet-burst-storm --shards 2 --output-dir reports/

``--set`` takes dotted spec paths (``data.weeks``, ``detectors.0.epochs``,
``fleet.n_devices``, ...); values are coerced to the type of the field they
replace and unknown keys are rejected.  ``repro describe`` prints the full
spec as JSON, which doubles as the reference for valid ``--set`` keys.
``repro fleet`` trains a scenario and streams its fleet workload through the
trained system (see :mod:`repro.fleet`); ``--seed`` on both ``run`` and
``fleet`` reseeds the whole experiment without dotted ``--set`` syntax.

The legacy subcommands ``univariate`` / ``multivariate`` / ``both`` are kept
as deprecated aliases over the corresponding scenarios; each prints a pointer
to the ``run`` command on stderr and emits a once-per-process
``DeprecationWarning``.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path
from typing import List, Optional

from repro.data.mhealth import MHealthConfig
from repro.data.power import PowerDatasetConfig
from repro.evaluation.reporting import write_report
from repro.evaluation.tables import format_table
from repro.exceptions import ReproError
from repro.experiments import (
    SCENARIOS,
    ExperimentRunner,
    apply_overrides,
    get_scenario,
    parse_set_arguments,
)
from repro.pipelines import (
    MultivariatePipelineConfig,
    UnivariatePipelineConfig,
    run_multivariate_pipeline,
    run_univariate_pipeline,
)
from repro.utils.deprecation import warn_deprecated_once


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the contextual-bandit HEC anomaly-detection experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # -- scenario commands ------------------------------------------------------

    run = subparsers.add_parser(
        "run", help="run a registered scenario (see 'repro list')"
    )
    run.add_argument("scenario", help="scenario name, e.g. univariate-power")
    run.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a spec field by dotted path, e.g. --set data.weeks=20; "
        "repeatable ('repro describe <scenario>' shows the valid keys)",
    )
    run.add_argument("--seed", type=int, default=None,
                     help="master random seed (the data seed follows)")
    run.add_argument("--output-dir", type=str, default=None,
                     help="directory for the JSON/Markdown reproduction reports")
    run.add_argument("--quiet", action="store_true", help="suppress table output")
    run.add_argument("--spec-only", action="store_true",
                     help="print the resolved spec as JSON and exit without running")

    fleet = subparsers.add_parser(
        "fleet",
        help="train a fleet scenario and stream its device fleet through the "
        "system (see 'repro list' for scenarios tagged [fleet])",
    )
    fleet.add_argument("scenario", help="fleet scenario name, e.g. fleet-burst-storm")
    fleet.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a spec field by dotted path, e.g. --set fleet.n_devices=500; "
        "repeatable ('repro describe <scenario>' shows the valid keys)",
    )
    fleet.add_argument("--seed", type=int, default=None,
                       help="master random seed (data and device streams follow)")
    fleet.add_argument("--shards", type=int, default=None,
                       help="partition the fleet across this many worker processes "
                       "(overrides fleet.n_shards)")
    fleet.add_argument("--output-dir", type=str, default=None,
                       help="directory for the JSON fleet report")
    fleet.add_argument("--quiet", action="store_true", help="suppress summary output")
    fleet.add_argument("--spec-only", action="store_true",
                       help="print the resolved spec as JSON and exit without running")

    list_parser = subparsers.add_parser("list", help="list the registered scenarios")
    list_parser.add_argument(
        "--verbose", action="store_true",
        help="multi-line listing with descriptions, tags and workload summaries",
    )

    describe = subparsers.add_parser(
        "describe", help="show a scenario's description and full spec as JSON"
    )
    describe.add_argument("scenario", help="scenario name, e.g. univariate-power")

    # -- deprecated aliases -----------------------------------------------------

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--seed", type=int, default=0, help="master random seed")
        sub.add_argument("--paper-scale", action="store_true",
                         help="use the paper-scale configuration (slow)")
        sub.add_argument("--output-dir", type=str, default=None,
                         help="directory for the JSON/Markdown reproduction reports")
        sub.add_argument("--quiet", action="store_true", help="suppress table output")

    univariate = subparsers.add_parser(
        "univariate",
        help="[deprecated alias of 'run univariate-power'] run the univariate experiment",
    )
    add_common(univariate)
    univariate.add_argument("--weeks", type=int, default=40,
                            help="number of synthetic weeks (fast configuration only)")
    univariate.add_argument("--policy-episodes", type=int, default=40)

    multivariate = subparsers.add_parser(
        "multivariate",
        help="[deprecated alias of 'run multivariate-mhealth'] run the multivariate experiment",
    )
    add_common(multivariate)
    multivariate.add_argument("--subjects", type=int, default=3,
                              help="number of simulated subjects (fast configuration only)")
    multivariate.add_argument("--policy-episodes", type=int, default=30)

    both = subparsers.add_parser(
        "both", help="[deprecated] run both experiments back to back"
    )
    add_common(both)
    # Per-track knobs must be registered here too — an earlier version of the
    # CLI silently ignored them on 'both' because getattr() fell back to the
    # defaults.  None means "use the track's own default".
    both.add_argument("--weeks", type=int, default=None,
                      help="number of synthetic weeks for the univariate track")
    both.add_argument("--subjects", type=int, default=None,
                      help="number of simulated subjects for the multivariate track")
    both.add_argument("--policy-episodes", type=int, default=None,
                      help="policy-training episodes for both tracks")

    return parser


def _resolved(args: argparse.Namespace, name: str, default):
    """An argument value with ``None`` (the 'both' subparser) meaning default."""
    value = getattr(args, name, None)
    return default if value is None else value


def _univariate_config(args: argparse.Namespace) -> UnivariatePipelineConfig:
    if args.paper_scale:
        return UnivariatePipelineConfig.paper_scale()
    config = UnivariatePipelineConfig(
        data=PowerDatasetConfig(
            weeks=_resolved(args, "weeks", 40), samples_per_day=24,
            anomalous_day_fraction=0.06, seed=args.seed + 7,
        ),
        policy_episodes=_resolved(args, "policy_episodes", 40),
        seed=args.seed,
    )
    return config


def _multivariate_config(args: argparse.Namespace) -> MultivariatePipelineConfig:
    if args.paper_scale:
        return MultivariatePipelineConfig.paper_scale()
    base = MultivariatePipelineConfig(seed=args.seed)
    return replace(
        base,
        data=MHealthConfig(
            n_subjects=_resolved(args, "subjects", 3),
            seconds_per_activity=base.data.seconds_per_activity,
            sampling_rate_hz=base.data.sampling_rate_hz,
            seed=args.seed + 11,
        ),
        policy_episodes=_resolved(args, "policy_episodes", 30),
    )


def _report(result, args: argparse.Namespace, report_name: Optional[str] = None) -> None:
    if not args.quiet:
        print(format_table([row.as_dict() for row in result.table1_rows],
                           title=f"Table I ({result.dataset_name})"))
        print()
        print(format_table([row.as_dict() for row in result.table2_rows],
                           title=f"Table II ({result.dataset_name})"))
        print()
    if args.output_dir:
        paths = write_report(result, args.output_dir, name=report_name)
        if not args.quiet:
            print(f"Wrote {paths['json']} and {paths['markdown']}")


def _resolve_spec(args: argparse.Namespace):
    """The scenario spec with ``--seed`` and ``--set`` overrides applied."""
    spec = get_scenario(args.scenario)
    if args.seed is not None:
        spec = spec.with_seed(args.seed)
    overrides = parse_set_arguments(args.overrides)
    if overrides:
        spec = apply_overrides(spec, overrides)
    return spec


def _run_scenario(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args)
    if args.spec_only:
        print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
        return 0
    result = ExperimentRunner(spec).run()
    _report(result, args, report_name=f"report_{args.scenario}")
    return 0


def _run_fleet(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args)
    if spec.fleet is None:
        fleet_names = ", ".join(SCENARIOS.names(tags=("fleet",))) or "none registered"
        raise ReproError(
            f"scenario {args.scenario!r} has no fleet workload; "
            f"fleet scenarios: {fleet_names}"
        )
    if args.shards is not None:
        spec = apply_overrides(spec, {"fleet.n_shards": args.shards})
    if args.spec_only:
        print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
        return 0
    report = ExperimentRunner(spec).run_fleet()
    if not args.quiet:
        print(report.summary())
    if args.output_dir:
        path = Path(args.output_dir) / f"fleet_{args.scenario}.json"
        report.to_json(path)
        if not args.quiet:
            print(f"Wrote {path}")
    return 0


def _list_scenarios(verbose: bool = False) -> int:
    print("Registered scenarios:")
    for entry in SCENARIOS.entries():
        if verbose:
            tags = f"  [{', '.join(entry.tags)}]" if entry.tags else ""
            print(f"  {entry.name}{tags}")
            if entry.description:
                print(f"      {entry.description}")
            spec = SCENARIOS.spec(entry.name)
            workload = (
                f"source={spec.data.source}  layers={spec.topology.n_layers}  "
                f"seed={spec.seed}"
            )
            if spec.fleet is not None:
                workload += (
                    f"  fleet={spec.fleet.n_devices} devices x {spec.fleet.ticks} ticks"
                )
            print(f"      {workload}")
        else:
            tags = f"  [{', '.join(entry.tags)}]" if entry.tags else ""
            print(f"  {entry.name:<28s} {entry.description}{tags}")
    print()
    print("Run one with: python -m repro.cli run <scenario> [--set dotted.key=value ...]")
    print("Stream a [fleet] scenario with: python -m repro.cli fleet <scenario>")
    return 0


def _describe_scenario(args: argparse.Namespace) -> int:
    entry = SCENARIOS.entry(args.scenario)
    spec = SCENARIOS.spec(args.scenario)
    print(f"Scenario: {entry.name}")
    if entry.description:
        print(f"Description: {entry.description}")
    if entry.tags:
        print(f"Tags: {', '.join(entry.tags)}")
    print()
    print("Spec (valid --set keys are the dotted paths into this document):")
    print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
    return 0


def _warn_deprecated(command: str, replacement: str) -> None:
    warn_deprecated_once(
        f"cli.{command}",
        f"the '{command}' subcommand is deprecated; "
        f"use 'python -m repro.cli {replacement}'",
    )
    print(
        f"note: '{command}' is a deprecated alias; "
        f"use 'python -m repro.cli {replacement}'",
        file=sys.stderr,
    )


def run_command(args: argparse.Namespace) -> int:
    """Execute one parsed CLI command; returns a process exit code."""
    if args.command == "run":
        return _run_scenario(args)
    if args.command == "fleet":
        return _run_fleet(args)
    if args.command == "list":
        return _list_scenarios(verbose=getattr(args, "verbose", False))
    if args.command == "describe":
        return _describe_scenario(args)

    # Deprecated aliases over the legacy pipeline shims.
    if args.command == "univariate":
        _warn_deprecated("univariate", "run univariate-power")
    elif args.command == "multivariate":
        _warn_deprecated("multivariate", "run multivariate-mhealth")
    else:
        _warn_deprecated("both", "run univariate-power / run multivariate-mhealth")
    if args.command in ("univariate", "both"):
        result = run_univariate_pipeline(_univariate_config(args))
        _report(result, args)
    if args.command in ("multivariate", "both"):
        result = run_multivariate_pipeline(_multivariate_config(args))
        _report(result, args)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return run_command(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
