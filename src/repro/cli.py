"""Command-line interface.

Exposes the two experiment pipelines and the report writer as a small CLI so
the tables can be regenerated without writing any Python::

    python -m repro.cli univariate --weeks 40 --output-dir reports/
    python -m repro.cli multivariate --subjects 3 --output-dir reports/
    python -m repro.cli both --output-dir reports/

Each invocation trains the detectors and the policy network with the fast
configuration (or the paper-scale one with ``--paper-scale``), prints the
Table I / Table II summaries and, when ``--output-dir`` is given, writes the
JSON + Markdown reproduction reports.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import List, Optional

from repro.data.mhealth import MHealthConfig
from repro.data.power import PowerDatasetConfig
from repro.evaluation.reporting import write_report
from repro.evaluation.tables import format_table
from repro.pipelines import (
    MultivariatePipelineConfig,
    UnivariatePipelineConfig,
    run_multivariate_pipeline,
    run_univariate_pipeline,
)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the contextual-bandit HEC anomaly-detection experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--seed", type=int, default=0, help="master random seed")
        sub.add_argument("--paper-scale", action="store_true",
                         help="use the paper-scale configuration (slow)")
        sub.add_argument("--output-dir", type=str, default=None,
                         help="directory for the JSON/Markdown reproduction reports")
        sub.add_argument("--quiet", action="store_true", help="suppress table output")

    univariate = subparsers.add_parser(
        "univariate", help="run the univariate (power / autoencoder) experiment"
    )
    add_common(univariate)
    univariate.add_argument("--weeks", type=int, default=40,
                            help="number of synthetic weeks (fast configuration only)")
    univariate.add_argument("--policy-episodes", type=int, default=40)

    multivariate = subparsers.add_parser(
        "multivariate", help="run the multivariate (MHEALTH / LSTM-seq2seq) experiment"
    )
    add_common(multivariate)
    multivariate.add_argument("--subjects", type=int, default=3,
                              help="number of simulated subjects (fast configuration only)")
    multivariate.add_argument("--policy-episodes", type=int, default=30)

    both = subparsers.add_parser("both", help="run both experiments back to back")
    add_common(both)

    return parser


def _univariate_config(args: argparse.Namespace) -> UnivariatePipelineConfig:
    if args.paper_scale:
        return UnivariatePipelineConfig.paper_scale()
    config = UnivariatePipelineConfig(
        data=PowerDatasetConfig(
            weeks=getattr(args, "weeks", 40), samples_per_day=24,
            anomalous_day_fraction=0.06, seed=args.seed + 7,
        ),
        policy_episodes=getattr(args, "policy_episodes", 40),
        seed=args.seed,
    )
    return config


def _multivariate_config(args: argparse.Namespace) -> MultivariatePipelineConfig:
    if args.paper_scale:
        return MultivariatePipelineConfig.paper_scale()
    base = MultivariatePipelineConfig(seed=args.seed)
    return replace(
        base,
        data=MHealthConfig(
            n_subjects=getattr(args, "subjects", 3),
            seconds_per_activity=base.data.seconds_per_activity,
            sampling_rate_hz=base.data.sampling_rate_hz,
            seed=args.seed + 11,
        ),
        policy_episodes=getattr(args, "policy_episodes", 30),
    )


def _report(result, args: argparse.Namespace) -> None:
    if not args.quiet:
        print(format_table([row.as_dict() for row in result.table1_rows],
                           title=f"Table I ({result.dataset_name})"))
        print()
        print(format_table([row.as_dict() for row in result.table2_rows],
                           title=f"Table II ({result.dataset_name})"))
        print()
    if args.output_dir:
        paths = write_report(result, args.output_dir)
        if not args.quiet:
            print(f"Wrote {paths['json']} and {paths['markdown']}")


def run_command(args: argparse.Namespace) -> int:
    """Execute one parsed CLI command; returns a process exit code."""
    if args.command in ("univariate", "both"):
        result = run_univariate_pipeline(_univariate_config(args))
        _report(result, args)
    if args.command in ("multivariate", "both"):
        result = run_multivariate_pipeline(_multivariate_config(args))
        _report(result, args)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return run_command(args)


if __name__ == "__main__":
    sys.exit(main())
