"""Command-line interface.

The CLI is scenario-driven: every experiment is a registered
:class:`~repro.experiments.spec.ExperimentSpec` that can be listed, inspected
and run with declarative overrides::

    python -m repro.cli list --verbose
    python -m repro.cli describe univariate-power
    python -m repro.cli run univariate-power --set data.weeks=20 --set policy.episodes=10
    python -m repro.cli run mixed-detectors --output-dir reports/
    python -m repro.cli fleet fleet-burst-storm --shards 2 --output-dir reports/
    python -m repro.cli fleet fleet-crash-resume --checkpoint-dir ckpt --checkpoint-cadence 5
    python -m repro.cli resume ckpt

``--set`` takes dotted spec paths (``data.weeks``, ``detectors.0.epochs``,
``fleet.n_devices``, ...); values are coerced to the type of the field they
replace and unknown keys are rejected.  ``repro describe`` prints the full
spec as JSON, which doubles as the reference for valid ``--set`` keys.
``repro fleet`` trains a scenario and streams its fleet workload through the
trained system (see :mod:`repro.fleet`); ``--seed`` on both ``run`` and
``fleet`` reseeds the whole experiment without dotted ``--set`` syntax, and
``repro fleet --profile`` prints the per-stage wall-clock breakdown of the
stream (arrivals / context+policy / detect / metrics / adapt).
``repro fleet --adapt`` closes the model-lifecycle loop during the stream
(drift monitoring, gated online retraining, hot-swap deployment — see
:mod:`repro.adapt`), and ``repro models list/show/rollback`` inspects and
manages the versioned checkpoint registry those runs write::

    python -m repro.cli serve serve-front-door --set serve.offered_rps=300
    python -m repro.cli serve serve-front-door --hot-swap --output-dir reports/

``repro serve`` trains a scenario and serves its fleet traffic through the
asyncio ingest front door (see :mod:`repro.serving`): open-loop Poisson
arrivals, micro-batched detection, bounded-queue load shedding and a p99
latency SLO; ``--hot-swap`` lands one blue/green deployment mid-run through
the drain-and-swap gate without dropping a request::

    python -m repro.cli fleet adapt-1k-drift-recovery --output-dir reports/
    python -m repro.cli models list --registry reports/registry
    python -m repro.cli models rollback iot --registry reports/registry

``repro qualify`` runs a registered pack of hostile/heterogeneous scenarios
(see :mod:`repro.fleet.qualify`) and judges each against its pinned pass/fail
contracts, exiting 0 only when every contract holds::

    python -m repro.cli qualify --pack hostile --output-dir reports/
    python -m repro.cli qualify --pack hostile --scenario qualify-flash-crowd
    python -m repro.cli qualify --pack control   # deliberately fails (exit 1)

The legacy subcommands ``univariate`` / ``multivariate`` / ``both`` are kept
as deprecated aliases over the corresponding scenarios; each prints a pointer
to the ``run`` command on stderr and emits a once-per-process
``DeprecationWarning``.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path
from typing import List, Optional

from repro.adapt import AdaptSpec, ModelRegistry
from repro.data.mhealth import MHealthConfig
from repro.data.power import PowerDatasetConfig
from repro.evaluation.reporting import write_report
from repro.evaluation.tables import format_table
from repro.exceptions import ReproError
from repro.experiments import (
    SCENARIOS,
    ExperimentRunner,
    ServingSpec,
    apply_overrides,
    get_scenario,
    parse_set_arguments,
)
from repro.pipelines import (
    MultivariatePipelineConfig,
    UnivariatePipelineConfig,
    run_multivariate_pipeline,
    run_univariate_pipeline,
)
from repro.utils.deprecation import warn_deprecated_once


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the contextual-bandit HEC anomaly-detection experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # -- scenario commands ------------------------------------------------------

    run = subparsers.add_parser(
        "run", help="run a registered scenario (see 'repro list')"
    )
    run.add_argument("scenario", nargs="?", default=None,
                     help="scenario name, e.g. univariate-power")
    run.add_argument("--spec-file", type=str, default=None,
                     help="run a spec from a JSON file (as printed by "
                     "'repro describe' or --spec-only) instead of a scenario")
    run.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a spec field by dotted path, e.g. --set data.weeks=20; "
        "repeatable ('repro describe <scenario>' shows the valid keys)",
    )
    run.add_argument("--seed", type=int, default=None,
                     help="master random seed (the data seed follows)")
    run.add_argument("--output-dir", type=str, default=None,
                     help="directory for the JSON/Markdown reproduction reports")
    run.add_argument("--quiet", action="store_true", help="suppress table output")
    run.add_argument("--telemetry", type=str, default=None, metavar="DIR",
                     help="write telemetry (trace.jsonl, metrics.json, "
                     "metrics.prom) to DIR; sugar for --set obs.dir=DIR")
    run.add_argument("--spec-only", action="store_true",
                     help="print the resolved spec as JSON and exit without running")

    fleet = subparsers.add_parser(
        "fleet",
        help="train a fleet scenario and stream its device fleet through the "
        "system (see 'repro list' for scenarios tagged [fleet])",
    )
    fleet.add_argument("scenario", nargs="?", default=None,
                       help="fleet scenario name, e.g. fleet-burst-storm")
    fleet.add_argument("--spec-file", type=str, default=None,
                       help="stream a spec from a JSON file (as printed by "
                       "'repro describe' or --spec-only) instead of a scenario")
    fleet.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a spec field by dotted path, e.g. --set fleet.n_devices=500; "
        "repeatable ('repro describe <scenario>' shows the valid keys)",
    )
    fleet.add_argument("--seed", type=int, default=None,
                       help="master random seed (data and device streams follow)")
    fleet.add_argument("--shards", type=int, default=None,
                       help="partition the fleet across this many worker processes "
                       "(overrides fleet.n_shards)")
    fleet.add_argument("--adapt", action="store_true",
                       help="stream with the adaptation loop (drift monitoring, "
                       "online retraining, hot-swap deployment); scenarios with "
                       "an 'adapt' spec node adapt by default")
    fleet.add_argument("--registry", type=str, default=None,
                       help="model-registry directory for adaptation checkpoints "
                       "(default: <output-dir>/registry, or a temporary directory)")
    fleet.add_argument("--output-dir", type=str, default=None,
                       help="directory for the JSON fleet report")
    fleet.add_argument("--profile", action="store_true",
                       help="print a per-stage wall-clock breakdown of the stream "
                       "(arrivals / context+policy / detect / metrics / adapt); "
                       "sharded runs are profiled serially in-process")
    fleet.add_argument("--checkpoint-dir", type=str, default=None,
                       help="directory for durable streaming checkpoints; a killed "
                       "run restarts from the newest one with --resume (or "
                       "'repro resume <dir>')")
    fleet.add_argument("--checkpoint-cadence", type=int, default=0,
                       help="checkpoint every N ticks (0 = only --checkpoint-dir's "
                       "run.json, no periodic snapshots); requires --checkpoint-dir")
    fleet.add_argument("--resume", action="store_true",
                       help="continue from the newest checkpoint in --checkpoint-dir "
                       "(bit-identical to an uninterrupted run)")
    fleet.add_argument("--quiet", action="store_true", help="suppress summary output")
    fleet.add_argument("--telemetry", type=str, default=None, metavar="DIR",
                       help="write telemetry (trace.jsonl, metrics.json, "
                       "metrics.prom) to DIR; sugar for --set obs.dir=DIR "
                       "(sharded runs write per-shard shard-NN/ sinks and "
                       "merge them into DIR)")
    fleet.add_argument("--watch", type=int, nargs="?", const=1, default=None,
                       metavar="N",
                       help="print a rolling health line every N ticks "
                       "(default 1) and evaluate the stock fleet alert rules; "
                       "uses an in-memory telemetry session when --telemetry "
                       "is absent")
    fleet.add_argument("--spec-only", action="store_true",
                       help="print the resolved spec as JSON and exit without running")

    serve = subparsers.add_parser(
        "serve",
        help="train a scenario and serve its fleet traffic through the asyncio "
        "ingest front door (micro-batching, load shedding, p99 SLO)",
    )
    serve.add_argument("scenario", nargs="?", default=None,
                       help="serving scenario name, e.g. serve-front-door")
    serve.add_argument("--spec-file", type=str, default=None,
                       help="serve a spec from a JSON file (as printed by "
                       "'repro describe' or --spec-only) instead of a scenario")
    serve.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a spec field by dotted path, e.g. --set serve.offered_rps=500; "
        "repeatable ('repro describe <scenario>' shows the valid keys)",
    )
    serve.add_argument("--seed", type=int, default=None,
                       help="master random seed (data, arrivals and service follow)")
    serve.add_argument("--hot-swap", action="store_true",
                       help="perform one blue/green detector swap mid-run through "
                       "the drain-and-swap gate (zero dropped requests)")
    serve.add_argument("--output-dir", type=str, default=None,
                       help="directory for the JSON serving report")
    serve.add_argument("--quiet", action="store_true", help="suppress summary output")
    serve.add_argument("--telemetry", type=str, default=None, metavar="DIR",
                       help="write telemetry (trace.jsonl, metrics.json, "
                       "metrics.prom) to DIR; sugar for --set obs.dir=DIR")
    serve.add_argument("--watch", type=int, nargs="?", const=8, default=None,
                       metavar="N",
                       help="print a rolling health line every N served "
                       "requests (default 8) with SLO burn-rate alerting; "
                       "uses an in-memory telemetry session when --telemetry "
                       "is absent")
    serve.add_argument("--spec-only", action="store_true",
                       help="print the resolved spec as JSON and exit without running")

    qualify = subparsers.add_parser(
        "qualify",
        help="run a qualification pack of hostile/heterogeneous scenarios and "
        "judge each against its pinned pass/fail contracts",
    )
    qualify.add_argument("--pack", type=str, default="hostile",
                         help="qualification pack to run (default: hostile; "
                         "'control' is the deliberately-failing control pack)")
    qualify.add_argument("--scenario", type=str, default=None,
                         help="run only this scenario of the pack")
    qualify.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a qualify field by dotted path, e.g. "
        "--set qualify.ticks_scale=0.5; repeatable",
    )
    qualify.add_argument("--seed", type=int, default=None,
                         help="master random seed applied to every case")
    qualify.add_argument("--output-dir", type=str, default=None,
                         help="directory for the JSON qualification report")
    qualify.add_argument("--quiet", action="store_true",
                         help="suppress the qualification matrix output")
    qualify.add_argument("--telemetry", type=str, default=None, metavar="DIR",
                         help="write the qualification run's telemetry "
                         "(trace.jsonl with alert.fire events, metrics.json) "
                         "to DIR")

    resume = subparsers.add_parser(
        "resume",
        help="resume a killed 'repro fleet --checkpoint-dir' run from its directory",
    )
    resume.add_argument("checkpoint_dir",
                        help="the --checkpoint-dir of the interrupted run "
                        "(holds run.json and the shard checkpoints)")
    resume.add_argument("--output-dir", type=str, default=None,
                        help="directory for the JSON fleet report")
    resume.add_argument("--quiet", action="store_true",
                        help="suppress summary output")

    # -- model registry ---------------------------------------------------------

    models = subparsers.add_parser(
        "models",
        help="inspect and manage the versioned model registry "
        "(checkpoints written by adaptive fleet runs)",
    )
    models_sub = models.add_subparsers(dest="models_command", required=True)
    for name, help_text in (
        ("list", "list committed checkpoint versions and per-tier lineage"),
        ("show", "show one checkpoint version's lineage metadata as JSON"),
        ("rollback", "demote a tier's current version to its predecessor"),
    ):
        sub = models_sub.add_parser(name, help=help_text)
        sub.add_argument("--registry", type=str, default="model-registry",
                        help="model-registry directory (default: ./model-registry)")
        if name == "show":
            sub.add_argument("version", help="checkpoint version id, e.g. v-0123abcd4567")
        if name == "rollback":
            sub.add_argument("tier", help="tier name whose current version to demote")

    # -- telemetry --------------------------------------------------------------

    obs = subparsers.add_parser(
        "obs",
        help="inspect telemetry written by --telemetry runs "
        "(trace.jsonl digests, live top/tail views)",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    summarize = obs_sub.add_parser(
        "summarize",
        help="print a digest of one run's trace.jsonl (top spans, tier "
        "utilization, latency percentiles, overload, adaptation timeline, "
        "fault activations); sharded run directories aggregate every "
        "shard-NN/ sink",
    )
    summarize.add_argument(
        "path",
        help="a trace.jsonl file or the telemetry directory holding one "
        "(possibly with shard-NN/ subdirectories)",
    )
    top = obs_sub.add_parser(
        "top",
        help="render a refreshing digest of a telemetered run (tier "
        "utilization, queue depth, rolling p99 vs SLO, active alerts); "
        "follows a live run's trace.jsonl.tmp as it grows",
    )
    top.add_argument(
        "path",
        help="a trace.jsonl file or the telemetry directory of a running "
        "or finished telemetered run",
    )
    top.add_argument("--follow", action="store_true",
                     help="keep refreshing until the run finalizes its trace "
                     "(or --duration elapses)")
    top.add_argument("--interval", type=float, default=1.0, metavar="SECONDS",
                     help="refresh interval while following (default 1.0)")
    top.add_argument("--duration", type=float, default=None, metavar="SECONDS",
                     help="stop following after this many seconds (implies "
                     "--follow)")
    top.add_argument("--slo-ms", type=float, default=None, metavar="MS",
                     help="annotate the rolling p99 with this SLO bound")
    tail = obs_sub.add_parser(
        "tail",
        help="print trace records as human-readable lines, optionally "
        "following a live run",
    )
    tail.add_argument(
        "path",
        help="a trace.jsonl file or the telemetry directory holding one",
    )
    tail.add_argument("--follow", action="store_true",
                      help="keep polling for new records until the run "
                      "finalizes its trace (or --duration elapses)")
    tail.add_argument("--interval", type=float, default=0.5, metavar="SECONDS",
                      help="poll interval while following (default 0.5)")
    tail.add_argument("--duration", type=float, default=None, metavar="SECONDS",
                      help="stop following after this many seconds (implies "
                      "--follow)")

    list_parser = subparsers.add_parser("list", help="list the registered scenarios")
    list_parser.add_argument(
        "--verbose", action="store_true",
        help="multi-line listing with descriptions, tags and workload summaries",
    )

    describe = subparsers.add_parser(
        "describe", help="show a scenario's description and full spec as JSON"
    )
    describe.add_argument("scenario", help="scenario name, e.g. univariate-power")

    # -- deprecated aliases -----------------------------------------------------

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--seed", type=int, default=0, help="master random seed")
        sub.add_argument("--paper-scale", action="store_true",
                         help="use the paper-scale configuration (slow)")
        sub.add_argument("--output-dir", type=str, default=None,
                         help="directory for the JSON/Markdown reproduction reports")
        sub.add_argument("--quiet", action="store_true", help="suppress table output")

    univariate = subparsers.add_parser(
        "univariate",
        help="[deprecated alias of 'run univariate-power'] run the univariate experiment",
    )
    add_common(univariate)
    univariate.add_argument("--weeks", type=int, default=40,
                            help="number of synthetic weeks (fast configuration only)")
    univariate.add_argument("--policy-episodes", type=int, default=40)

    multivariate = subparsers.add_parser(
        "multivariate",
        help="[deprecated alias of 'run multivariate-mhealth'] run the multivariate experiment",
    )
    add_common(multivariate)
    multivariate.add_argument("--subjects", type=int, default=3,
                              help="number of simulated subjects (fast configuration only)")
    multivariate.add_argument("--policy-episodes", type=int, default=30)

    both = subparsers.add_parser(
        "both", help="[deprecated] run both experiments back to back"
    )
    add_common(both)
    # Per-track knobs must be registered here too — an earlier version of the
    # CLI silently ignored them on 'both' because getattr() fell back to the
    # defaults.  None means "use the track's own default".
    both.add_argument("--weeks", type=int, default=None,
                      help="number of synthetic weeks for the univariate track")
    both.add_argument("--subjects", type=int, default=None,
                      help="number of simulated subjects for the multivariate track")
    both.add_argument("--policy-episodes", type=int, default=None,
                      help="policy-training episodes for both tracks")

    return parser


def _resolved(args: argparse.Namespace, name: str, default):
    """An argument value with ``None`` (the 'both' subparser) meaning default."""
    value = getattr(args, name, None)
    return default if value is None else value


def _univariate_config(args: argparse.Namespace) -> UnivariatePipelineConfig:
    if args.paper_scale:
        return UnivariatePipelineConfig.paper_scale()
    config = UnivariatePipelineConfig(
        data=PowerDatasetConfig(
            weeks=_resolved(args, "weeks", 40), samples_per_day=24,
            anomalous_day_fraction=0.06, seed=args.seed + 7,
        ),
        policy_episodes=_resolved(args, "policy_episodes", 40),
        seed=args.seed,
    )
    return config


def _multivariate_config(args: argparse.Namespace) -> MultivariatePipelineConfig:
    if args.paper_scale:
        return MultivariatePipelineConfig.paper_scale()
    base = MultivariatePipelineConfig(seed=args.seed)
    return replace(
        base,
        data=MHealthConfig(
            n_subjects=_resolved(args, "subjects", 3),
            seconds_per_activity=base.data.seconds_per_activity,
            sampling_rate_hz=base.data.sampling_rate_hz,
            seed=args.seed + 11,
        ),
        policy_episodes=_resolved(args, "policy_episodes", 30),
    )


def _report(result, args: argparse.Namespace, report_name: Optional[str] = None) -> None:
    if not args.quiet:
        print(format_table([row.as_dict() for row in result.table1_rows],
                           title=f"Table I ({result.dataset_name})"))
        print()
        print(format_table([row.as_dict() for row in result.table2_rows],
                           title=f"Table II ({result.dataset_name})"))
        print()
    if args.output_dir:
        paths = write_report(result, args.output_dir, name=report_name)
        if not args.quiet:
            print(f"Wrote {paths['json']} and {paths['markdown']}")


def _load_spec_file(path: str):
    """An :class:`ExperimentSpec` from a JSON file; CLI errors stay one-liners."""
    from repro.experiments import ExperimentSpec

    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError as exc:
        raise ReproError(f"spec file not found: {path}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"malformed spec JSON in {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ReproError(f"spec file {path} must hold a JSON object, not "
                         f"{type(payload).__name__}")
    return ExperimentSpec.from_dict(payload)


def _resolve_spec(
    args: argparse.Namespace,
    default_adapt: bool = False,
    default_serve: bool = False,
):
    """The scenario (or ``--spec-file``) spec with ``--seed``/``--set`` applied.

    ``default_adapt`` honours the ``fleet --adapt`` flag and ``default_serve``
    the ``serve`` subcommand: a default :class:`AdaptSpec`/:class:`ServingSpec`
    is attached *before* the dotted overrides, so ``--set adapt.*`` /
    ``--set serve.*`` lands on the node just created.
    """
    spec_file = getattr(args, "spec_file", None)
    if (args.scenario is None) == (spec_file is None):
        raise ReproError(
            "pass exactly one of a scenario name or --spec-file "
            "(see 'repro list' for scenarios)"
        )
    spec = _load_spec_file(spec_file) if spec_file else get_scenario(args.scenario)
    if args.seed is not None:
        spec = spec.with_seed(args.seed)
    if default_adapt and getattr(args, "adapt", False) and spec.adapt is None:
        spec = replace(spec, adapt=AdaptSpec())
    if default_serve and spec.serve is None:
        spec = replace(spec, serve=ServingSpec())
    telemetry_dir = getattr(args, "telemetry", None)
    if telemetry_dir is not None:
        from repro.obs.spec import ObsSpec

        # Sugar for --set obs.dir=DIR, applied before the dotted overrides so
        # --set obs.trace=false still lands on the node just materialised.
        obs = spec.obs if spec.obs is not None else ObsSpec()
        spec = replace(spec, obs=replace(obs, dir=str(telemetry_dir)))
    overrides = parse_set_arguments(args.overrides)
    if overrides:
        spec = apply_overrides(spec, overrides)
    return spec


def _finalize_telemetry(runner, args: argparse.Namespace) -> None:
    """Flush a runner's telemetry session to disk and point the user at it."""
    telemetry = runner.telemetry
    if telemetry is None:
        return
    paths = telemetry.finalize()
    if paths and not getattr(args, "quiet", False):
        print(f"Telemetry: {paths['trace'].parent}")


def _attach_watch(runner, args: argparse.Namespace, serving: bool = False) -> None:
    """Wire ``--watch N`` onto the runner's telemetry session.

    With no ``--telemetry`` directory an in-memory session is attached just
    for the watch — the run still streams bit-identical (telemetry never
    draws RNG), it just gains the rolling health lines and alert evaluation.
    """
    watch = getattr(args, "watch", None)
    if watch is None:
        return
    if watch < 1:
        raise ReproError(f"--watch must be a positive cadence, got {watch}")
    from repro.obs.alerts import default_fleet_rules, default_serving_rules
    from repro.obs.live import RollupWatcher

    if runner.telemetry is None:
        from repro.obs.export import Telemetry

        runner.telemetry = Telemetry()
    if serving:
        rules = default_serving_rules(runner.spec.serve)
        label = "serve"
    else:
        rules = default_fleet_rules()
        label = "fleet"
    runner.telemetry.watcher = RollupWatcher(
        runner.telemetry,
        rules=rules,
        every=watch,
        label=label,
        printer=print,
    )


def _run_scenario(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args)
    if args.spec_only:
        print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
        return 0
    runner = ExperimentRunner(spec)
    result = runner.run()
    _report(result, args, report_name=f"report_{args.scenario or spec.name}")
    _finalize_telemetry(runner, args)
    return 0


def _run_fleet(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args, default_adapt=True)
    if spec.fleet is None:
        fleet_names = ", ".join(SCENARIOS.names(tags=("fleet",))) or "none registered"
        raise ReproError(
            f"scenario {args.scenario or spec.name!r} has no fleet workload; "
            f"fleet scenarios: {fleet_names}"
        )
    if args.shards is not None:
        spec = apply_overrides(spec, {"fleet.n_shards": args.shards})
    if args.spec_only:
        print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
        return 0
    if args.checkpoint_dir is None and (args.checkpoint_cadence or args.resume):
        raise ReproError(
            "--checkpoint-cadence/--resume need --checkpoint-dir (where the "
            "checkpoints live)"
        )
    registry_root = args.registry
    if (
        registry_root is None
        and args.output_dir
        and spec.adapt is not None
        and spec.adapt.registry_dir is None
        # An explicit adapt.registry_dir on the spec wins over the
        # --output-dir-derived default (only --registry outranks it).
    ):
        registry_root = str(Path(args.output_dir) / "registry")
    runner = ExperimentRunner(spec)
    _attach_watch(runner, args, serving=False)
    profiler = None
    if args.profile:
        from repro.fleet.profiling import StageProfiler

        # With --telemetry too, the profiler aggregates into the telemetry
        # session's registry, so one set of stage counters backs both the
        # printed breakdown and the exported metrics.
        profiler = StageProfiler(
            registry=runner.telemetry.registry
            if runner.telemetry is not None
            else None
        )
    report = runner.run_fleet(
        registry_root=registry_root,
        profiler=profiler,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_cadence=args.checkpoint_cadence,
        resume=args.resume,
    )
    _print_fleet_report(report, runner, args, name=args.scenario or spec.name)
    if profiler is not None:
        # --quiet suppresses the report summary, not the breakdown the
        # user explicitly asked for with --profile.
        print(profiler.summary())
    _finalize_telemetry(runner, args)
    return 0


def _print_fleet_report(report, runner, args, name: str) -> None:
    """Shared summary/JSON-report tail of ``repro fleet`` and ``repro resume``."""
    if not args.quiet:
        print(report.summary())
        controller = runner.state.adaptation_controller
        if controller is not None:
            if controller.registry_is_ephemeral:
                print(
                    "Model registry: run-scoped (discarded on exit; pass "
                    "--registry or --output-dir to keep the checkpoints)"
                )
            else:
                print(f"Model registry: {controller.registry.root}")
    if args.output_dir:
        path = Path(args.output_dir) / f"fleet_{name}.json"
        report.to_json(path)
        if not args.quiet:
            print(f"Wrote {path}")


def _run_serve(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args, default_serve=True)
    if spec.fleet is None:
        serve_names = ", ".join(SCENARIOS.names(tags=("serving",))) or "none registered"
        raise ReproError(
            f"scenario {args.scenario or spec.name!r} has no fleet node to draw "
            f"serving traffic from; serving scenarios: {serve_names}"
        )
    if args.spec_only:
        print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
        return 0
    runner = ExperimentRunner(spec)
    _attach_watch(runner, args, serving=True)
    report = runner.run_serve(hot_swap=args.hot_swap)
    if not args.quiet:
        print(report.summary())
    if args.output_dir:
        path = Path(args.output_dir) / f"serving_{args.scenario or spec.name}.json"
        report.to_json(path)
        if not args.quiet:
            print(f"Wrote {path}")
    _finalize_telemetry(runner, args)
    return 0


def _run_qualify(args: argparse.Namespace) -> int:
    from repro.fleet.qualify import (
        QualifySpec,
        apply_qualify_overrides,
        run_qualification,
    )

    spec = QualifySpec(pack=args.pack, scenario=args.scenario)
    overrides = parse_set_arguments(args.overrides)
    if overrides:
        spec = apply_qualify_overrides(spec, overrides)
    if args.seed is not None:
        spec = replace(spec, seed=args.seed)
    telemetry = None
    if args.telemetry:
        from repro.obs.export import Telemetry

        telemetry = Telemetry(out_dir=args.telemetry, name=f"qualify-{spec.pack}")
    printer = None if args.quiet else print
    report = run_qualification(spec, telemetry=telemetry, printer=printer)
    if telemetry is not None:
        telemetry.finalize()
    if not args.quiet:
        print(report.summary())
    if args.output_dir:
        path = Path(args.output_dir) / f"qualify_{spec.pack}.json"
        report.to_json(path)
        if not args.quiet:
            print(f"Wrote {path}")
    return 0 if report.passed else 1


def _run_resume(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentSpec
    from repro.fleet.checkpoint import load_run_descriptor

    descriptor = load_run_descriptor(args.checkpoint_dir)
    try:
        spec = ExperimentSpec.from_dict(descriptor["spec"])
    except KeyError as exc:
        raise ReproError(
            f"run descriptor in {args.checkpoint_dir} has no 'spec' entry"
        ) from exc
    runner = ExperimentRunner(spec)
    report = runner.run_fleet(
        registry_root=descriptor.get("registry_root"),
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_cadence=int(descriptor.get("checkpoint_cadence", 0)),
        resume=True,
    )
    _print_fleet_report(report, runner, args, name=spec.name)
    return 0


def _run_models(args: argparse.Namespace) -> int:
    if not Path(args.registry).is_dir():
        raise ReproError(
            f"no model registry at {args.registry!r} (adaptive fleet runs create "
            "one; point --registry at it)"
        )
    registry = ModelRegistry(args.registry)
    if args.models_command == "show":
        print(json.dumps(registry.show(args.version).to_dict(), indent=2, sort_keys=True))
        return 0
    if args.models_command == "rollback":
        current = registry.rollback(args.tier)
        print(f"tier {args.tier}: rolled back to {current}")
        return 0
    versions = registry.versions()
    if not versions:
        print(f"No checkpoints in registry {registry.root}")
        return 0
    tiers = sorted({meta.tier for meta in versions})
    print(f"Registry {registry.root}: {len(versions)} checkpoint(s)")
    for tier in tiers:
        current = registry.current(tier)
        print(f"  tier {tier} (lineage: {' -> '.join(registry.lineage(tier)) or 'none'})")
        for meta in versions:
            if meta.tier != tier:
                continue
            marker = "*" if meta.version == current else " "
            quantized = "fp16" if meta.quantization else "fp32"
            window = (
                f"ticks {meta.training_window[0]}-{meta.training_window[1]}"
                if meta.training_window else "offline"
            )
            print(
                f"   {marker} {meta.version}  parent={meta.parent or '-':<15s} "
                f"{quantized}  {meta.parameter_count} params  {window}"
            )
    print("\n(* = currently promoted)")
    return 0


def _run_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "summarize":
        from repro.obs.summary import summarize_trace

        print(summarize_trace(args.path))
        return 0
    if args.obs_command == "tail":
        return _obs_tail(args)
    return _obs_top(args)


def _follow_loop(args: argparse.Namespace, step) -> int:
    """Shared poll loop of ``obs top``/``obs tail``.

    ``step(records)`` consumes one poll's records.  One-shot without
    ``--follow``/``--duration``; otherwise polls every ``--interval`` seconds
    until the trace finalizes and drains, or ``--duration`` elapses.
    """
    import time

    from repro.obs.export import TraceFollower

    follower = TraceFollower(args.path)
    follow = args.follow or args.duration is not None
    deadline = (
        time.monotonic() + args.duration if args.duration is not None else None
    )
    while True:
        records = follower.poll()
        step(records)
        if not follow:
            return 0
        if follower.finalized and not records:
            return 0
        if deadline is not None and time.monotonic() >= deadline:
            return 0
        time.sleep(args.interval)


def _obs_top(args: argparse.Namespace) -> int:
    from repro.obs.live import TopView

    view = TopView(slo_p99_ms=args.slo_ms)

    def step(records) -> None:
        view.update(records)
        print(view.render())
        print()

    return _follow_loop(args, step)


def _obs_tail(args: argparse.Namespace) -> int:
    from repro.obs.live import format_tail_line

    def step(records) -> None:
        for record in records:
            print(format_tail_line(record))

    return _follow_loop(args, step)


def _list_scenarios(verbose: bool = False) -> int:
    print("Registered scenarios:")
    for entry in SCENARIOS.entries():
        if verbose:
            tags = f"  [{', '.join(entry.tags)}]" if entry.tags else ""
            print(f"  {entry.name}{tags}")
            if entry.description:
                print(f"      {entry.description}")
            spec = SCENARIOS.spec(entry.name)
            workload = (
                f"source={spec.data.source}  layers={spec.topology.n_layers}  "
                f"seed={spec.seed}"
            )
            if spec.fleet is not None:
                workload += (
                    f"  fleet={spec.fleet.n_devices} devices x {spec.fleet.ticks} ticks"
                )
            if spec.adapt is not None:
                workload += f"  adapt={'/'.join(spec.adapt.monitors)}"
            if spec.serve is not None:
                workload += (
                    f"  serve={spec.serve.offered_rps:g} rps "
                    f"(p99 SLO {spec.serve.slo_p99_ms:g} ms)"
                )
            print(f"      {workload}")
        else:
            tags = f"  [{', '.join(entry.tags)}]" if entry.tags else ""
            print(f"  {entry.name:<28s} {entry.description}{tags}")
    print()
    print("Run one with: python -m repro.cli run <scenario> [--set dotted.key=value ...]")
    print("Stream a [fleet] scenario with: python -m repro.cli fleet <scenario>")
    return 0


def _describe_scenario(args: argparse.Namespace) -> int:
    described = SCENARIOS.describe(args.scenario)
    print(f"Scenario: {described['name']}")
    if described["description"]:
        print(f"Description: {described['description']}")
    if described["tags"]:
        print(f"Tags: {', '.join(described['tags'])}")
    # The optional nodes get an explicit one-line summary each, so fleet and
    # adapt scenarios are recognisable without reading the full spec dump.
    fleet = described["fleet"]
    if fleet is not None:
        mutators = ", ".join(m["kind"] for m in fleet["mutators"]) or "none"
        print(
            f"Fleet: {fleet['n_devices']} devices x {fleet['ticks']} ticks "
            f"(mutators: {mutators})"
        )
    adapt = described["adapt"]
    if adapt is not None:
        print(
            f"Adapt: monitors {', '.join(adapt['monitors'])}; retrain "
            f"{adapt['retrain_epochs']} epochs behind the shadow gate"
        )
    serve = described["serve"]
    if serve is not None:
        print(
            f"Serve: {serve['offered_rps']:g} rps offered, micro-batch "
            f"{serve['max_batch']}/{serve['max_wait_ms']:g} ms, p99 SLO "
            f"{serve['slo_p99_ms']:g} ms ({serve['shed_policy']} shedding)"
        )
    print()
    print("Spec (valid --set keys are the dotted paths into this document):")
    print(json.dumps(described["spec"], indent=2, sort_keys=True))
    return 0


def _warn_deprecated(command: str, replacement: str) -> None:
    warn_deprecated_once(
        f"cli.{command}",
        f"the '{command}' subcommand is deprecated; "
        f"use 'python -m repro.cli {replacement}'",
    )
    print(
        f"note: '{command}' is a deprecated alias; "
        f"use 'python -m repro.cli {replacement}'",
        file=sys.stderr,
    )


def run_command(args: argparse.Namespace) -> int:
    """Execute one parsed CLI command; returns a process exit code."""
    if args.command == "run":
        return _run_scenario(args)
    if args.command == "fleet":
        return _run_fleet(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "qualify":
        return _run_qualify(args)
    if args.command == "resume":
        return _run_resume(args)
    if args.command == "models":
        return _run_models(args)
    if args.command == "obs":
        return _run_obs(args)
    if args.command == "list":
        return _list_scenarios(verbose=getattr(args, "verbose", False))
    if args.command == "describe":
        return _describe_scenario(args)

    # Deprecated aliases over the legacy pipeline shims.
    if args.command == "univariate":
        _warn_deprecated("univariate", "run univariate-power")
    elif args.command == "multivariate":
        _warn_deprecated("multivariate", "run multivariate-mhealth")
    else:
        _warn_deprecated("both", "run univariate-power / run multivariate-mhealth")
    if args.command in ("univariate", "both"):
        result = run_univariate_pipeline(_univariate_config(args))
        _report(result, args)
    if args.command in ("multivariate", "both"):
        result = run_multivariate_pipeline(_multivariate_config(args))
        _report(result, args)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return run_command(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
