"""Autoencoder-based detectors for univariate IoT data (AE-IoT / AE-Edge / AE-Cloud).

Following Section II-A1 of the paper, three fully connected autoencoders of
increasing depth (three, five and seven layers) are associated with the IoT,
edge and cloud layers of the HEC system.  Each autoencoder is trained to
reconstruct normal weekly windows; reconstruction errors are scored with the
Gaussian logPD scorer and thresholded at the training-set minimum.

The default hidden-layer sizes are chosen so that, at the paper's window size
of 672 samples (one week of 15-minute data), the parameter counts match
Table I as closely as the published numbers allow:

========  ==========================  ===================  ==================
Tier      Hidden layers               Parameters (paper)   Parameters (ours)
========  ==========================  ===================  ==================
IoT       (201,)                      271,017              271,017
Edge      (512, 256, 512)             949,468              952,224
Cloud     (512, 256, 128, 256, 512)   1,085,077            1,018,144
========  ==========================  ===================  ==================
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.detectors.base import (
    AnomalyDetector,
    DetectionResult,
    arrays_from_point_scores,
    results_from_point_scores,
)
from repro.detectors.confidence import ConfidencePolicy
from repro.detectors.scoring import GaussianLogPDScorer
from repro.nn.layers.dense import Dense
from repro.nn.models.sequential import Sequential
from repro.nn.training import EarlyStopping
from repro.utils.rng import RngLike

#: Hidden-layer sizes per HEC tier for the paper-scale (672-sample) window.
UNIVARIATE_TIER_ARCHITECTURES: dict[str, Tuple[int, ...]] = {
    "iot": (201,),
    "edge": (512, 256, 512),
    "cloud": (512, 256, 128, 256, 512),
}


class AutoencoderDetector(AnomalyDetector):
    """A fully connected autoencoder with Gaussian logPD scoring."""

    def __init__(
        self,
        window_size: int,
        hidden_sizes: Sequence[int],
        hidden_activation: str = "relu",
        output_activation: str = "linear",
        confidence: Optional[ConfidencePolicy] = None,
        name: str = "autoencoder",
        seed: RngLike = 0,
    ) -> None:
        super().__init__(name=name)
        if window_size <= 0:
            raise ConfigurationError(f"window_size must be positive, got {window_size}")
        if not hidden_sizes:
            raise ConfigurationError("hidden_sizes must contain at least one layer size")
        self.window_size = int(window_size)
        self.hidden_sizes = tuple(int(h) for h in hidden_sizes)
        self.confidence = confidence or ConfidencePolicy()
        self.scorer = GaussianLogPDScorer()

        layers = [
            Dense(units, activation=hidden_activation, name=f"{name}_hidden_{i}")
            for i, units in enumerate(self.hidden_sizes)
        ]
        layers.append(Dense(self.window_size, activation=output_activation, name=f"{name}_output"))
        self.model = Sequential(layers, name=name, seed=seed)
        self.model.build(self.window_size)

    # -- training ---------------------------------------------------------------

    def fit(
        self,
        normal_windows: np.ndarray,
        epochs: int = 50,
        batch_size: int = 16,
        learning_rate: float = 1e-3,
        optimizer: str = "adam",
        early_stopping_patience: Optional[int] = 5,
        verbose: bool = False,
    ) -> "AutoencoderDetector":
        """Train on normal windows and fit the anomaly scorer/threshold."""
        windows = self._check_windows(normal_windows)
        self.model.compile(optimizer, "mse", learning_rate=learning_rate)
        stopper = (
            EarlyStopping(monitor="loss", patience=early_stopping_patience)
            if early_stopping_patience is not None
            else None
        )
        self.model.fit(
            windows,
            epochs=epochs,
            batch_size=batch_size,
            early_stopping=stopper,
            verbose=verbose,
        )
        errors = self._point_errors(windows)
        self.scorer.fit(errors.reshape(-1, 1))
        self.fitted = True
        return self

    # -- inference -----------------------------------------------------------------

    def _check_windows(self, windows: np.ndarray) -> np.ndarray:
        windows = np.asarray(windows, dtype=float)
        if windows.ndim == 1:
            windows = windows[None, :]
        if windows.ndim != 2:
            raise ShapeError(
                f"univariate windows must be 2-D (n_windows, window_size), got {windows.shape}"
            )
        if windows.shape[1] != self.window_size:
            raise ShapeError(
                f"windows have length {windows.shape[1]} but the detector expects "
                f"{self.window_size}"
            )
        return windows

    def reconstruct(self, windows: np.ndarray) -> np.ndarray:
        """Reconstruct windows with the autoencoder."""
        windows = self._check_windows(windows)
        return self.model.predict(windows, batch_size=64)

    def _point_errors(self, windows: np.ndarray) -> np.ndarray:
        reconstruction = self.model.predict(windows, batch_size=64)
        return windows - reconstruction

    def _point_score_matrix(self, windows: np.ndarray) -> np.ndarray:
        """The ``(n_windows, n_points)`` logPD matrix behind both detect paths."""
        self._require_fitted()
        windows = self._check_windows(windows)
        errors = self._point_errors(windows)
        n_windows, n_points = errors.shape
        # Every point of every window is scored with a single vectorised call.
        return self.scorer.log_probability_density(
            errors.reshape(-1, 1)
        ).reshape(n_windows, n_points)

    def detect(self, windows: np.ndarray) -> List[DetectionResult]:
        """Score all windows in one pass and apply the detection + confidence rules."""
        point_scores = self._point_score_matrix(windows)
        return results_from_point_scores(point_scores, self.scorer.threshold, self.confidence)

    def detect_arrays(self, windows: np.ndarray, with_confidence: bool = True) -> tuple:
        """Columnar detection: outcome arrays with no per-window objects."""
        point_scores = self._point_score_matrix(windows)
        return arrays_from_point_scores(
            point_scores, self.scorer.threshold, self.confidence,
            with_confidence=with_confidence,
        )

    # -- introspection -----------------------------------------------------------------

    def parameter_count(self) -> int:
        """Total number of autoencoder parameters."""
        return self.model.parameter_count()


def build_autoencoder_detector(
    tier: str,
    window_size: int,
    hidden_sizes: Optional[Sequence[int]] = None,
    confidence: Optional[ConfidencePolicy] = None,
    seed: RngLike = 0,
) -> AutoencoderDetector:
    """Build the AE detector for an HEC tier (``"iot"``, ``"edge"`` or ``"cloud"``).

    ``hidden_sizes`` overrides the paper-scale architecture, which is useful
    for fast tests with small windows.
    """
    tier = tier.lower()
    if tier not in UNIVARIATE_TIER_ARCHITECTURES:
        raise ConfigurationError(
            f"unknown tier {tier!r}; expected one of {sorted(UNIVARIATE_TIER_ARCHITECTURES)}"
        )
    sizes = tuple(hidden_sizes) if hidden_sizes is not None else UNIVARIATE_TIER_ARCHITECTURES[tier]
    return AutoencoderDetector(
        window_size=window_size,
        hidden_sizes=sizes,
        confidence=confidence,
        name=f"AE-{tier.capitalize() if tier != 'iot' else 'IoT'}",
        seed=seed,
    )
