"""Window-shape adapters: run a detector family on the "wrong" window layout.

The autoencoder family consumes flat ``(n, window_size)`` univariate windows;
the seq2seq family consumes ``(n, time, channels)`` multivariate windows.
Mixed-detector deployments (e.g. cheap autoencoders on the IoT/edge tiers with
a seq2seq model on the cloud) need both families to accept the *same* batch,
so :class:`WindowReshapeAdapter` wraps a detector and reshapes every incoming
batch before delegating:

* ``"expand-channel"`` — ``(n, T)`` univariate windows become ``(n, T, 1)``
  single-channel sequences (seq2seq on univariate data);
* ``"flatten"`` — ``(n, T, C)`` multivariate windows become ``(n, T * C)``
  flat vectors (autoencoder on multivariate data).

Everything else — name, fitted state, the underlying model (used by FP16
quantisation at deployment time), parameter counts, detection results — is
delegated untouched, so an adapted detector is a drop-in
:class:`~repro.detectors.base.AnomalyDetector` for the registry, the HEC
system and the evaluation code.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.detectors.base import AnomalyDetector, DetectionResult

#: Supported reshape modes.
ADAPTER_MODES = ("expand-channel", "flatten")


class WindowReshapeAdapter(AnomalyDetector):
    """Reshape window batches before handing them to the wrapped detector."""

    def __init__(self, detector: AnomalyDetector, mode: str) -> None:
        if mode not in ADAPTER_MODES:
            raise ConfigurationError(
                f"adapter mode must be one of {ADAPTER_MODES}, got {mode!r}"
            )
        # Deliberately no super().__init__: name/fitted are delegated properties.
        self.inner = detector
        self.mode = mode

    # -- delegated identity ----------------------------------------------------

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def fitted(self) -> bool:
        return self.inner.fitted

    @property
    def model(self):
        """The wrapped detector's model (quantisation targets this)."""
        return self.inner.model

    # -- reshaping ---------------------------------------------------------------

    def adapt(self, windows: np.ndarray) -> np.ndarray:
        """The wrapped detector's view of a ``(n, ...)`` window batch."""
        windows = np.asarray(windows, dtype=float)
        if self.mode == "expand-channel":
            if windows.ndim != 2:
                raise ShapeError(
                    f"expand-channel expects 2-D (n, window_size) batches, got {windows.shape}"
                )
            return windows[:, :, None]
        if windows.ndim != 3:
            raise ShapeError(
                f"flatten expects 3-D (n, time, channels) batches, got {windows.shape}"
            )
        return windows.reshape(windows.shape[0], -1)

    # -- AnomalyDetector interface -----------------------------------------------

    def fit(self, normal_windows: np.ndarray, **kwargs) -> "WindowReshapeAdapter":
        self.inner.fit(self.adapt(normal_windows), **kwargs)
        return self

    def reconstruct(self, windows: np.ndarray) -> np.ndarray:
        return self.inner.reconstruct(self.adapt(windows))

    def detect(self, windows: np.ndarray) -> List[DetectionResult]:
        return self.inner.detect(self.adapt(windows))

    def detect_arrays(self, windows: np.ndarray, with_confidence: bool = True) -> tuple:
        return self.inner.detect_arrays(
            self.adapt(windows), with_confidence=with_confidence
        )

    def predict(self, windows: np.ndarray) -> np.ndarray:
        return self.inner.predict(self.adapt(windows))

    def context_features(self, windows: np.ndarray) -> Optional[np.ndarray]:
        return self.inner.context_features(self.adapt(windows))

    def parameter_count(self) -> int:
        return self.inner.parameter_count()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WindowReshapeAdapter({self.inner!r}, mode={self.mode!r})"
