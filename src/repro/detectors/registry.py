"""Detector registry: one anomaly-detection model per HEC layer.

The paper associates its K models with the K layers of the HEC system (IoT
device, edge server, cloud).  :class:`DetectorRegistry` records that
association and is consumed by the deployment step of the HEC substrate and by
the selection schemes, which address models by layer index (0-based from the
bottom) or by tier name.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.exceptions import ConfigurationError, DeploymentError
from repro.detectors.base import AnomalyDetector

#: Canonical tier names from the bottom of the hierarchy to the top.
DEFAULT_TIER_NAMES: Tuple[str, ...] = ("iot", "edge", "cloud")


class DetectorRegistry:
    """An ordered mapping from HEC layer index to an anomaly detector."""

    def __init__(self, tier_names: Optional[Tuple[str, ...]] = None) -> None:
        self.tier_names: Tuple[str, ...] = tuple(tier_names) if tier_names else DEFAULT_TIER_NAMES
        if len(set(self.tier_names)) != len(self.tier_names):
            raise ConfigurationError(f"tier names must be unique, got {self.tier_names}")
        self._detectors: Dict[int, AnomalyDetector] = {}

    # -- registration ---------------------------------------------------------

    def register(self, layer: int | str, detector: AnomalyDetector) -> "DetectorRegistry":
        """Associate ``detector`` with an HEC layer (index or tier name)."""
        index = self._resolve_layer(layer)
        self._detectors[index] = detector
        return self

    def _resolve_layer(self, layer: int | str) -> int:
        if isinstance(layer, str):
            try:
                return self.tier_names.index(layer.lower())
            except ValueError as exc:
                raise ConfigurationError(
                    f"unknown tier {layer!r}; expected one of {self.tier_names}"
                ) from exc
        index = int(layer)
        if not 0 <= index < len(self.tier_names):
            raise ConfigurationError(
                f"layer index must lie in [0, {len(self.tier_names)}), got {index}"
            )
        return index

    # -- access ------------------------------------------------------------------

    def get(self, layer: int | str) -> AnomalyDetector:
        """The detector registered at ``layer`` (raises if missing)."""
        index = self._resolve_layer(layer)
        try:
            return self._detectors[index]
        except KeyError as exc:
            raise DeploymentError(
                f"no detector registered at layer {index} ({self.tier_names[index]!r})"
            ) from exc

    def tier_name(self, layer: int) -> str:
        """The tier name of a layer index."""
        return self.tier_names[self._resolve_layer(layer)]

    def layers(self) -> List[int]:
        """Sorted list of layer indices that have a registered detector."""
        return sorted(self._detectors)

    def detectors(self) -> List[AnomalyDetector]:
        """Registered detectors ordered from the bottom layer up."""
        return [self._detectors[index] for index in self.layers()]

    def __len__(self) -> int:
        return len(self._detectors)

    def __contains__(self, layer: object) -> bool:
        try:
            index = self._resolve_layer(layer)  # type: ignore[arg-type]
        except (ConfigurationError, TypeError, ValueError):
            return False
        return index in self._detectors

    def __iter__(self) -> Iterator[Tuple[int, AnomalyDetector]]:
        for index in self.layers():
            yield index, self._detectors[index]

    # -- validation ----------------------------------------------------------------

    def require_complete(self, n_layers: int) -> None:
        """Raise unless layers ``0..n_layers-1`` all have a registered detector."""
        missing = [index for index in range(n_layers) if index not in self._detectors]
        if missing:
            raise DeploymentError(
                f"detector registry is missing layers {missing} "
                f"(registered: {self.layers()})"
            )

    def summary(self) -> str:
        """A short multi-line description of the registry contents."""
        lines = ["DetectorRegistry:"]
        for index, detector in self:
            fitted = "fitted" if detector.fitted else "unfitted"
            lines.append(
                f"  layer {index} ({self.tier_names[index]}): {detector.name} "
                f"[{fitted}, {detector.parameter_count()} params]"
            )
        return "\n".join(lines)
