"""LSTM sequence-to-sequence detectors for multivariate IoT data.

Following Section II-A2 of the paper, three encoder–decoder models of
increasing complexity are associated with the HEC layers:

* ``LSTM-seq2seq-IoT`` — a plain LSTM encoder/decoder (50 units each at the
  paper's 18-channel scale);
* ``LSTM-seq2seq-Edge`` — double the LSTM units (100), with the CuDNN-style
  double-bias parameterisation the paper's GPU implementation implies;
* ``BiLSTM-seq2seq-Cloud`` — a bidirectional LSTM encoder (200 units per
  direction) feeding a 400-unit decoder.

At the 18-channel scale these choices give parameter counts of 28,518 /
97,818 / 1,031,218 against the paper's 28,518 / 97,818 / 1,028,018.

Each detector reconstructs windows, fits a multivariate Gaussian on the
per-timestep reconstruction-error vectors of normal training windows, scores
with logPD and thresholds at the training-set minimum, exactly like the
autoencoder family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.detectors.base import (
    AnomalyDetector,
    DetectionResult,
    arrays_from_point_scores,
    results_from_point_scores,
)
from repro.detectors.confidence import ConfidencePolicy
from repro.detectors.scoring import GaussianLogPDScorer
from repro.nn.layers.bidirectional import Bidirectional
from repro.nn.layers.lstm import LSTM
from repro.nn.models.seq2seq import Seq2SeqAutoencoder
from repro.nn.training import EarlyStopping
from repro.utils.rng import RngLike


@dataclass(frozen=True)
class Seq2SeqArchitecture:
    """Architecture knobs of one seq2seq tier."""

    units: int
    bidirectional: bool
    double_bias: bool


#: Architectures per HEC tier at the paper's 18-channel scale.  ``units`` is
#: the encoder size per direction; the decoder matches the encoder state size.
MULTIVARIATE_TIER_ARCHITECTURES: dict[str, Seq2SeqArchitecture] = {
    "iot": Seq2SeqArchitecture(units=50, bidirectional=False, double_bias=False),
    "edge": Seq2SeqArchitecture(units=100, bidirectional=False, double_bias=True),
    "cloud": Seq2SeqArchitecture(units=200, bidirectional=True, double_bias=True),
}


class Seq2SeqDetector(AnomalyDetector):
    """An LSTM encoder–decoder reconstruction detector with Gaussian logPD scoring."""

    def __init__(
        self,
        n_channels: int,
        units: int,
        bidirectional: bool = False,
        double_bias: bool = False,
        dropout_rate: float = 0.3,
        kernel_regularizer: float | None = 1e-4,
        inference_mode: str = "autoregressive",
        confidence: Optional[ConfidencePolicy] = None,
        name: str = "lstm-seq2seq",
        seed: RngLike = 0,
    ) -> None:
        super().__init__(name=name)
        if n_channels <= 0:
            raise ConfigurationError(f"n_channels must be positive, got {n_channels}")
        if units <= 0:
            raise ConfigurationError(f"units must be positive, got {units}")
        if inference_mode not in ("autoregressive", "teacher_forcing"):
            raise ConfigurationError(
                "inference_mode must be 'autoregressive' or 'teacher_forcing', "
                f"got {inference_mode!r}"
            )
        self.n_channels = int(n_channels)
        self.units = int(units)
        self.bidirectional = bool(bidirectional)
        self.inference_mode = inference_mode
        self.confidence = confidence or ConfidencePolicy()
        self.scorer = GaussianLogPDScorer()

        encoder_lstm = LSTM(
            self.units,
            return_sequences=False,
            double_bias=double_bias,
            name=f"{name}_encoder",
        )
        if bidirectional:
            encoder = Bidirectional(encoder_lstm, name=f"{name}_bidirectional_encoder")
            decoder_units = 2 * self.units
        else:
            encoder = encoder_lstm
            decoder_units = self.units
        decoder = LSTM(
            decoder_units,
            return_sequences=True,
            double_bias=double_bias,
            name=f"{name}_decoder",
        )
        self.model = Seq2SeqAutoencoder(
            encoder=encoder,
            decoder=decoder,
            output_dim=self.n_channels,
            dropout_rate=dropout_rate,
            kernel_regularizer=kernel_regularizer,
            name=name,
            seed=seed,
        )

    # -- training -------------------------------------------------------------------

    def fit(
        self,
        normal_windows: np.ndarray,
        epochs: int = 30,
        batch_size: int = 16,
        learning_rate: float = 1e-3,
        optimizer: str = "rmsprop",
        early_stopping_patience: Optional[int] = 5,
        verbose: bool = False,
    ) -> "Seq2SeqDetector":
        """Train on normal windows (RMSProp + MSE, as in the paper) and fit the scorer."""
        windows = self._check_windows(normal_windows)
        self.model.compile(optimizer, "mse", learning_rate=learning_rate)
        stopper = (
            EarlyStopping(monitor="loss", patience=early_stopping_patience)
            if early_stopping_patience is not None
            else None
        )
        self.model.fit(
            windows,
            epochs=epochs,
            batch_size=batch_size,
            early_stopping=stopper,
            verbose=verbose,
        )
        errors = self._point_errors(windows)
        self.scorer.fit(errors.reshape(-1, self.n_channels))
        self.fitted = True
        return self

    # -- inference --------------------------------------------------------------------

    def _check_windows(self, windows: np.ndarray) -> np.ndarray:
        windows = np.asarray(windows, dtype=float)
        if windows.ndim == 2:
            windows = windows[None, :, :]
        if windows.ndim != 3:
            raise ShapeError(
                "multivariate windows must be 3-D (n_windows, window_size, channels), "
                f"got {windows.shape}"
            )
        if windows.shape[2] != self.n_channels:
            raise ShapeError(
                f"windows have {windows.shape[2]} channels but the detector expects "
                f"{self.n_channels}"
            )
        return windows

    def reconstruct(self, windows: np.ndarray) -> np.ndarray:
        """Reconstruct windows with the seq2seq model (mode set at construction)."""
        windows = self._check_windows(windows)
        teacher_forcing = self.inference_mode == "teacher_forcing"
        return self.model.reconstruct(windows, teacher_forcing=teacher_forcing)

    def _point_errors(self, windows: np.ndarray) -> np.ndarray:
        return windows - self.reconstruct(windows)

    def _point_score_matrix(self, windows: np.ndarray) -> np.ndarray:
        """The ``(n_windows, n_timesteps)`` logPD matrix behind both detect paths."""
        self._require_fitted()
        windows = self._check_windows(windows)
        errors = self._point_errors(windows)
        n_windows, n_points = errors.shape[0], errors.shape[1]
        # Every timestep of every window is scored with a single vectorised call.
        return self.scorer.log_probability_density(
            errors.reshape(-1, self.n_channels)
        ).reshape(n_windows, n_points)

    def detect(self, windows: np.ndarray) -> List[DetectionResult]:
        """Score all windows in one pass and apply the detection + confidence rules."""
        point_scores = self._point_score_matrix(windows)
        return results_from_point_scores(point_scores, self.scorer.threshold, self.confidence)

    def detect_arrays(self, windows: np.ndarray, with_confidence: bool = True) -> tuple:
        """Columnar detection: outcome arrays with no per-window objects."""
        point_scores = self._point_score_matrix(windows)
        return arrays_from_point_scores(
            point_scores, self.scorer.threshold, self.confidence,
            with_confidence=with_confidence,
        )

    def context_features(self, windows: np.ndarray) -> np.ndarray:
        """Encoder hidden states, used as the policy network's contextual input."""
        windows = self._check_windows(windows)
        return self.model.encode(windows)

    # -- introspection ------------------------------------------------------------------

    def parameter_count(self) -> int:
        """Total number of seq2seq parameters."""
        return self.model.parameter_count()


def build_seq2seq_detector(
    tier: str,
    n_channels: int,
    units: Optional[int] = None,
    inference_mode: str = "autoregressive",
    confidence: Optional[ConfidencePolicy] = None,
    dropout_rate: float = 0.3,
    seed: RngLike = 0,
) -> Seq2SeqDetector:
    """Build the seq2seq detector for an HEC tier (``"iot"``, ``"edge"`` or ``"cloud"``).

    ``units`` overrides the paper-scale encoder size, which keeps tests fast.
    """
    tier = tier.lower()
    if tier not in MULTIVARIATE_TIER_ARCHITECTURES:
        raise ConfigurationError(
            f"unknown tier {tier!r}; expected one of {sorted(MULTIVARIATE_TIER_ARCHITECTURES)}"
        )
    architecture = MULTIVARIATE_TIER_ARCHITECTURES[tier]
    resolved_units = int(units) if units is not None else architecture.units
    names = {"iot": "LSTM-seq2seq-IoT", "edge": "LSTM-seq2seq-Edge", "cloud": "BiLSTM-seq2seq-Cloud"}
    return Seq2SeqDetector(
        n_channels=n_channels,
        units=resolved_units,
        bidirectional=architecture.bidirectional,
        double_bias=architecture.double_bias,
        dropout_rate=dropout_rate,
        inference_mode=inference_mode,
        confidence=confidence,
        name=names[tier],
        seed=seed,
    )
