"""Confident-detection rules.

Section II-A3 of the paper calls a detection *confident* when the input
sequence satisfies at least one of:

(i)  at least one data point has a logPD less than a certain multiple (e.g.
     2x) of the threshold (logPD values are negative, so "2x the threshold"
     is a *stricter*, more negative level); or
(ii) the number of anomalous points exceeds a certain percentage (e.g. 5 %)
     of the sequence length.

The Successive offloading scheme stops escalating to a higher HEC layer as
soon as the current layer's detection is confident.  The same rules also mark
a *normal* verdict as confident when the window contains no outlier points at
all and its scores stay well above the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class ConfidencePolicy:
    """Parameters of the confident-detection rules.

    Attributes
    ----------
    strong_score_multiplier:
        Rule (i): a point with ``logPD < strong_score_multiplier * threshold``
        marks the anomaly verdict as confident (2.0 in the paper; recall that
        logPD and the threshold are negative).
    anomalous_fraction:
        Rule (ii): the anomaly verdict is confident when more than this
        fraction of the window's points fall below the threshold (0.05 in the
        paper).
    normal_margin:
        A *normal* verdict is confident when no point falls below
        ``normal_margin * threshold`` (i.e. every score stays comfortably above
        the detection threshold).  This mirrors how a confident "all clear"
        terminates the Successive scheme early.
    """

    strong_score_multiplier: float = 2.0
    anomalous_fraction: float = 0.05
    normal_margin: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.strong_score_multiplier, "strong_score_multiplier")
        check_probability(self.anomalous_fraction, "anomalous_fraction")
        check_positive(self.normal_margin, "normal_margin")

    def evaluate(self, point_scores: np.ndarray, threshold: float) -> tuple[bool, bool, float]:
        """Apply the rules to one window's point scores.

        Parameters
        ----------
        point_scores:
            Per-timestep logPD values of the window.
        threshold:
            The detector's (negative) logPD threshold.

        Returns
        -------
        (is_anomaly, confident, anomalous_fraction):
            The binary verdict, whether that verdict is confident, and the
            fraction of points below the threshold.
        """
        point_scores = np.asarray(point_scores, dtype=float)
        below_threshold = point_scores < threshold
        anomalous_fraction = float(np.mean(below_threshold)) if point_scores.size else 0.0
        is_anomaly = bool(below_threshold.any())

        if is_anomaly:
            strongly_anomalous = bool(
                np.any(point_scores < self.strong_score_multiplier * threshold)
            )
            high_fraction = anomalous_fraction > self.anomalous_fraction
            confident = strongly_anomalous or high_fraction
        else:
            # Confidently normal: every point stays at or above the margin level.
            confident = bool(np.all(point_scores >= self.normal_margin * threshold))
        return is_anomaly, confident, anomalous_fraction

    def evaluate_batch(
        self, point_scores: np.ndarray, threshold: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised :meth:`evaluate` over an ``(n_windows, n_points)`` score matrix.

        Returns ``(is_anomaly, confident, anomalous_fraction)``, one entry per
        window, identical to applying :meth:`evaluate` row by row.
        """
        point_scores = np.asarray(point_scores, dtype=float)
        if point_scores.ndim != 2:
            raise ValueError(
                f"point_scores must be 2-D (n_windows, n_points), got shape "
                f"{point_scores.shape}"
            )
        below_threshold = point_scores < threshold
        if point_scores.shape[1]:
            anomalous_fraction = below_threshold.mean(axis=1)
        else:
            anomalous_fraction = np.zeros(point_scores.shape[0])
        is_anomaly = below_threshold.any(axis=1)
        strongly_anomalous = (
            point_scores < self.strong_score_multiplier * threshold
        ).any(axis=1)
        confident_anomaly = strongly_anomalous | (
            anomalous_fraction > self.anomalous_fraction
        )
        confident_normal = (point_scores >= self.normal_margin * threshold).all(axis=1)
        confident = np.where(is_anomaly, confident_anomaly, confident_normal)
        return is_anomaly, confident, anomalous_fraction
