"""Common anomaly-detector interface.

A detector wraps a reconstruction model plus the Gaussian logPD scorer and the
confidence rules.  The interface is deliberately small: ``fit`` on normal
windows, ``detect`` a batch of windows (returning a
:class:`DetectionResult` per window), and a few introspection helpers
(parameter count, name) used by the HEC deployment and evaluation code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.exceptions import NotFittedError


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of running one detector on one window.

    Attributes
    ----------
    is_anomaly:
        The binary prediction (True = anomalous window).
    confident:
        Whether the detection satisfies one of the paper's confidence rules
        (used by the Successive scheme to decide whether to stop escalating).
    anomaly_score:
        The window-level anomaly score (the minimum per-timestep logPD; lower
        means more anomalous).
    point_scores:
        Per-timestep logPD scores within the window.
    anomalous_point_fraction:
        Fraction of timesteps whose logPD falls below the detection threshold.
    """

    is_anomaly: bool
    confident: bool
    anomaly_score: float
    point_scores: np.ndarray
    anomalous_point_fraction: float


def arrays_from_point_scores(
    point_scores: np.ndarray,
    threshold: float,
    confidence,
    with_confidence: bool = True,
) -> tuple:
    """``(is_anomaly, confident, window_scores, fractions)`` arrays for a batch.

    The columnar tail of detection: the detection and confidence rules are
    applied to the whole ``(n_windows, n_points)`` logPD matrix at once and
    the per-window summaries come back as aligned arrays — no
    :class:`DetectionResult` objects.  :func:`results_from_point_scores` (and
    through it every detector's ``detect``) is a thin boxing layer over this.

    ``with_confidence=False`` skips the confidence rules (and the fraction
    pass) entirely, returning ``None`` in their slots — the streaming fast
    path never consults them, and the detection rule itself
    (any point's logPD strictly below the threshold) is unchanged.
    """
    point_scores = np.asarray(point_scores, dtype=float)
    if not with_confidence:
        # Same detection rule as ConfidencePolicy.evaluate_batch, minus the
        # strong-score and anomalous-fraction passes nobody will read.
        is_anomaly = (point_scores < threshold).any(axis=1)
        return is_anomaly, None, point_scores.min(axis=1), None
    is_anomaly, confident, fractions = confidence.evaluate_batch(point_scores, threshold)
    return (
        np.asarray(is_anomaly, dtype=bool),
        np.asarray(confident, dtype=bool),
        point_scores.min(axis=1),
        np.asarray(fractions, dtype=float),
    )


def results_from_point_scores(
    point_scores: np.ndarray,
    threshold: float,
    confidence,
) -> List["DetectionResult"]:
    """Fan one ``(n_windows, n_points)`` logPD matrix out into per-window results.

    The detection and confidence rules are applied to all windows at once via
    :meth:`~repro.detectors.confidence.ConfidencePolicy.evaluate_batch`; only
    the per-window :class:`DetectionResult` construction remains a loop.  This
    is the shared tail of every detector's batched ``detect``.
    """
    point_scores = np.asarray(point_scores, dtype=float)
    is_anomaly, confident, window_scores, fractions = arrays_from_point_scores(
        point_scores, threshold, confidence
    )
    return [
        DetectionResult(
            is_anomaly=bool(anomaly),
            confident=bool(conf),
            anomaly_score=float(score),
            point_scores=scores,
            anomalous_point_fraction=float(fraction),
        )
        for anomaly, conf, score, scores, fraction in zip(
            is_anomaly, confident, window_scores, point_scores, fractions
        )
    ]


class AnomalyDetector:
    """Base class for the AE and seq2seq detectors."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.fitted = False

    # -- training ------------------------------------------------------------

    def fit(self, normal_windows: np.ndarray, **kwargs) -> "AnomalyDetector":
        """Train the reconstruction model and the scorer on normal windows."""
        raise NotImplementedError

    # -- inference -------------------------------------------------------------

    def reconstruct(self, windows: np.ndarray) -> np.ndarray:
        """Reconstruct windows with the underlying model."""
        raise NotImplementedError

    def detect(self, windows: np.ndarray) -> List[DetectionResult]:
        """Run detection on a batch of windows (one result per window)."""
        raise NotImplementedError

    def detect_arrays(self, windows: np.ndarray, with_confidence: bool = True) -> tuple:
        """``(is_anomaly, confident, anomaly_scores, fractions)`` for a batch.

        The columnar counterpart of :meth:`detect`: the same outcomes as
        aligned arrays instead of per-window :class:`DetectionResult`
        objects.  The base implementation tears apart :meth:`detect` (so any
        subclass is automatically correct); the built-in detectors override
        it to skip the object layer entirely, and to skip the confidence
        rules too when ``with_confidence=False`` (the base fallback simply
        returns them regardless — a correct superset).
        """
        del with_confidence
        results = self.detect(windows)
        return (
            np.fromiter((r.is_anomaly for r in results), dtype=bool, count=len(results)),
            np.fromiter((r.confident for r in results), dtype=bool, count=len(results)),
            np.fromiter(
                (r.anomaly_score for r in results), dtype=float, count=len(results)
            ),
            np.fromiter(
                (r.anomalous_point_fraction for r in results),
                dtype=float,
                count=len(results),
            ),
        )

    def predict(self, windows: np.ndarray) -> np.ndarray:
        """Binary predictions (1 = anomaly) for a batch of windows."""
        return np.asarray([int(result.is_anomaly) for result in self.detect(windows)], dtype=int)

    def context_features(self, windows: np.ndarray) -> Optional[np.ndarray]:
        """Optional contextual features this detector can provide for the bandit.

        The multivariate detectors expose the LSTM-encoder state here; the
        univariate detectors return ``None`` (their context comes from simple
        statistics computed in :mod:`repro.bandit.context`).
        """
        del windows
        return None

    # -- introspection -----------------------------------------------------------

    def parameter_count(self) -> int:
        """Number of trainable parameters of the underlying model."""
        raise NotImplementedError

    def _require_fitted(self) -> None:
        if not self.fitted:
            raise NotFittedError(f"detector {self.name!r} has not been fitted")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, fitted={self.fitted})"
