"""Gaussian log-probability-density anomaly scoring.

Following Section II-A3 of the paper, reconstruction errors of normal data are
assumed to follow a multivariate Gaussian ``N(mu, Sigma)``.  The anomaly score
of a data point is the logarithmic probability density (logPD) of its
reconstruction error under that Gaussian; the detection threshold is the
*minimum* logPD observed on the (normal) training set, so that any point whose
logPD falls below what was ever seen on normal data is flagged as an outlier.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import NotFittedError, ShapeError
from repro.utils.validation import check_positive


class GaussianLogPDScorer:
    """Fit ``N(mu, Sigma)`` on normal reconstruction errors and score by logPD.

    Works for univariate errors (shape ``(n,)`` or ``(n, 1)``) and multivariate
    errors (shape ``(n, d)``).  A small diagonal regulariser keeps the
    covariance invertible when channels are nearly deterministic.
    """

    def __init__(self, covariance_regularization: float = 1e-6) -> None:
        self.covariance_regularization = check_positive(
            covariance_regularization, "covariance_regularization"
        )
        self.mean_: Optional[np.ndarray] = None
        self.covariance_: Optional[np.ndarray] = None
        self.precision_: Optional[np.ndarray] = None
        self.log_det_: Optional[float] = None
        self.threshold_: Optional[float] = None

    # -- fitting ---------------------------------------------------------------

    @staticmethod
    def _as_2d(errors: np.ndarray) -> np.ndarray:
        errors = np.asarray(errors, dtype=float)
        if errors.ndim == 1:
            return errors[:, None]
        if errors.ndim == 2:
            return errors
        raise ShapeError(f"errors must be 1-D or 2-D, got shape {errors.shape}")

    def fit(self, normal_errors: np.ndarray) -> "GaussianLogPDScorer":
        """Estimate ``mu`` and ``Sigma`` from normal reconstruction errors."""
        errors = self._as_2d(normal_errors)
        if errors.shape[0] < 2:
            raise ShapeError("need at least 2 error samples to fit the Gaussian")
        self.mean_ = errors.mean(axis=0)
        centred = errors - self.mean_
        covariance = (centred.T @ centred) / (errors.shape[0] - 1)
        covariance += self.covariance_regularization * np.eye(errors.shape[1])
        self.covariance_ = covariance
        self.precision_ = np.linalg.inv(covariance)
        sign, log_det = np.linalg.slogdet(covariance)
        if sign <= 0:
            raise ShapeError("covariance matrix is not positive definite")
        self.log_det_ = float(log_det)
        # The threshold is set from the same normal data (minimum logPD seen on
        # the training set), per the paper.
        self.threshold_ = float(np.min(self.log_probability_density(errors)))
        return self

    # -- scoring -----------------------------------------------------------------

    def _require_fitted(self) -> None:
        if self.mean_ is None or self.precision_ is None or self.log_det_ is None:
            raise NotFittedError("GaussianLogPDScorer must be fitted before scoring")

    def log_probability_density(self, errors: np.ndarray) -> np.ndarray:
        """logPD of each error sample under the fitted Gaussian."""
        self._require_fitted()
        errors = self._as_2d(errors)
        if errors.shape[1] != self.mean_.shape[0]:
            raise ShapeError(
                f"errors have {errors.shape[1]} dimensions but the scorer was fitted "
                f"with {self.mean_.shape[0]}"
            )
        centred = errors - self.mean_
        mahalanobis = np.einsum("ij,jk,ik->i", centred, self.precision_, centred)
        dimension = errors.shape[1]
        return -0.5 * (mahalanobis + self.log_det_ + dimension * np.log(2.0 * np.pi))

    @property
    def threshold(self) -> float:
        """Minimum logPD observed on the normal training errors."""
        self._require_fitted()
        if self.threshold_ is None:
            raise NotFittedError("scorer threshold has not been computed")
        return self.threshold_

    def is_outlier(self, errors: np.ndarray) -> np.ndarray:
        """Boolean mask: logPD strictly below the training-set minimum."""
        return self.log_probability_density(errors) < self.threshold

    # -- persistence -----------------------------------------------------------------

    def get_state(self) -> dict:
        """Snapshot of the fitted parameters (for saving alongside the model)."""
        self._require_fitted()
        return {
            "mean": np.asarray(self.mean_),
            "covariance": np.asarray(self.covariance_),
            "threshold": np.asarray(self.threshold_),
            "covariance_regularization": np.asarray(self.covariance_regularization),
        }

    @classmethod
    def from_state(cls, state: dict) -> "GaussianLogPDScorer":
        """Rebuild a scorer from :meth:`get_state` output."""
        scorer = cls(covariance_regularization=float(state["covariance_regularization"]))
        scorer.mean_ = np.asarray(state["mean"], dtype=float)
        scorer.covariance_ = np.asarray(state["covariance"], dtype=float)
        scorer.precision_ = np.linalg.inv(scorer.covariance_)
        sign, log_det = np.linalg.slogdet(scorer.covariance_)
        scorer.log_det_ = float(log_det)
        scorer.threshold_ = float(state["threshold"])
        return scorer
