"""Anomaly-detection models and scoring.

This subpackage implements the paper's detection side:

* :mod:`repro.detectors.base` — the common :class:`AnomalyDetector` API
  (fit on normal windows, score windows, predict binary labels, report
  confidence);
* :mod:`repro.detectors.autoencoder` — the univariate autoencoder family
  (``AE-IoT`` / ``AE-Edge`` / ``AE-Cloud``);
* :mod:`repro.detectors.lstm_seq2seq` — the multivariate LSTM-seq2seq family
  (``LSTM-seq2seq-IoT`` / ``LSTM-seq2seq-Edge`` / ``BiLSTM-seq2seq-Cloud``);
* :mod:`repro.detectors.scoring` — the Gaussian log-probability-density
  anomaly score and its minimum-logPD threshold;
* :mod:`repro.detectors.confidence` — the paper's two confident-detection
  rules;
* :mod:`repro.detectors.registry` — a registry that associates one detector
  with each HEC layer;
* :mod:`repro.detectors.adapters` — window-shape adapters that let a detector
  family run on the other family's window layout (mixed-detector scenarios).
"""

from repro.detectors.base import AnomalyDetector, DetectionResult
from repro.detectors.scoring import GaussianLogPDScorer
from repro.detectors.confidence import ConfidencePolicy
from repro.detectors.autoencoder import (
    AutoencoderDetector,
    build_autoencoder_detector,
    UNIVARIATE_TIER_ARCHITECTURES,
)
from repro.detectors.lstm_seq2seq import (
    Seq2SeqDetector,
    build_seq2seq_detector,
    MULTIVARIATE_TIER_ARCHITECTURES,
)
from repro.detectors.registry import DetectorRegistry
from repro.detectors.adapters import WindowReshapeAdapter

__all__ = [
    "AnomalyDetector",
    "DetectionResult",
    "GaussianLogPDScorer",
    "ConfidencePolicy",
    "AutoencoderDetector",
    "build_autoencoder_detector",
    "UNIVARIATE_TIER_ARCHITECTURES",
    "Seq2SeqDetector",
    "build_seq2seq_detector",
    "MULTIVARIATE_TIER_ARCHITECTURES",
    "DetectorRegistry",
    "WindowReshapeAdapter",
]
