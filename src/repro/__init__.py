"""Contextual-bandit anomaly detection for IoT data in hierarchical edge computing.

This package is a from-scratch reproduction of the ICDCS 2020 demo paper
"Contextual-Bandit Anomaly Detection for IoT Data in Distributed Hierarchical
Edge Computing" (Ngo, Luo, Chaouchi, Quek).

The package is organised into the following subpackages:

``repro.nn``
    A pure-NumPy neural-network library (dense layers, LSTM, bidirectional
    LSTM, sequence-to-sequence models, optimisers, losses, quantisation).
``repro.data``
    Synthetic dataset generators that mirror the structure of the two public
    datasets used by the paper (univariate power consumption and the
    multivariate MHEALTH activity dataset), plus windowing and preprocessing.
``repro.detectors``
    The anomaly-detection models of the paper: the autoencoder family for
    univariate data, the LSTM-seq2seq family for multivariate data, and the
    Gaussian log-probability-density anomaly scorer.
``repro.bandit``
    The contextual-bandit model-selection core: context extraction, the policy
    network, the REINFORCE trainer with a reinforcement-comparison baseline
    and the delay-aware reward function.
``repro.hec``
    A simulated hierarchical edge computing substrate: device profiles,
    network links, topology, deployment and end-to-end delay accounting.
``repro.schemes``
    The five model-selection schemes evaluated in the paper (IoT, Edge,
    Cloud, Successive, Adaptive).
``repro.evaluation``
    Detection metrics, the experiment runner and the generators for Table I,
    Table II and the demo result panel (Fig. 3).
``repro.experiments``
    The declarative experiment API: serialisable ``ExperimentSpec`` trees, the
    stage-based ``ExperimentRunner`` and the scenario registry behind the
    ``repro run / list / describe`` CLI.
``repro.pipelines``
    Deprecated shims over ``repro.experiments`` preserving the original
    univariate/multivariate pipeline entry points.
"""

from repro.version import __version__
from repro.exceptions import (
    ReproError,
    ConfigurationError,
    NotFittedError,
    ShapeError,
    DeploymentError,
    SchedulingError,
)

__all__ = [
    "__version__",
    "ReproError",
    "ConfigurationError",
    "NotFittedError",
    "ShapeError",
    "DeploymentError",
    "SchedulingError",
]
