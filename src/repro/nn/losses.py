"""Loss functions.

The paper's anomaly-detection models minimise the mean squared reconstruction
error; :class:`MeanSquaredError` implements that.  Losses expose ``value`` and
``gradient`` (with respect to the prediction), averaged over every element so
the gradient scale is independent of batch and sequence length.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError


class Loss:
    """Base class for losses over (prediction, target) pairs of equal shape."""

    name: str = "loss"

    def value(self, prediction: np.ndarray, target: np.ndarray) -> float:
        """Scalar loss value."""
        raise NotImplementedError

    def gradient(self, prediction: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Gradient of the loss with respect to ``prediction``."""
        raise NotImplementedError

    @staticmethod
    def _check(prediction: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        prediction = np.asarray(prediction, dtype=float)
        target = np.asarray(target, dtype=float)
        if prediction.shape != target.shape:
            raise ShapeError(
                f"prediction shape {prediction.shape} does not match target shape {target.shape}"
            )
        return prediction, target


class MeanSquaredError(Loss):
    """Mean squared error averaged over all elements."""

    name = "mse"

    def value(self, prediction: np.ndarray, target: np.ndarray) -> float:
        prediction, target = self._check(prediction, target)
        return float(np.mean(np.square(prediction - target)))

    def gradient(self, prediction: np.ndarray, target: np.ndarray) -> np.ndarray:
        prediction, target = self._check(prediction, target)
        return 2.0 * (prediction - target) / prediction.size


class MeanAbsoluteError(Loss):
    """Mean absolute error averaged over all elements."""

    name = "mae"

    def value(self, prediction: np.ndarray, target: np.ndarray) -> float:
        prediction, target = self._check(prediction, target)
        return float(np.mean(np.abs(prediction - target)))

    def gradient(self, prediction: np.ndarray, target: np.ndarray) -> np.ndarray:
        prediction, target = self._check(prediction, target)
        return np.sign(prediction - target) / prediction.size


class HuberLoss(Loss):
    """Huber loss: quadratic near zero, linear beyond ``delta``."""

    name = "huber"

    def __init__(self, delta: float = 1.0) -> None:
        if delta <= 0:
            raise ConfigurationError(f"delta must be positive, got {delta}")
        self.delta = float(delta)

    def value(self, prediction: np.ndarray, target: np.ndarray) -> float:
        prediction, target = self._check(prediction, target)
        error = prediction - target
        abs_error = np.abs(error)
        quadratic = np.minimum(abs_error, self.delta)
        linear = abs_error - quadratic
        return float(np.mean(0.5 * quadratic**2 + self.delta * linear))

    def gradient(self, prediction: np.ndarray, target: np.ndarray) -> np.ndarray:
        prediction, target = self._check(prediction, target)
        error = prediction - target
        clipped = np.clip(error, -self.delta, self.delta)
        return clipped / prediction.size


_REGISTRY = {
    "mse": MeanSquaredError,
    "mean_squared_error": MeanSquaredError,
    "mae": MeanAbsoluteError,
    "mean_absolute_error": MeanAbsoluteError,
    "huber": HuberLoss,
}


def get_loss(spec: Union[str, Loss, None]) -> Loss:
    """Resolve a loss by name; ``None`` resolves to MSE."""
    if spec is None:
        return MeanSquaredError()
    if isinstance(spec, Loss):
        return spec
    try:
        return _REGISTRY[str(spec).lower()]()
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown loss {spec!r}; available: {sorted(set(_REGISTRY))}"
        ) from exc
