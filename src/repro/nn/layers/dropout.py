"""Inverted dropout layer.

The paper applies dropout with rate 0.3 to the LSTM-decoder output before the
final fully connected projection; this layer reproduces that behaviour.  At
inference time (``training=False``) dropout is the identity.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.layers.base import Layer
from repro.utils.validation import check_probability


class Dropout(Layer):
    """Inverted dropout: zero each activation with probability ``rate`` during training."""

    def __init__(self, rate: float = 0.3, name: Optional[str] = None) -> None:
        super().__init__(name=name)
        self.rate = check_probability(rate, "rate")
        self._mask: Optional[np.ndarray] = None

    def build(self, input_dim: int) -> None:
        # Dropout has no parameters; build only records that the layer is usable.
        del input_dim

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=float)
        self.ensure_built(inputs.shape[-1] if inputs.ndim > 0 else 1)
        if not training or self.rate == 0.0:
            self._mask = None
            return inputs
        keep_probability = 1.0 - self.rate
        self._mask = (self._rng.random(inputs.shape) < keep_probability) / keep_probability
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_output = np.asarray(grad_output, dtype=float)
        if self._mask is None:
            return grad_output
        if self._mask.shape != grad_output.shape:
            raise ShapeError(
                f"dropout mask shape {self._mask.shape} does not match gradient shape "
                f"{grad_output.shape}"
            )
        return grad_output * self._mask

    def get_config(self) -> dict:
        config = super().get_config()
        config["rate"] = self.rate
        return config
