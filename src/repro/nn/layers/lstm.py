r"""Long short-term memory (LSTM) layer with full backpropagation through time.

The implementation follows the standard LSTM formulation used by Keras:

.. math::

    z_t &= x_t W + h_{t-1} U + b \\
    i_t, f_t, g_t, o_t &= \sigma(z^i_t), \sigma(z^f_t), \tanh(z^g_t), \sigma(z^o_t) \\
    c_t &= f_t \odot c_{t-1} + i_t \odot g_t \\
    h_t &= o_t \odot \tanh(c_t)

Gate ordering inside the fused matrices is ``(i, f, g, o)``.

Two details exist specifically to mirror the paper's implementation:

* ``double_bias=True`` adds a second (redundant) bias vector, matching the
  parameter count of CuDNN-backed LSTMs, which the paper uses for the edge
  and cloud models (Table I's parameter counts only line up with CuDNN's
  double-bias convention).
* ``forward`` accepts an ``initial_state`` and ``backward`` accepts/exposes
  state gradients, which is what allows the sequence-to-sequence
  encoder–decoder in :mod:`repro.nn.models.seq2seq` to train end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.activations import sigmoid as _sigmoid
from repro.nn.initializers import get_initializer
from repro.nn.layers.base import Layer
from repro.nn.regularizers import Regularizer, get_regularizer
from repro.utils.validation import check_positive

State = Tuple[np.ndarray, np.ndarray]


@dataclass
class _SequenceCache:
    """Whole-sequence tensors cached during the forward pass for BPTT.

    Gate activations are stored as full ``(batch, time, units)`` tensors (one
    allocation per gate for the entire sequence) instead of per-timestep
    objects, so the backward pass can compute the weight gradients with single
    ``tensordot`` contractions over the batch and time axes.  ``h_states`` and
    ``c_states`` have shape ``(batch, time + 1, units)``: index ``t`` holds the
    state *entering* timestep ``t`` (index 0 is the initial state), so
    ``h_states[:, 1:]`` is the output sequence.
    """

    inputs: np.ndarray
    h_states: np.ndarray
    c_states: np.ndarray
    i: np.ndarray
    f: np.ndarray
    g: np.ndarray
    o: np.ndarray
    tanh_c: np.ndarray


class LSTM(Layer):
    """A single LSTM layer over 3-D inputs ``(batch, time, features)``."""

    def __init__(
        self,
        units: int,
        return_sequences: bool = False,
        kernel_initializer: str = "glorot_uniform",
        recurrent_initializer: str = "orthogonal",
        bias_initializer: str = "zeros",
        kernel_regularizer: Union[Regularizer, str, float, None] = None,
        unit_forget_bias: bool = True,
        double_bias: bool = False,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name)
        self.units = int(check_positive(units, "units"))
        self.return_sequences = bool(return_sequences)
        self.kernel_initializer = kernel_initializer
        self.recurrent_initializer = recurrent_initializer
        self.bias_initializer = bias_initializer
        self.kernel_regularizer = get_regularizer(kernel_regularizer)
        self.unit_forget_bias = bool(unit_forget_bias)
        self.double_bias = bool(double_bias)
        self.input_dim: Optional[int] = None

        # Populated by forward/backward.
        self.last_state: Optional[State] = None
        self.grad_initial_state: Optional[State] = None
        self._cache: Optional[_SequenceCache] = None
        self._input_shape: Optional[Tuple[int, int, int]] = None
        self._used_initial_state = False

    # -- lifecycle ---------------------------------------------------------

    def build(self, input_dim: int) -> None:
        self.input_dim = int(input_dim)
        kernel_init = get_initializer(self.kernel_initializer)
        recurrent_init = get_initializer(self.recurrent_initializer)
        bias_init = get_initializer(self.bias_initializer)
        units = self.units
        self.params["kernel"] = kernel_init((self.input_dim, 4 * units), self._rng)
        self.params["recurrent_kernel"] = recurrent_init((units, 4 * units), self._rng)
        bias = bias_init((4 * units,), self._rng)
        if self.unit_forget_bias:
            bias[units: 2 * units] = 1.0
        self.params["bias"] = bias
        if self.double_bias:
            self.params["recurrent_bias"] = bias_init((4 * units,), self._rng)
        self.zero_grads()

    # -- forward -----------------------------------------------------------

    def forward(
        self,
        inputs: np.ndarray,
        training: bool = False,
        initial_state: Optional[State] = None,
    ) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=float)
        if inputs.ndim != 3:
            raise ShapeError(
                f"LSTM expects a 3-D input (batch, time, features), got shape {inputs.shape}"
            )
        batch, timesteps, features = inputs.shape
        if timesteps == 0:
            raise ShapeError("LSTM received an input with zero timesteps")
        self.ensure_built(features)
        if features != self.input_dim:
            raise ShapeError(
                f"LSTM {self.name!r} was built with input_dim={self.input_dim}, "
                f"got input with {features} features"
            )
        units = self.units
        if initial_state is not None:
            h, c = initial_state
            h = np.asarray(h, dtype=float)
            c = np.asarray(c, dtype=float)
            if h.shape != (batch, units) or c.shape != (batch, units):
                raise ShapeError(
                    f"initial_state must be two arrays of shape {(batch, units)}, "
                    f"got {h.shape} and {c.shape}"
                )
            self._used_initial_state = True
        else:
            h = np.zeros((batch, units))
            c = np.zeros((batch, units))
            self._used_initial_state = False

        kernel = self.params["kernel"]
        recurrent = self.params["recurrent_kernel"]
        bias = self.params["bias"]
        if self.double_bias:
            bias = bias + self.params["recurrent_bias"]

        self._input_shape = (batch, timesteps, features)

        # Whole-sequence caches: one allocation each, filled as the recurrence runs.
        h_states = np.empty((batch, timesteps + 1, units))
        c_states = np.empty((batch, timesteps + 1, units))
        h_states[:, 0, :] = h
        c_states[:, 0, :] = c
        i_all = np.empty((batch, timesteps, units))
        f_all = np.empty((batch, timesteps, units))
        g_all = np.empty((batch, timesteps, units))
        o_all = np.empty((batch, timesteps, units))
        tanh_c_all = np.empty((batch, timesteps, units))

        # Pre-compute the input contribution for all timesteps in one matmul.
        input_projection = inputs.reshape(batch * timesteps, features) @ kernel
        input_projection = input_projection.reshape(batch, timesteps, 4 * units)

        for t in range(timesteps):
            z = input_projection[:, t, :] + h @ recurrent + bias
            i = _sigmoid.forward(z[:, :units])
            f = _sigmoid.forward(z[:, units: 2 * units])
            g = np.tanh(z[:, 2 * units: 3 * units])
            o = _sigmoid.forward(z[:, 3 * units:])
            c = f * c + i * g
            tanh_c = np.tanh(c)
            h = o * tanh_c
            i_all[:, t, :] = i
            f_all[:, t, :] = f
            g_all[:, t, :] = g
            o_all[:, t, :] = o
            tanh_c_all[:, t, :] = tanh_c
            h_states[:, t + 1, :] = h
            c_states[:, t + 1, :] = c

        self._cache = _SequenceCache(
            inputs=inputs, h_states=h_states, c_states=c_states,
            i=i_all, f=f_all, g=g_all, o=o_all, tanh_c=tanh_c_all,
        )
        self.last_state = (h, c)
        if self.return_sequences:
            return h_states[:, 1:, :]
        return h

    # -- backward ----------------------------------------------------------

    def backward(
        self,
        grad_output: np.ndarray,
        grad_state: Optional[State] = None,
    ) -> np.ndarray:
        if self._input_shape is None or self._cache is None:
            raise ShapeError("backward called before forward on LSTM layer")
        batch, timesteps, features = self._input_shape
        units = self.units
        grad_output = np.asarray(grad_output, dtype=float)

        if self.return_sequences:
            if grad_output.shape != (batch, timesteps, units):
                raise ShapeError(
                    f"grad_output must have shape {(batch, timesteps, units)}, got {grad_output.shape}"
                )
            grad_h_seq = grad_output
        else:
            if grad_output.shape != (batch, units):
                raise ShapeError(
                    f"grad_output must have shape {(batch, units)}, got {grad_output.shape}"
                )
            grad_h_seq = np.zeros((batch, timesteps, units))
            grad_h_seq[:, -1, :] = grad_output

        kernel = self.params["kernel"]
        recurrent = self.params["recurrent_kernel"]
        cache = self._cache

        # Preallocated gate-gradient tensor for the whole sequence; the
        # recurrent sweep only fills slices of it (no per-timestep concatenate)
        # and the weight gradients fall out of single tensordots afterwards.
        dz_all = np.empty((batch, timesteps, 4 * units))

        dh_next = np.zeros((batch, units))
        dc_next = np.zeros((batch, units))
        if grad_state is not None:
            dh_extra, dc_extra = grad_state
            dh_next = dh_next + np.asarray(dh_extra, dtype=float)
            dc_next = dc_next + np.asarray(dc_extra, dtype=float)

        for t in range(timesteps - 1, -1, -1):
            i = cache.i[:, t, :]
            f = cache.f[:, t, :]
            g = cache.g[:, t, :]
            o = cache.o[:, t, :]
            tanh_c = cache.tanh_c[:, t, :]
            c_prev = cache.c_states[:, t, :]

            dh = grad_h_seq[:, t, :] + dh_next
            do = dh * tanh_c
            dc = dc_next + dh * o * (1.0 - tanh_c**2)
            di = dc * g
            df = dc * c_prev
            dg = dc * i

            dz = dz_all[:, t, :]
            dz[:, :units] = di * i * (1.0 - i)
            dz[:, units: 2 * units] = df * f * (1.0 - f)
            dz[:, 2 * units: 3 * units] = dg * (1.0 - g**2)
            dz[:, 3 * units:] = do * o * (1.0 - o)

            dh_next = dz @ recurrent.T
            dc_next = dc * f

        # Contract the whole sequence at once: sum over batch and time axes.
        flat_dz = dz_all.reshape(batch * timesteps, 4 * units)
        grad_kernel = cache.inputs.reshape(batch * timesteps, features).T @ flat_dz
        grad_recurrent = np.tensordot(
            cache.h_states[:, :-1, :], dz_all, axes=([0, 1], [0, 1])
        )
        grad_bias = flat_dz.sum(axis=0)
        grad_inputs = (flat_dz @ kernel.T).reshape(batch, timesteps, features)

        grad_kernel += self.kernel_regularizer.gradient(kernel)

        self.grads["kernel"] = self.grads.get("kernel", 0) + grad_kernel
        self.grads["recurrent_kernel"] = self.grads.get("recurrent_kernel", 0) + grad_recurrent
        self.grads["bias"] = self.grads.get("bias", 0) + grad_bias
        if self.double_bias:
            self.grads["recurrent_bias"] = self.grads.get("recurrent_bias", 0) + grad_bias

        self.grad_initial_state = (dh_next, dc_next)
        return grad_inputs

    # -- misc ----------------------------------------------------------------

    def regularization_penalty(self) -> float:
        if not self.built:
            return 0.0
        return self.kernel_regularizer.penalty(self.params["kernel"])

    def get_config(self) -> dict:
        config = super().get_config()
        config.update(
            {
                "units": self.units,
                "return_sequences": self.return_sequences,
                "kernel_initializer": self.kernel_initializer,
                "recurrent_initializer": self.recurrent_initializer,
                "bias_initializer": self.bias_initializer,
                "kernel_regularizer": self.kernel_regularizer.get_config(),
                "unit_forget_bias": self.unit_forget_bias,
                "double_bias": self.double_bias,
            }
        )
        return config
