"""Bidirectional LSTM wrapper.

The paper's cloud-tier multivariate model (``BiLSTM-seq2seq-Cloud``) uses a
bidirectional LSTM encoder.  This wrapper runs one LSTM forward in time and
an independent LSTM over the time-reversed sequence and concatenates the
results (Keras' ``merge_mode="concat"``), both for per-timestep outputs and
for the final states handed to the decoder.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.layers.base import Layer
from repro.nn.layers.lstm import LSTM, State


class Bidirectional(Layer):
    """Concatenate a forward-time LSTM and a reverse-time LSTM."""

    def __init__(self, forward_layer: LSTM, backward_layer: Optional[LSTM] = None,
                 name: Optional[str] = None) -> None:
        super().__init__(name=name or f"bidirectional_{forward_layer.name}")
        self.forward_layer = forward_layer
        if backward_layer is None:
            config = forward_layer.get_config()
            backward_layer = LSTM(
                units=config["units"],
                return_sequences=config["return_sequences"],
                kernel_initializer=config["kernel_initializer"],
                recurrent_initializer=config["recurrent_initializer"],
                bias_initializer=config["bias_initializer"],
                kernel_regularizer=forward_layer.kernel_regularizer,
                unit_forget_bias=config["unit_forget_bias"],
                double_bias=config["double_bias"],
                name=f"{forward_layer.name}_backward",
            )
        self.backward_layer = backward_layer
        if self.forward_layer.units != self.backward_layer.units:
            raise ShapeError(
                "forward and backward LSTMs must have the same number of units, got "
                f"{self.forward_layer.units} and {self.backward_layer.units}"
            )
        if self.forward_layer.return_sequences != self.backward_layer.return_sequences:
            raise ShapeError("forward and backward LSTMs must agree on return_sequences")
        self.units = 2 * self.forward_layer.units
        self.return_sequences = self.forward_layer.return_sequences
        self.last_state: Optional[State] = None

    # -- lifecycle ---------------------------------------------------------

    def build(self, input_dim: int) -> None:
        self.forward_layer.ensure_built(input_dim, rng=self._rng)
        self.backward_layer.ensure_built(input_dim, rng=self._rng)

    def set_rng(self, seed) -> None:  # noqa: D102 - documented on base class
        super().set_rng(seed)
        self.forward_layer.set_rng(self._rng)
        self.backward_layer.set_rng(self._rng)

    # -- computation -------------------------------------------------------

    def forward(self, inputs: np.ndarray, training: bool = False,
                initial_state: Optional[State] = None) -> np.ndarray:
        if initial_state is not None:
            raise ShapeError("Bidirectional does not support an external initial_state")
        inputs = np.asarray(inputs, dtype=float)
        if inputs.ndim != 3:
            raise ShapeError(
                f"Bidirectional expects a 3-D input (batch, time, features), got {inputs.shape}"
            )
        self.ensure_built(inputs.shape[2])
        forward_out = self.forward_layer.forward(inputs, training=training)
        backward_out = self.backward_layer.forward(inputs[:, ::-1, :], training=training)

        fh, fc = self.forward_layer.last_state
        bh, bc = self.backward_layer.last_state
        self.last_state = (np.concatenate([fh, bh], axis=1), np.concatenate([fc, bc], axis=1))

        if self.return_sequences:
            # Align the reverse-time output back to the original time order.
            backward_aligned = backward_out[:, ::-1, :]
            return np.concatenate([forward_out, backward_aligned], axis=2)
        return np.concatenate([forward_out, backward_out], axis=1)

    def backward(self, grad_output: np.ndarray,
                 grad_state: Optional[State] = None) -> np.ndarray:
        grad_output = np.asarray(grad_output, dtype=float)
        units = self.forward_layer.units

        forward_state_grad = None
        backward_state_grad = None
        if grad_state is not None:
            dh, dc = grad_state
            dh = np.asarray(dh, dtype=float)
            dc = np.asarray(dc, dtype=float)
            forward_state_grad = (dh[:, :units], dc[:, :units])
            backward_state_grad = (dh[:, units:], dc[:, units:])

        if self.return_sequences:
            grad_forward = grad_output[:, :, :units]
            grad_backward = grad_output[:, ::-1, units:]
        else:
            grad_forward = grad_output[:, :units]
            grad_backward = grad_output[:, units:]

        grad_inputs_forward = self.forward_layer.backward(grad_forward, grad_state=forward_state_grad)
        grad_inputs_backward = self.backward_layer.backward(grad_backward, grad_state=backward_state_grad)
        return grad_inputs_forward + grad_inputs_backward[:, ::-1, :]

    # -- parameters ----------------------------------------------------------

    def zero_grads(self) -> None:
        self.forward_layer.zero_grads()
        self.backward_layer.zero_grads()

    def parameters_and_gradients(self):
        return (
            self.forward_layer.parameters_and_gradients()
            + self.backward_layer.parameters_and_gradients()
        )

    def parameter_count(self) -> int:
        return self.forward_layer.parameter_count() + self.backward_layer.parameter_count()

    def get_weights(self):
        return {
            "forward": self.forward_layer.get_weights(),
            "backward": self.backward_layer.get_weights(),
        }

    def set_weights(self, weights) -> None:
        self.forward_layer.set_weights(weights["forward"])
        self.backward_layer.set_weights(weights["backward"])

    def regularization_penalty(self) -> float:
        return (
            self.forward_layer.regularization_penalty()
            + self.backward_layer.regularization_penalty()
        )

    def get_config(self) -> dict:
        config = super().get_config()
        config["forward_layer"] = self.forward_layer.get_config()
        config["backward_layer"] = self.backward_layer.get_config()
        return config
