"""Neural-network layers: Dense, Dropout, TimeDistributed, LSTM, Bidirectional."""

from repro.nn.layers.base import Layer
from repro.nn.layers.dense import Dense
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.time_distributed import TimeDistributed
from repro.nn.layers.lstm import LSTM
from repro.nn.layers.bidirectional import Bidirectional

__all__ = ["Layer", "Dense", "Dropout", "TimeDistributed", "LSTM", "Bidirectional"]
