"""Fully connected (dense) layer with optional activation and kernel regulariser."""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.activations import Activation, get_activation
from repro.nn.initializers import get_initializer
from repro.nn.layers.base import Layer
from repro.nn.regularizers import Regularizer, get_regularizer
from repro.utils.validation import check_positive


class Dense(Layer):
    """``y = activation(x @ W + b)``.

    Accepts 2-D inputs ``(batch, features)``.  For time-distributed
    application over 3-D sequences wrap it in
    :class:`repro.nn.layers.time_distributed.TimeDistributed`.
    """

    def __init__(
        self,
        units: int,
        activation: Union[str, Activation, None] = "linear",
        kernel_initializer: str = "glorot_uniform",
        bias_initializer: str = "zeros",
        kernel_regularizer: Union[Regularizer, str, float, None] = None,
        use_bias: bool = True,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name)
        self.units = int(check_positive(units, "units"))
        self.activation = get_activation(activation)
        self.kernel_initializer = kernel_initializer
        self.bias_initializer = bias_initializer
        self.kernel_regularizer = get_regularizer(kernel_regularizer)
        self.use_bias = bool(use_bias)
        self.input_dim: Optional[int] = None
        self._cache_input: Optional[np.ndarray] = None
        self._cache_output: Optional[np.ndarray] = None

    def build(self, input_dim: int) -> None:
        self.input_dim = int(input_dim)
        kernel_init = get_initializer(self.kernel_initializer)
        bias_init = get_initializer(self.bias_initializer)
        self.params["kernel"] = kernel_init((self.input_dim, self.units), self._rng)
        if self.use_bias:
            self.params["bias"] = bias_init((self.units,), self._rng)
        self.zero_grads()

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=float)
        if inputs.ndim != 2:
            raise ShapeError(
                f"Dense expects a 2-D input (batch, features), got shape {inputs.shape}"
            )
        self.ensure_built(inputs.shape[1])
        if inputs.shape[1] != self.input_dim:
            raise ShapeError(
                f"Dense {self.name!r} was built with input_dim={self.input_dim}, "
                f"got input with {inputs.shape[1]} features"
            )
        pre_activation = inputs @ self.params["kernel"]
        if self.use_bias:
            pre_activation = pre_activation + self.params["bias"]
        output = self.activation.forward(pre_activation)
        if training:
            self._cache_input = inputs
            self._cache_output = output
        else:
            self._cache_input = inputs
            self._cache_output = output
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_input is None or self._cache_output is None:
            raise ShapeError("backward called before forward on Dense layer")
        grad_output = np.asarray(grad_output, dtype=float)
        grad_pre = self.activation.backward(self._cache_output, grad_output)
        grad_kernel = self._cache_input.T @ grad_pre
        grad_kernel += self.kernel_regularizer.gradient(self.params["kernel"])
        self.grads["kernel"] = self.grads.get("kernel", 0) + grad_kernel
        if self.use_bias:
            self.grads["bias"] = self.grads.get("bias", 0) + np.sum(grad_pre, axis=0)
        return grad_pre @ self.params["kernel"].T

    def regularization_penalty(self) -> float:
        if not self.built:
            return 0.0
        return self.kernel_regularizer.penalty(self.params["kernel"])

    def get_config(self) -> dict:
        config = super().get_config()
        config.update(
            {
                "units": self.units,
                "activation": self.activation.name,
                "kernel_initializer": self.kernel_initializer,
                "bias_initializer": self.bias_initializer,
                "kernel_regularizer": self.kernel_regularizer.get_config(),
                "use_bias": self.use_bias,
            }
        )
        return config
