"""Layer base class.

A layer owns its parameters (as named float arrays), caches whatever it needs
from the forward pass, and implements ``backward`` to propagate gradients and
accumulate parameter gradients.  Layers are deliberately stateful in the same
way Keras layers are: ``build`` is called lazily on the first forward pass
once the input dimensionality is known.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import NotFittedError
from repro.utils.rng import RngLike, ensure_rng


class Layer:
    """Base class for all layers.

    Subclasses must implement :meth:`build`, :meth:`forward` and
    :meth:`backward`, and may override :meth:`regularization_penalty` when
    they carry kernel regularisers.
    """

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name or type(self).__name__.lower()
        self.built = False
        self.trainable = True
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}
        self._rng = ensure_rng(None)

    # -- lifecycle ---------------------------------------------------------

    def build(self, input_dim: int) -> None:
        """Create parameters given the size of the last input axis."""
        raise NotImplementedError

    def ensure_built(self, input_dim: int, rng: Optional[np.random.Generator] = None) -> None:
        """Build the layer on first use; subsequent calls are no-ops."""
        if not self.built:
            if rng is not None:
                self._rng = rng
            self.build(int(input_dim))
            self.built = True

    def set_rng(self, seed: RngLike) -> None:
        """Set the RNG used for parameter initialisation and stochastic ops."""
        self._rng = ensure_rng(seed)

    # -- computation -------------------------------------------------------

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the layer on ``inputs`` and cache intermediates for backward."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_output`` and return the gradient w.r.t. the input.

        Parameter gradients are *accumulated* into ``self.grads``; call
        :meth:`zero_grads` before starting a new batch.
        """
        raise NotImplementedError

    # -- parameters --------------------------------------------------------

    def zero_grads(self) -> None:
        """Reset all accumulated parameter gradients to zero."""
        for key, value in self.params.items():
            self.grads[key] = np.zeros_like(value)

    def parameters_and_gradients(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Pairs of (parameter, accumulated gradient) for the optimiser."""
        if not self.built:
            raise NotFittedError(f"layer {self.name!r} has not been built yet")
        pairs = []
        for key in sorted(self.params):
            grad = self.grads.get(key)
            if grad is None:
                grad = np.zeros_like(self.params[key])
                self.grads[key] = grad
            pairs.append((self.params[key], grad))
        return pairs

    def parameter_count(self) -> int:
        """Total number of scalar parameters in the layer."""
        return int(sum(p.size for p in self.params.values()))

    def get_weights(self) -> Dict[str, np.ndarray]:
        """Copies of all parameter arrays keyed by name."""
        return {key: value.copy() for key, value in self.params.items()}

    def set_weights(self, weights: Dict[str, np.ndarray]) -> None:
        """Load parameter values (shapes must match the built layer)."""
        if not self.built:
            raise NotFittedError(f"layer {self.name!r} must be built before loading weights")
        for key, value in weights.items():
            if key not in self.params:
                raise KeyError(f"layer {self.name!r} has no parameter {key!r}")
            value = np.asarray(value, dtype=float)
            if value.shape != self.params[key].shape:
                raise ValueError(
                    f"parameter {key!r} expects shape {self.params[key].shape}, got {value.shape}"
                )
            self.params[key][...] = value

    # -- misc ---------------------------------------------------------------

    def regularization_penalty(self) -> float:
        """Scalar regularisation penalty contributed by this layer (default 0)."""
        return 0.0

    def get_config(self) -> dict:
        """JSON-serialisable configuration (architecture only, no weights)."""
        return {"type": type(self).__name__, "name": self.name}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, built={self.built})"
