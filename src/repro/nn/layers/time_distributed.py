"""TimeDistributed wrapper: apply a 2-D layer independently at every timestep.

Used by the seq2seq models to project the decoder's hidden sequence back to
the input feature dimension with a single shared ``Dense`` layer, exactly as
the paper's Keras implementation does.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.layers.base import Layer


class TimeDistributed(Layer):
    """Apply ``inner`` (a layer over 2-D inputs) to every timestep of a 3-D tensor."""

    def __init__(self, inner: Layer, name: Optional[str] = None) -> None:
        super().__init__(name=name or f"time_distributed_{inner.name}")
        self.inner = inner
        self._input_shape: Optional[tuple[int, int, int]] = None

    def build(self, input_dim: int) -> None:
        self.inner.ensure_built(input_dim, rng=self._rng)
        # Mirror the inner layer's parameters so the model can collect them uniformly.
        self.params = self.inner.params
        self.grads = self.inner.grads

    def set_rng(self, seed) -> None:  # noqa: D102 - documented on base class
        super().set_rng(seed)
        self.inner.set_rng(seed)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=float)
        if inputs.ndim != 3:
            raise ShapeError(
                f"TimeDistributed expects a 3-D input (batch, time, features), got {inputs.shape}"
            )
        batch, timesteps, features = inputs.shape
        self.ensure_built(features)
        self._input_shape = (batch, timesteps, features)
        flat = inputs.reshape(batch * timesteps, features)
        flat_output = self.inner.forward(flat, training=training)
        return flat_output.reshape(batch, timesteps, -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise ShapeError("backward called before forward on TimeDistributed layer")
        batch, timesteps, features = self._input_shape
        grad_output = np.asarray(grad_output, dtype=float)
        flat_grad = grad_output.reshape(batch * timesteps, -1)
        flat_input_grad = self.inner.backward(flat_grad)
        return flat_input_grad.reshape(batch, timesteps, features)

    def zero_grads(self) -> None:
        self.inner.zero_grads()
        self.grads = self.inner.grads

    def parameters_and_gradients(self):
        return self.inner.parameters_and_gradients()

    def parameter_count(self) -> int:
        return self.inner.parameter_count()

    def get_weights(self):
        return self.inner.get_weights()

    def set_weights(self, weights) -> None:
        self.inner.set_weights(weights)

    def regularization_penalty(self) -> float:
        return self.inner.regularization_penalty()

    def get_config(self) -> dict:
        config = super().get_config()
        config["inner"] = self.inner.get_config()
        return config
