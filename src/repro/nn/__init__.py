"""A small, self-contained NumPy neural-network library.

The paper implements its anomaly-detection models and policy network with
TensorFlow/Keras; this subpackage provides the subset of functionality those
models need, implemented from scratch on NumPy:

* parameter initialisers (:mod:`repro.nn.initializers`),
* activations with derivatives (:mod:`repro.nn.activations`),
* layers: ``Dense``, ``Dropout``, ``LSTM``, ``Bidirectional``,
  ``TimeDistributed`` (:mod:`repro.nn.layers`),
* losses and kernel regularisers,
* optimisers: ``SGD``, ``RMSProp``, ``Adam``,
* a ``Sequential`` feed-forward model and a ``Seq2SeqAutoencoder``
  encoder–decoder model,
* a training loop with mini-batching, shuffling, validation and early
  stopping,
* FP16 weight quantisation mirroring the paper's model-compression step, and
* finite-difference gradient checking used by the test suite.
"""

from repro.nn import activations, initializers
from repro.nn.losses import MeanSquaredError, MeanAbsoluteError, get_loss
from repro.nn.regularizers import L1Regularizer, L2Regularizer, ZeroRegularizer, get_regularizer
from repro.nn.optimizers import SGD, RMSProp, Adam, get_optimizer
from repro.nn.layers import Dense, Dropout, LSTM, Bidirectional, TimeDistributed
from repro.nn.models.sequential import Sequential
from repro.nn.models.seq2seq import Seq2SeqAutoencoder
from repro.nn.training import TrainingHistory, EarlyStopping
from repro.nn.quantization import quantize_model, quantization_report

__all__ = [
    "activations",
    "initializers",
    "MeanSquaredError",
    "MeanAbsoluteError",
    "get_loss",
    "L1Regularizer",
    "L2Regularizer",
    "ZeroRegularizer",
    "get_regularizer",
    "SGD",
    "RMSProp",
    "Adam",
    "get_optimizer",
    "Dense",
    "Dropout",
    "LSTM",
    "Bidirectional",
    "TimeDistributed",
    "Sequential",
    "Seq2SeqAutoencoder",
    "TrainingHistory",
    "EarlyStopping",
    "quantize_model",
    "quantization_report",
]
