"""Training-time metrics for the NN substrate.

These are low-level regression/classification metrics used by the training
loop and the tests.  Detection-quality metrics (accuracy/F1 on anomaly labels)
live in :mod:`repro.evaluation.metrics`.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError


def _check_pair(prediction: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    prediction = np.asarray(prediction, dtype=float)
    target = np.asarray(target, dtype=float)
    if prediction.shape != target.shape:
        raise ShapeError(
            f"prediction shape {prediction.shape} does not match target shape {target.shape}"
        )
    return prediction, target


def mean_squared_error(prediction: np.ndarray, target: np.ndarray) -> float:
    """Mean squared error over all elements."""
    prediction, target = _check_pair(prediction, target)
    return float(np.mean(np.square(prediction - target)))


def root_mean_squared_error(prediction: np.ndarray, target: np.ndarray) -> float:
    """Root mean squared error over all elements."""
    return float(np.sqrt(mean_squared_error(prediction, target)))


def mean_absolute_error(prediction: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute error over all elements."""
    prediction, target = _check_pair(prediction, target)
    return float(np.mean(np.abs(prediction - target)))


def r2_score(prediction: np.ndarray, target: np.ndarray) -> float:
    """Coefficient of determination (1 - SS_res / SS_tot), flattened."""
    prediction, target = _check_pair(prediction, target)
    target_flat = target.ravel()
    prediction_flat = prediction.ravel()
    ss_res = float(np.sum(np.square(target_flat - prediction_flat)))
    ss_tot = float(np.sum(np.square(target_flat - np.mean(target_flat))))
    if ss_tot == 0.0:
        return 0.0 if ss_res > 0 else 1.0
    return 1.0 - ss_res / ss_tot


def categorical_accuracy(probabilities: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of rows where the arg-max of ``probabilities`` equals ``labels``.

    ``labels`` may be integer class indices or one-hot rows.
    """
    probabilities = np.asarray(probabilities, dtype=float)
    labels = np.asarray(labels)
    if probabilities.ndim != 2:
        raise ShapeError(f"probabilities must be 2-D, got shape {probabilities.shape}")
    predicted = np.argmax(probabilities, axis=1)
    if labels.ndim == 2:
        labels = np.argmax(labels, axis=1)
    if labels.shape[0] != probabilities.shape[0]:
        raise ShapeError(
            f"labels length {labels.shape[0]} does not match batch size {probabilities.shape[0]}"
        )
    return float(np.mean(predicted == labels))
