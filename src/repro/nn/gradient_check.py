"""Finite-difference gradient checking.

Used by the test suite to validate the hand-derived backward passes of every
layer (Dense, LSTM, Bidirectional, seq2seq).  The check perturbs each
parameter (or a random subset for large tensors), recomputes the loss, and
compares the numerical derivative against the analytic gradient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.utils.rng import RngLike, ensure_rng


@dataclass
class GradientCheckResult:
    """Outcome of a gradient check over one or more parameter tensors."""

    max_relative_error: float
    checked_entries: int

    def passed(self, tolerance: float = 1e-4) -> bool:
        """Whether the worst relative error is within ``tolerance``."""
        return self.max_relative_error <= tolerance


def _relative_error(analytic: float, numeric: float) -> float:
    scale = max(abs(analytic), abs(numeric), 1e-8)
    return abs(analytic - numeric) / scale


def check_gradients(
    loss_fn: Callable[[], float],
    params_and_grads: List[Tuple[np.ndarray, np.ndarray]],
    epsilon: float = 1e-5,
    max_entries_per_param: int = 20,
    rng: RngLike = 0,
) -> GradientCheckResult:
    """Compare analytic gradients against central finite differences.

    Parameters
    ----------
    loss_fn:
        Zero-argument callable that recomputes the scalar loss with the
        *current* parameter values (it must not mutate them).
    params_and_grads:
        The (parameter, analytic-gradient) pairs to verify.  The gradients
        must correspond to the loss returned by ``loss_fn`` at the current
        parameter values.
    epsilon:
        Finite-difference step size.
    max_entries_per_param:
        For large tensors only this many randomly chosen entries are checked.
    rng:
        Seed for the entry subsampling.
    """
    generator = ensure_rng(rng)
    worst = 0.0
    checked = 0
    for param, grad in params_and_grads:
        flat_grad = np.asarray(grad, dtype=float).reshape(-1)
        if param.size == 0:
            continue
        if param.size > max_entries_per_param:
            indices = generator.choice(param.size, size=max_entries_per_param, replace=False)
        else:
            indices = np.arange(param.size)
        for index in indices:
            # Index through unravel_index so perturbations always hit the real
            # parameter array, even when it is not C-contiguous.
            multi_index = np.unravel_index(int(index), param.shape)
            original = float(param[multi_index])
            param[multi_index] = original + epsilon
            loss_plus = loss_fn()
            param[multi_index] = original - epsilon
            loss_minus = loss_fn()
            param[multi_index] = original
            numeric = (loss_plus - loss_minus) / (2.0 * epsilon)
            worst = max(worst, _relative_error(float(flat_grad[index]), numeric))
            checked += 1
    return GradientCheckResult(max_relative_error=worst, checked_entries=checked)


def numerical_gradient(
    loss_fn: Callable[[np.ndarray], float],
    point: np.ndarray,
    epsilon: float = 1e-5,
    indices: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Central-difference gradient of ``loss_fn`` with respect to ``point``.

    Only the entries in ``indices`` are filled when given; other entries are
    left as zero.  ``point`` is restored to its original values on return.
    """
    point = np.asarray(point, dtype=float)
    grad = np.zeros_like(point)
    flat_point = point.reshape(-1)
    flat_grad = grad.reshape(-1)
    if indices is None:
        indices = np.arange(flat_point.size)
    for index in indices:
        original = flat_point[index]
        flat_point[index] = original + epsilon
        plus = loss_fn(point)
        flat_point[index] = original - epsilon
        minus = loss_fn(point)
        flat_point[index] = original
        flat_grad[index] = (plus - minus) / (2.0 * epsilon)
    return grad
