"""Weight initialisers.

Each initialiser is a callable ``(shape, rng) -> ndarray``.  The registry in
:func:`get_initializer` resolves string names so layer constructors can accept
either a name or a callable, mirroring the Keras API the paper's code used.
"""

from __future__ import annotations

from typing import Callable, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import RngLike, ensure_rng

Initializer = Callable[[Sequence[int], np.random.Generator], np.ndarray]


def zeros(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """All-zero initialiser (used for biases)."""
    del rng
    return np.zeros(shape, dtype=float)


def ones(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """All-one initialiser (used e.g. for LSTM forget-gate bias boosting)."""
    del rng
    return np.ones(shape, dtype=float)


def _fan_in_out(shape: Sequence[int]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for a weight tensor shape."""
    if len(shape) == 0:
        return 1, 1
    if len(shape) == 1:
        return int(shape[0]), int(shape[0])
    fan_in = int(np.prod(shape[:-1]))
    fan_out = int(shape[-1])
    return fan_in, fan_out


def glorot_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialiser: U(-limit, limit), limit=sqrt(6/(fan_in+fan_out))."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def glorot_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal initialiser: N(0, 2/(fan_in+fan_out))."""
    fan_in, fan_out = _fan_in_out(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def he_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He uniform initialiser, appropriate for ReLU layers."""
    fan_in, _ = _fan_in_out(shape)
    limit = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He normal initialiser, appropriate for ReLU layers."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)


def orthogonal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Orthogonal initialiser (used for LSTM recurrent kernels)."""
    if len(shape) < 2:
        return glorot_uniform(shape, rng)
    rows = int(shape[0])
    cols = int(np.prod(shape[1:]))
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    # Make the decomposition unique (and hence deterministic given the rng draw).
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return np.ascontiguousarray(q[:rows, :cols]).reshape(shape)


_REGISTRY: dict[str, Initializer] = {
    "zeros": zeros,
    "ones": ones,
    "glorot_uniform": glorot_uniform,
    "glorot_normal": glorot_normal,
    "he_uniform": he_uniform,
    "he_normal": he_normal,
    "orthogonal": orthogonal,
}


def get_initializer(name_or_fn: Union[str, Initializer]) -> Initializer:
    """Resolve an initialiser by name, or pass through a callable unchanged."""
    if callable(name_or_fn):
        return name_or_fn
    try:
        return _REGISTRY[str(name_or_fn)]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown initializer {name_or_fn!r}; available: {sorted(_REGISTRY)}"
        ) from exc


def initialize(name_or_fn: Union[str, Initializer], shape: Sequence[int], seed: RngLike = None) -> np.ndarray:
    """Convenience: resolve ``name_or_fn`` and draw an array of ``shape``."""
    return get_initializer(name_or_fn)(tuple(int(s) for s in shape), ensure_rng(seed))


def available_initializers() -> list[str]:
    """Names of all registered initialisers."""
    return sorted(_REGISTRY)
