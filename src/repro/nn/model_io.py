"""Saving and loading model weights to disk.

Weights are stored as a flat ``.npz`` archive whose keys encode the nested
weight-dictionary path (``"encoder/kernel"`` etc.), next to a JSON file with
the model's architecture configuration.  Loading restores weights into an
already-constructed model of the same architecture — this mirrors how the
paper's deployment step ships trained, frozen weights to each HEC layer.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.exceptions import SerializationError
from repro.utils.serialization import load_arrays, load_json, save_arrays, save_json

PathLike = Union[str, Path]
_SEPARATOR = "/"


def _flatten_weights(tree: dict, prefix: str = "") -> Dict[str, np.ndarray]:
    flat: Dict[str, np.ndarray] = {}
    for key, value in tree.items():
        path = f"{prefix}{_SEPARATOR}{key}" if prefix else str(key)
        if isinstance(value, dict):
            flat.update(_flatten_weights(value, path))
        else:
            # Preserve the stored dtype: coercing through ``dtype=float`` would
            # silently upcast FP16-quantised checkpoints to float64 on save,
            # breaking the model registry's dtype round-trip guarantee.
            flat[path] = np.asarray(value)
    return flat


def _unflatten_weights(flat: Dict[str, np.ndarray]) -> dict:
    tree: dict = {}
    for path, value in flat.items():
        parts = path.split(_SEPARATOR)
        node = tree
        for part in parts[:-1]:
            node = node.setdefault(part, {})
        node[parts[-1]] = value
    return tree


def save_model(model, directory: PathLike, name: str = "model") -> Path:
    """Save ``model`` (anything with ``get_weights``/``get_config``) under ``directory``.

    Returns the directory path.  Two files are written: ``<name>.json`` with
    the architecture configuration and ``<name>.weights.npz`` with the weights.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    config = model.get_config() if hasattr(model, "get_config") else {}
    save_json(directory / f"{name}.json", config)
    save_arrays(directory / f"{name}.weights.npz", _flatten_weights(model.get_weights()))
    return directory


def load_weights_into(model, directory: PathLike, name: str = "model") -> None:
    """Load weights saved by :func:`save_model` into an already-built ``model``."""
    directory = Path(directory)
    weights_path = directory / f"{name}.weights.npz"
    if not weights_path.exists():
        raise SerializationError(f"no saved weights found at {weights_path}")
    flat = load_arrays(weights_path)
    model.set_weights(_unflatten_weights(flat))


def load_config(directory: PathLike, name: str = "model") -> dict:
    """Load the architecture configuration saved by :func:`save_model`."""
    return load_json(Path(directory) / f"{name}.json")
