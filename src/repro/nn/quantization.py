"""Model compression by FP16 weight quantisation.

Before deploying the LSTM-seq2seq models on the Raspberry Pi and Jetson TX2,
the paper (i) freezes the graph and (ii) quantises the parameters from FP32 to
FP16, observing no loss of detection performance.  In this NumPy reproduction
the analogue is rounding every weight through ``float16`` and reporting the
memory saving; the "frozen" aspect corresponds to marking the model as
non-trainable inside the HEC deployment record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Protocol

import numpy as np


class _HasWeights(Protocol):
    """Anything exposing Keras-style ``get_weights``/``set_weights`` dictionaries."""

    def get_weights(self) -> dict: ...

    def set_weights(self, weights: dict) -> None: ...


@dataclass(frozen=True)
class QuantizationReport:
    """Summary of a quantisation pass."""

    parameter_count: int
    original_bytes: int
    quantized_bytes: int
    max_absolute_error: float

    @property
    def compression_ratio(self) -> float:
        """Original size divided by quantised size (2.0 for FP32→FP16)."""
        if self.quantized_bytes == 0:
            return 1.0
        return self.original_bytes / self.quantized_bytes


def _quantize_tree(weights, dtype) -> tuple:
    """Recursively quantise a (possibly nested) dict of arrays.

    Returns ``(quantized_tree, parameter_count, original_bytes, quantized_bytes,
    max_abs_error)``.
    """
    if isinstance(weights, dict):
        quantized: Dict = {}
        count = orig = quant = 0
        max_err = 0.0
        for key, value in weights.items():
            sub, sub_count, sub_orig, sub_quant, sub_err = _quantize_tree(value, dtype)
            quantized[key] = sub
            count += sub_count
            orig += sub_orig
            quant += sub_quant
            max_err = max(max_err, sub_err)
        return quantized, count, orig, quant, max_err
    array = np.asarray(weights, dtype=float)
    quantized_array = array.astype(dtype).astype(float)
    error = float(np.max(np.abs(quantized_array - array))) if array.size else 0.0
    return (
        quantized_array,
        int(array.size),
        int(array.size * 4),
        int(array.size * np.dtype(dtype).itemsize),
        error,
    )


def quantize_model(model: _HasWeights, dtype: str = "float16") -> QuantizationReport:
    """Quantise ``model``'s weights in place through ``dtype`` and report the effect.

    The weights are stored back as float64 arrays whose *values* have been
    rounded to the target precision, so all downstream NumPy code keeps
    working while the numerical effect of FP16 storage is faithfully applied.
    """
    np_dtype = np.dtype(dtype)
    weights = model.get_weights()
    quantized, count, orig, quant, max_err = _quantize_tree(weights, np_dtype)
    model.set_weights(quantized)
    return QuantizationReport(
        parameter_count=count,
        original_bytes=orig,
        quantized_bytes=quant,
        max_absolute_error=max_err,
    )


def quantization_report(model: _HasWeights, dtype: str = "float16") -> QuantizationReport:
    """Like :func:`quantize_model` but without modifying the model."""
    np_dtype = np.dtype(dtype)
    weights = model.get_weights()
    _, count, orig, quant, max_err = _quantize_tree(weights, np_dtype)
    return QuantizationReport(
        parameter_count=count,
        original_bytes=orig,
        quantized_bytes=quant,
        max_absolute_error=max_err,
    )
