"""Gradient-descent optimisers: SGD (with momentum), RMSProp and Adam.

The paper trains its seq2seq models with RMSProp and the policy network with
plain policy-gradient ascent; all three optimisers here share the same
interface so models can swap them freely.

Each optimiser keeps per-parameter state keyed by the ``id`` of the parameter
array.  Parameters are updated *in place* so layers keep referencing the same
arrays across steps.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_non_negative, check_positive

ParamGrad = Tuple[np.ndarray, np.ndarray]


class Optimizer:
    """Base optimiser interface.

    Subclasses implement :meth:`_update_one`, which computes the update for a
    single parameter given its gradient and its optimiser state dictionary.
    """

    def __init__(self, learning_rate: float = 0.001, clip_norm: float | None = None) -> None:
        self.learning_rate = check_positive(learning_rate, "learning_rate")
        if clip_norm is not None:
            clip_norm = check_positive(clip_norm, "clip_norm")
        self.clip_norm = clip_norm
        self._state: Dict[int, Dict[str, np.ndarray]] = {}
        self.iterations = 0

    # -- public API --------------------------------------------------------

    def step(self, params_and_grads: Iterable[ParamGrad]) -> None:
        """Apply one update step to every (parameter, gradient) pair."""
        pairs: List[ParamGrad] = list(params_and_grads)
        if self.clip_norm is not None:
            pairs = self._clip_global_norm(pairs, self.clip_norm)
        self.iterations += 1
        for param, grad in pairs:
            if param.shape != grad.shape:
                raise ConfigurationError(
                    f"parameter shape {param.shape} does not match gradient shape {grad.shape}"
                )
            state = self._state.setdefault(id(param), {})
            update = self._update_one(param, grad, state)
            param -= update

    def reset(self) -> None:
        """Forget all optimiser state (momenta, moving averages, step count)."""
        self._state.clear()
        self.iterations = 0

    def get_config(self) -> dict:
        """JSON-serialisable optimiser configuration."""
        return {
            "type": type(self).__name__,
            "learning_rate": self.learning_rate,
            "clip_norm": self.clip_norm,
        }

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _clip_global_norm(pairs: List[ParamGrad], max_norm: float) -> List[ParamGrad]:
        total = float(np.sqrt(sum(float(np.sum(np.square(g))) for _, g in pairs)))
        if total <= max_norm or total == 0.0:
            return pairs
        scale = max_norm / total
        return [(p, g * scale) for p, g in pairs]

    def _update_one(
        self, param: np.ndarray, grad: np.ndarray, state: Dict[str, np.ndarray]
    ) -> np.ndarray:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        learning_rate: float = 0.01,
        momentum: float = 0.0,
        clip_norm: float | None = None,
    ) -> None:
        super().__init__(learning_rate, clip_norm)
        self.momentum = check_non_negative(momentum, "momentum")
        if self.momentum >= 1.0:
            raise ConfigurationError(f"momentum must be < 1, got {momentum}")

    def _update_one(self, param, grad, state):
        if self.momentum == 0.0:
            return self.learning_rate * grad
        velocity = state.setdefault("velocity", np.zeros_like(param))
        velocity *= self.momentum
        velocity += self.learning_rate * grad
        return velocity.copy()

    def get_config(self) -> dict:
        config = super().get_config()
        config["momentum"] = self.momentum
        return config


class RMSProp(Optimizer):
    """RMSProp: scale the step by a moving RMS of recent gradients."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        rho: float = 0.9,
        epsilon: float = 1e-7,
        clip_norm: float | None = None,
    ) -> None:
        super().__init__(learning_rate, clip_norm)
        if not 0.0 < rho < 1.0:
            raise ConfigurationError(f"rho must lie in (0, 1), got {rho}")
        self.rho = float(rho)
        self.epsilon = check_positive(epsilon, "epsilon")

    def _update_one(self, param, grad, state):
        mean_square = state.setdefault("mean_square", np.zeros_like(param))
        mean_square *= self.rho
        mean_square += (1.0 - self.rho) * np.square(grad)
        return self.learning_rate * grad / (np.sqrt(mean_square) + self.epsilon)

    def get_config(self) -> dict:
        config = super().get_config()
        config.update({"rho": self.rho, "epsilon": self.epsilon})
        return config


class Adam(Optimizer):
    """Adam optimiser with bias-corrected first and second moments."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta_1: float = 0.9,
        beta_2: float = 0.999,
        epsilon: float = 1e-8,
        clip_norm: float | None = None,
    ) -> None:
        super().__init__(learning_rate, clip_norm)
        if not 0.0 <= beta_1 < 1.0:
            raise ConfigurationError(f"beta_1 must lie in [0, 1), got {beta_1}")
        if not 0.0 <= beta_2 < 1.0:
            raise ConfigurationError(f"beta_2 must lie in [0, 1), got {beta_2}")
        self.beta_1 = float(beta_1)
        self.beta_2 = float(beta_2)
        self.epsilon = check_positive(epsilon, "epsilon")

    def _update_one(self, param, grad, state):
        m = state.setdefault("m", np.zeros_like(param))
        v = state.setdefault("v", np.zeros_like(param))
        t = state.setdefault("t", np.zeros(1))
        t += 1
        m *= self.beta_1
        m += (1.0 - self.beta_1) * grad
        v *= self.beta_2
        v += (1.0 - self.beta_2) * np.square(grad)
        m_hat = m / (1.0 - self.beta_1 ** float(t[0]))
        v_hat = v / (1.0 - self.beta_2 ** float(t[0]))
        return self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def get_config(self) -> dict:
        config = super().get_config()
        config.update(
            {"beta_1": self.beta_1, "beta_2": self.beta_2, "epsilon": self.epsilon}
        )
        return config


_REGISTRY = {
    "sgd": SGD,
    "rmsprop": RMSProp,
    "adam": Adam,
}


def get_optimizer(spec: Union[str, Optimizer, None], **kwargs) -> Optimizer:
    """Resolve an optimiser by name (with keyword overrides) or pass through."""
    if spec is None:
        return RMSProp(**kwargs)
    if isinstance(spec, Optimizer):
        return spec
    try:
        cls = _REGISTRY[str(spec).lower()]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown optimizer {spec!r}; available: {sorted(_REGISTRY)}"
        ) from exc
    return cls(**kwargs)
