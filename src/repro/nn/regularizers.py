"""Kernel regularisers.

The paper trains its LSTM-seq2seq models with an L2-norm kernel regulariser of
``1e-4``; :class:`L2Regularizer` reproduces that.  Regularisers contribute a
penalty term to the loss and a corresponding term to the weight gradient.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_non_negative


class Regularizer:
    """Base class: a differentiable penalty on a weight tensor."""

    def penalty(self, weights: np.ndarray) -> float:
        """Scalar penalty added to the training loss."""
        raise NotImplementedError

    def gradient(self, weights: np.ndarray) -> np.ndarray:
        """Gradient of the penalty with respect to ``weights``."""
        raise NotImplementedError

    def get_config(self) -> dict:
        """JSON-serialisable configuration of the regulariser."""
        raise NotImplementedError


class ZeroRegularizer(Regularizer):
    """No regularisation: zero penalty, zero gradient."""

    def penalty(self, weights: np.ndarray) -> float:
        del weights
        return 0.0

    def gradient(self, weights: np.ndarray) -> np.ndarray:
        return np.zeros_like(weights)

    def get_config(self) -> dict:
        return {"type": "none"}


class L2Regularizer(Regularizer):
    """L2 (ridge) penalty ``strength * sum(w**2)``."""

    def __init__(self, strength: float = 1e-4) -> None:
        self.strength = check_non_negative(strength, "strength")

    def penalty(self, weights: np.ndarray) -> float:
        return float(self.strength * np.sum(np.square(weights)))

    def gradient(self, weights: np.ndarray) -> np.ndarray:
        return 2.0 * self.strength * weights

    def get_config(self) -> dict:
        return {"type": "l2", "strength": self.strength}


class L1Regularizer(Regularizer):
    """L1 (lasso) penalty ``strength * sum(|w|)``."""

    def __init__(self, strength: float = 1e-4) -> None:
        self.strength = check_non_negative(strength, "strength")

    def penalty(self, weights: np.ndarray) -> float:
        return float(self.strength * np.sum(np.abs(weights)))

    def gradient(self, weights: np.ndarray) -> np.ndarray:
        return self.strength * np.sign(weights)

    def get_config(self) -> dict:
        return {"type": "l1", "strength": self.strength}


def get_regularizer(spec: Union[Regularizer, str, float, None]) -> Regularizer:
    """Resolve a regulariser specification.

    ``None`` → no regularisation; a float → L2 with that strength; a string
    (``"l1"``/``"l2"``/``"none"``) → the named regulariser with its default
    strength; a :class:`Regularizer` instance is passed through unchanged.
    """
    if spec is None:
        return ZeroRegularizer()
    if isinstance(spec, Regularizer):
        return spec
    if isinstance(spec, (int, float)) and not isinstance(spec, bool):
        return L2Regularizer(float(spec))
    if isinstance(spec, str):
        name = spec.lower()
        if name == "l2":
            return L2Regularizer()
        if name == "l1":
            return L1Regularizer()
        if name in ("none", "zero"):
            return ZeroRegularizer()
    raise ConfigurationError(f"cannot interpret regularizer specification {spec!r}")


def regularizer_from_config(config: Optional[dict]) -> Regularizer:
    """Inverse of ``Regularizer.get_config``."""
    if not config:
        return ZeroRegularizer()
    kind = config.get("type", "none")
    if kind == "none":
        return ZeroRegularizer()
    if kind == "l2":
        return L2Regularizer(float(config.get("strength", 1e-4)))
    if kind == "l1":
        return L1Regularizer(float(config.get("strength", 1e-4)))
    raise ConfigurationError(f"unknown regularizer type {kind!r}")
