"""Model containers: the feed-forward ``Sequential`` model and the ``Seq2SeqAutoencoder``."""

from repro.nn.models.sequential import Sequential
from repro.nn.models.seq2seq import Seq2SeqAutoencoder

__all__ = ["Sequential", "Seq2SeqAutoencoder"]
