"""A Keras-like ``Sequential`` model for feed-forward stacks of layers.

Used for the paper's autoencoder family (AE-IoT / AE-Edge / AE-Cloud) and for
the contextual-bandit policy network.  The model supports compile/fit/predict
with mini-batch training, optional validation split and early stopping.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError, NotFittedError, ShapeError
from repro.nn.layers.base import Layer
from repro.nn.losses import Loss, get_loss
from repro.nn.optimizers import Optimizer, get_optimizer
from repro.nn.training import (
    EarlyStopping,
    TrainingHistory,
    iterate_minibatches,
    train_validation_split,
)
from repro.utils.rng import RngLike, ensure_rng


class Sequential:
    """A linear stack of layers trained with backpropagation."""

    def __init__(self, layers: Optional[Sequence[Layer]] = None, name: str = "sequential",
                 seed: RngLike = None) -> None:
        self.name = name
        self.layers: List[Layer] = []
        self._rng = ensure_rng(seed)
        self.optimizer: Optional[Optimizer] = None
        self.loss: Optional[Loss] = None
        self.history = TrainingHistory()
        for layer in layers or []:
            self.add(layer)

    # -- construction ------------------------------------------------------

    def add(self, layer: Layer) -> "Sequential":
        """Append a layer to the stack (returns ``self`` for chaining)."""
        if not isinstance(layer, Layer):
            raise ConfigurationError(f"expected a Layer, got {type(layer)!r}")
        layer.set_rng(self._rng)
        self.layers.append(layer)
        return self

    def compile(self, optimizer: Union[str, Optimizer, None] = "rmsprop",
                loss: Union[str, Loss, None] = "mse", **optimizer_kwargs) -> "Sequential":
        """Attach an optimiser and a loss; must be called before :meth:`fit`."""
        self.optimizer = get_optimizer(optimizer, **optimizer_kwargs)
        self.loss = get_loss(loss)
        return self

    # -- inference ---------------------------------------------------------

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Run all layers in order."""
        if not self.layers:
            raise ConfigurationError("model has no layers")
        output = np.asarray(inputs, dtype=float)
        for layer in self.layers:
            output = layer.forward(output, training=training)
        return output

    def predict(self, inputs: np.ndarray, batch_size: Optional[int] = None) -> np.ndarray:
        """Inference-mode forward pass, optionally in batches."""
        inputs = np.asarray(inputs, dtype=float)
        if batch_size is None or inputs.shape[0] <= batch_size:
            return self.forward(inputs, training=False)
        chunks = [
            self.forward(inputs[start: start + batch_size], training=False)
            for start in range(0, inputs.shape[0], batch_size)
        ]
        return np.concatenate(chunks, axis=0)

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.predict(inputs)

    # -- training ----------------------------------------------------------

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate through all layers (latest forward pass)."""
        grad = np.asarray(grad_output, dtype=float)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def zero_grads(self) -> None:
        """Clear accumulated gradients in every layer."""
        for layer in self.layers:
            layer.zero_grads()

    def parameters_and_gradients(self):
        """All (parameter, gradient) pairs across layers."""
        pairs = []
        for layer in self.layers:
            if layer.params or not layer.built:
                pairs.extend(layer.parameters_and_gradients() if layer.built else [])
        return pairs

    def regularization_penalty(self) -> float:
        """Total regularisation penalty across layers."""
        return float(sum(layer.regularization_penalty() for layer in self.layers))

    def train_on_batch(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """One gradient step on a single mini-batch; returns the batch loss."""
        if self.optimizer is None or self.loss is None:
            raise NotFittedError("model must be compiled before training")
        self.zero_grads()
        predictions = self.forward(inputs, training=True)
        loss_value = self.loss.value(predictions, targets) + self.regularization_penalty()
        grad = self.loss.gradient(predictions, targets)
        self.backward(grad)
        self.optimizer.step(self.parameters_and_gradients())
        return float(loss_value)

    def fit(
        self,
        inputs: np.ndarray,
        targets: Optional[np.ndarray] = None,
        epochs: int = 10,
        batch_size: int = 32,
        shuffle: bool = True,
        validation_split: float = 0.0,
        early_stopping: Optional[EarlyStopping] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train the model.

        ``targets=None`` trains the model as an autoencoder (targets are the
        inputs themselves), which is how the paper's AE models are trained.
        """
        if self.optimizer is None or self.loss is None:
            raise NotFittedError("model must be compiled before training")
        inputs = np.asarray(inputs, dtype=float)
        if inputs.ndim < 2:
            raise ShapeError(f"training inputs must be at least 2-D, got shape {inputs.shape}")
        if epochs <= 0:
            raise ConfigurationError(f"epochs must be positive, got {epochs}")

        autoencoding = targets is None
        if validation_split > 0.0:
            train_inputs, val_inputs = train_validation_split(
                inputs, validation_split, rng=self._rng
            )
            if not autoencoding:
                raise ConfigurationError(
                    "validation_split is only supported for autoencoder training "
                    "(targets=None); pass explicit validation data otherwise"
                )
        else:
            train_inputs, val_inputs = inputs, inputs[:0]
        train_targets = None if autoencoding else np.asarray(targets, dtype=float)

        self.history = TrainingHistory()
        for epoch in range(1, epochs + 1):
            epoch_losses = []
            for batch_inputs, batch_targets in iterate_minibatches(
                train_inputs, train_targets, batch_size, shuffle=shuffle, rng=self._rng
            ):
                if autoencoding:
                    batch_targets = batch_inputs
                epoch_losses.append(self.train_on_batch(batch_inputs, batch_targets))
            mean_loss = float(np.mean(epoch_losses)) if epoch_losses else float("nan")
            self.history.record("loss", mean_loss)
            if val_inputs.shape[0] > 0:
                val_pred = self.predict(val_inputs)
                val_loss = self.loss.value(val_pred, val_inputs)
                self.history.record("val_loss", val_loss)
            if verbose:
                print(f"[{self.name}] epoch {epoch}/{epochs} loss={mean_loss:.6f}")
            if early_stopping is not None and early_stopping.update(epoch, self.history):
                break
        return self.history

    # -- introspection -------------------------------------------------------

    def parameter_count(self) -> int:
        """Total number of trainable scalar parameters (layers must be built)."""
        return int(sum(layer.parameter_count() for layer in self.layers))

    def build(self, input_dim: int) -> "Sequential":
        """Eagerly build all layers by running a single dummy forward pass."""
        dummy = np.zeros((1, int(input_dim)))
        self.forward(dummy, training=False)
        return self

    def get_weights(self) -> Dict[str, Dict[str, np.ndarray]]:
        """Weights of every layer, keyed by ``f"{index}:{layer.name}"``."""
        return {
            f"{index}:{layer.name}": layer.get_weights()
            for index, layer in enumerate(self.layers)
        }

    def set_weights(self, weights: Dict[str, Dict[str, np.ndarray]]) -> None:
        """Load weights produced by :meth:`get_weights`."""
        for index, layer in enumerate(self.layers):
            key = f"{index}:{layer.name}"
            if key in weights:
                layer.set_weights(weights[key])

    def get_config(self) -> dict:
        """Architecture description (JSON-serialisable, no weights)."""
        return {
            "type": "Sequential",
            "name": self.name,
            "layers": [layer.get_config() for layer in self.layers],
            "optimizer": self.optimizer.get_config() if self.optimizer else None,
            "loss": self.loss.name if self.loss else None,
        }

    def summary(self) -> str:
        """A human-readable, multi-line summary of the architecture."""
        lines = [f"Model: {self.name}"]
        total = 0
        for index, layer in enumerate(self.layers):
            count = layer.parameter_count() if layer.built else 0
            total += count
            lines.append(f"  ({index}) {type(layer).__name__:<16s} {layer.name:<28s} params={count}")
        lines.append(f"  Total parameters: {total}")
        return "\n".join(lines)
