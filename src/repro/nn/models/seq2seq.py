"""LSTM sequence-to-sequence autoencoder (encoder–decoder reconstruction model).

This is the model family the paper uses for multivariate IoT data:

* the encoder (an :class:`~repro.nn.layers.lstm.LSTM` or a
  :class:`~repro.nn.layers.bidirectional.Bidirectional` LSTM) consumes the
  input window and produces its final hidden/cell states;
* the decoder (an LSTM initialised with those encoded states) reconstructs
  the window one step at a time, starting from a zero "start token" and
  feeding back the previous output (teacher forcing during training);
* the decoder output is passed through dropout (rate 0.3 in the paper) and a
  shared fully connected layer with linear activation that maps back to the
  input feature dimension.

Training minimises the mean squared reconstruction error with RMSProp and an
L2 kernel regulariser, matching Section II-A2 of the paper.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.exceptions import ConfigurationError, NotFittedError, ShapeError
from repro.nn.activations import sigmoid as _sigmoid
from repro.nn.layers.bidirectional import Bidirectional
from repro.nn.layers.dense import Dense
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.lstm import LSTM
from repro.nn.layers.time_distributed import TimeDistributed
from repro.nn.losses import Loss, get_loss
from repro.nn.optimizers import Optimizer, get_optimizer
from repro.nn.training import EarlyStopping, TrainingHistory, iterate_minibatches
from repro.utils.rng import RngLike, ensure_rng


class Seq2SeqAutoencoder:
    """Encoder–decoder reconstruction model over 3-D windows ``(batch, time, features)``."""

    def __init__(
        self,
        encoder: Union[LSTM, Bidirectional],
        decoder: LSTM,
        output_dim: int,
        dropout_rate: float = 0.3,
        kernel_regularizer: Union[float, None] = 1e-4,
        name: str = "seq2seq",
        seed: RngLike = None,
    ) -> None:
        if not decoder.return_sequences:
            raise ConfigurationError("the decoder LSTM must have return_sequences=True")
        if encoder.return_sequences:
            raise ConfigurationError("the encoder must have return_sequences=False")
        encoder_state_size = encoder.units if isinstance(encoder, Bidirectional) else encoder.units
        if decoder.units != encoder_state_size:
            raise ConfigurationError(
                "decoder units must equal the encoder state size "
                f"({encoder_state_size}), got {decoder.units}"
            )
        self.name = name
        self._rng = ensure_rng(seed)
        self.encoder = encoder
        self.decoder = decoder
        self.output_dim = int(output_dim)
        self.dropout = Dropout(dropout_rate, name=f"{name}_dropout")
        self.projection = TimeDistributed(
            Dense(
                self.output_dim,
                activation="linear",
                kernel_regularizer=kernel_regularizer,
                name=f"{name}_projection",
            )
        )
        for component in (self.encoder, self.decoder, self.dropout, self.projection):
            component.set_rng(self._rng)

        self.optimizer: Optional[Optimizer] = None
        self.loss: Optional[Loss] = None
        self.history = TrainingHistory()
        self._built = False

    # -- construction ------------------------------------------------------

    def compile(self, optimizer: Union[str, Optimizer, None] = "rmsprop",
                loss: Union[str, Loss, None] = "mse", **optimizer_kwargs) -> "Seq2SeqAutoencoder":
        """Attach an optimiser and a loss (defaults follow the paper: RMSProp + MSE)."""
        self.optimizer = get_optimizer(optimizer, **optimizer_kwargs)
        self.loss = get_loss(loss)
        return self

    def build(self, timesteps: int, features: int) -> "Seq2SeqAutoencoder":
        """Eagerly build all components with a dummy forward pass."""
        dummy = np.zeros((1, int(timesteps), int(features)))
        self.forward(dummy, training=False)
        return self

    # -- forward / backward --------------------------------------------------

    @staticmethod
    def _decoder_inputs_from_targets(targets: np.ndarray) -> np.ndarray:
        """Teacher-forcing decoder inputs: a zero start token followed by the shifted targets."""
        batch, _timesteps, features = targets.shape
        start = np.zeros((batch, 1, features))
        return np.concatenate([start, targets[:, :-1, :]], axis=1)

    def forward(self, inputs: np.ndarray, training: bool = False,
                decoder_inputs: Optional[np.ndarray] = None) -> np.ndarray:
        """Teacher-forced forward pass; reconstruction has the same shape as ``inputs``."""
        inputs = np.asarray(inputs, dtype=float)
        if inputs.ndim != 3:
            raise ShapeError(
                f"Seq2SeqAutoencoder expects 3-D inputs (batch, time, features), got {inputs.shape}"
            )
        if inputs.shape[2] != self.output_dim and self._built:
            raise ShapeError(
                f"model was built for {self.output_dim} features, got {inputs.shape[2]}"
            )
        if decoder_inputs is None:
            decoder_inputs = self._decoder_inputs_from_targets(inputs)
        self.encoder.forward(inputs, training=training)
        encoded_state = self.encoder.last_state
        decoded = self.decoder.forward(
            decoder_inputs, training=training, initial_state=encoded_state
        )
        dropped = self.dropout.forward(decoded, training=training)
        reconstruction = self.projection.forward(dropped, training=training)
        self._built = True
        return reconstruction

    def backward(self, grad_output: np.ndarray) -> None:
        """Backpropagate the reconstruction-loss gradient through decoder and encoder."""
        grad = self.projection.backward(np.asarray(grad_output, dtype=float))
        grad = self.dropout.backward(grad)
        self.decoder.backward(grad)
        grad_h0, grad_c0 = self.decoder.grad_initial_state
        encoder_output_grad = np.zeros_like(grad_h0)
        self.encoder.backward(encoder_output_grad, grad_state=(grad_h0, grad_c0))

    # -- training -------------------------------------------------------------

    def _components(self):
        return (self.encoder, self.decoder, self.projection)

    def zero_grads(self) -> None:
        """Clear accumulated gradients in every trainable component."""
        for component in self._components():
            component.zero_grads()

    def parameters_and_gradients(self):
        """All (parameter, gradient) pairs across encoder, decoder and projection."""
        pairs = []
        for component in self._components():
            pairs.extend(component.parameters_and_gradients())
        return pairs

    def regularization_penalty(self) -> float:
        """Total kernel-regularisation penalty."""
        return float(sum(c.regularization_penalty() for c in self._components()))

    def train_on_batch(self, inputs: np.ndarray) -> float:
        """One teacher-forced gradient step on a batch of windows; returns the loss."""
        if self.optimizer is None or self.loss is None:
            raise NotFittedError("model must be compiled before training")
        inputs = np.asarray(inputs, dtype=float)
        self.zero_grads()
        reconstruction = self.forward(inputs, training=True)
        loss_value = self.loss.value(reconstruction, inputs) + self.regularization_penalty()
        grad = self.loss.gradient(reconstruction, inputs)
        self.backward(grad)
        self.optimizer.step(self.parameters_and_gradients())
        return float(loss_value)

    def fit(
        self,
        windows: np.ndarray,
        epochs: int = 10,
        batch_size: int = 16,
        shuffle: bool = True,
        early_stopping: Optional[EarlyStopping] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train the autoencoder to reconstruct normal windows."""
        if self.optimizer is None or self.loss is None:
            raise NotFittedError("model must be compiled before training")
        windows = np.asarray(windows, dtype=float)
        if windows.ndim != 3:
            raise ShapeError(f"windows must be 3-D (batch, time, features), got {windows.shape}")
        if epochs <= 0:
            raise ConfigurationError(f"epochs must be positive, got {epochs}")

        self.history = TrainingHistory()
        for epoch in range(1, epochs + 1):
            losses = []
            for batch, _ in iterate_minibatches(
                windows, None, batch_size, shuffle=shuffle, rng=self._rng
            ):
                losses.append(self.train_on_batch(batch))
            mean_loss = float(np.mean(losses)) if losses else float("nan")
            self.history.record("loss", mean_loss)
            if verbose:
                print(f"[{self.name}] epoch {epoch}/{epochs} loss={mean_loss:.6f}")
            if early_stopping is not None and early_stopping.update(epoch, self.history):
                break
        return self.history

    # -- inference --------------------------------------------------------------

    def encode(self, inputs: np.ndarray) -> np.ndarray:
        """Return the encoder's final hidden state for each window.

        The paper feeds these encoded states to the policy network as the
        contextual information of multivariate windows.
        """
        inputs = np.asarray(inputs, dtype=float)
        self.encoder.forward(inputs, training=False)
        hidden, _cell = self.encoder.last_state
        return hidden

    def reconstruct(self, inputs: np.ndarray, teacher_forcing: bool = False) -> np.ndarray:
        """Reconstruct windows.

        ``teacher_forcing=True`` feeds the true previous value to the decoder
        (cheap, used during training-time evaluation); ``False`` (default)
        decodes autoregressively from the model's own previous output, which
        is the behaviour at detection time in the paper.
        """
        inputs = np.asarray(inputs, dtype=float)
        if teacher_forcing:
            return self.forward(inputs, training=False)
        return self._reconstruct_autoregressive(inputs)

    def _reconstruct_autoregressive(self, inputs: np.ndarray) -> np.ndarray:
        if inputs.ndim != 3:
            raise ShapeError(f"inputs must be 3-D, got shape {inputs.shape}")
        if not self._built:
            # Building requires one teacher-forced pass to initialise parameters.
            self.forward(inputs[:1], training=False)
        batch, timesteps, features = inputs.shape
        self.encoder.forward(inputs, training=False)
        h, c = self.encoder.last_state
        h = h.copy()
        c = c.copy()

        units = self.decoder.units
        kernel = self.decoder.params["kernel"]
        recurrent = self.decoder.params["recurrent_kernel"]
        bias = self.decoder.params["bias"]
        if self.decoder.double_bias:
            bias = bias + self.decoder.params["recurrent_bias"]
        dense = self.projection.inner
        dense_kernel = dense.params["kernel"]
        dense_bias = dense.params["bias"] if dense.use_bias else 0.0

        previous_output = np.zeros((batch, features))
        reconstruction = np.zeros((batch, timesteps, features))
        for t in range(timesteps):
            z = previous_output @ kernel + h @ recurrent + bias
            i = _sigmoid.forward(z[:, :units])
            f = _sigmoid.forward(z[:, units: 2 * units])
            g = np.tanh(z[:, 2 * units: 3 * units])
            o = _sigmoid.forward(z[:, 3 * units:])
            c = f * c + i * g
            h = o * np.tanh(c)
            step_output = h @ dense_kernel + dense_bias
            reconstruction[:, t, :] = step_output
            previous_output = step_output
        return reconstruction

    # -- introspection ------------------------------------------------------------

    def parameter_count(self) -> int:
        """Total number of trainable scalar parameters (components must be built)."""
        return int(sum(c.parameter_count() for c in self._components()))

    def get_weights(self) -> dict:
        """Weights of every component, keyed by component role."""
        return {
            "encoder": self.encoder.get_weights(),
            "decoder": self.decoder.get_weights(),
            "projection": self.projection.get_weights(),
        }

    def set_weights(self, weights: dict) -> None:
        """Load weights produced by :meth:`get_weights`."""
        self.encoder.set_weights(weights["encoder"])
        self.decoder.set_weights(weights["decoder"])
        self.projection.set_weights(weights["projection"])

    def get_config(self) -> dict:
        """Architecture description (JSON-serialisable, no weights)."""
        return {
            "type": "Seq2SeqAutoencoder",
            "name": self.name,
            "encoder": self.encoder.get_config(),
            "decoder": self.decoder.get_config(),
            "output_dim": self.output_dim,
            "dropout_rate": self.dropout.rate,
            "optimizer": self.optimizer.get_config() if self.optimizer else None,
            "loss": self.loss.name if self.loss else None,
        }

    def summary(self) -> str:
        """A human-readable, multi-line summary of the architecture."""
        lines = [f"Model: {self.name}"]
        for role, component in (
            ("encoder", self.encoder),
            ("decoder", self.decoder),
            ("projection", self.projection),
        ):
            count = component.parameter_count() if component.built else 0
            lines.append(f"  {role:<11s} {type(component).__name__:<16s} params={count}")
        lines.append(f"  Total parameters: {self.parameter_count() if self._built else 0}")
        return "\n".join(lines)
