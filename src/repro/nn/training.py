"""Training-loop utilities: history tracking, mini-batching and early stopping."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class TrainingHistory:
    """Per-epoch metric history recorded by ``fit``.

    ``metrics`` maps a metric name (e.g. ``"loss"``, ``"val_loss"``) to the
    list of its per-epoch values.
    """

    metrics: Dict[str, List[float]] = field(default_factory=dict)

    def record(self, name: str, value: float) -> None:
        """Append ``value`` to the series for ``name``."""
        self.metrics.setdefault(name, []).append(float(value))

    def last(self, name: str) -> float:
        """Most recent value of the metric ``name``."""
        series = self.metrics.get(name)
        if not series:
            raise KeyError(f"no values recorded for metric {name!r}")
        return series[-1]

    def best(self, name: str, mode: str = "min") -> float:
        """Best value of the metric ``name`` (``mode`` is ``"min"`` or ``"max"``)."""
        series = self.metrics.get(name)
        if not series:
            raise KeyError(f"no values recorded for metric {name!r}")
        return min(series) if mode == "min" else max(series)

    @property
    def epochs(self) -> int:
        """Number of completed epochs (length of the loss series)."""
        if not self.metrics:
            return 0
        return max(len(series) for series in self.metrics.values())

    def as_dict(self) -> Dict[str, List[float]]:
        """A plain-dict copy of the history (JSON-serialisable)."""
        return {name: list(values) for name, values in self.metrics.items()}


class EarlyStopping:
    """Stop training when a monitored metric has stopped improving.

    Mirrors the Keras callback of the same name: training stops once the
    monitored quantity fails to improve by at least ``min_delta`` for
    ``patience`` consecutive epochs.
    """

    def __init__(
        self,
        monitor: str = "loss",
        patience: int = 5,
        min_delta: float = 0.0,
        mode: str = "min",
    ) -> None:
        if patience < 0:
            raise ConfigurationError(f"patience must be non-negative, got {patience}")
        if mode not in ("min", "max"):
            raise ConfigurationError(f"mode must be 'min' or 'max', got {mode!r}")
        self.monitor = monitor
        self.patience = int(patience)
        self.min_delta = float(abs(min_delta))
        self.mode = mode
        self.best: Optional[float] = None
        self.wait = 0
        self.stopped_epoch: Optional[int] = None

    def update(self, epoch: int, history: TrainingHistory) -> bool:
        """Record the epoch's metric; return ``True`` when training should stop."""
        try:
            current = history.last(self.monitor)
        except KeyError:
            return False
        if self.best is None:
            self.best = current
            self.wait = 0
            return False
        if self.mode == "min":
            improved = current < self.best - self.min_delta
        else:
            improved = current > self.best + self.min_delta
        if improved:
            self.best = current
            self.wait = 0
            return False
        self.wait += 1
        if self.wait >= self.patience:
            self.stopped_epoch = epoch
            return True
        return False


def iterate_minibatches(
    inputs: np.ndarray,
    targets: Optional[np.ndarray],
    batch_size: int,
    shuffle: bool = True,
    rng: RngLike = None,
) -> Iterator[Tuple[np.ndarray, Optional[np.ndarray]]]:
    """Yield mini-batches of (inputs, targets) along the first axis.

    ``targets`` may be ``None`` (e.g. for unsupervised reconstruction where
    targets equal inputs); in that case the second element of each yielded
    tuple is ``None``.
    """
    if batch_size <= 0:
        raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
    n = inputs.shape[0]
    if targets is not None and targets.shape[0] != n:
        raise ConfigurationError(
            f"inputs and targets disagree on the number of samples: {n} vs {targets.shape[0]}"
        )
    indices = np.arange(n)
    if shuffle:
        ensure_rng(rng).shuffle(indices)
    for start in range(0, n, batch_size):
        batch_idx = indices[start: start + batch_size]
        batch_targets = targets[batch_idx] if targets is not None else None
        yield inputs[batch_idx], batch_targets


def train_validation_split(
    inputs: np.ndarray,
    validation_fraction: float,
    rng: RngLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Split ``inputs`` into (train, validation) along the first axis.

    A ``validation_fraction`` of 0 returns an empty validation array.
    """
    if not 0.0 <= validation_fraction < 1.0:
        raise ConfigurationError(
            f"validation_fraction must lie in [0, 1), got {validation_fraction}"
        )
    n = inputs.shape[0]
    n_val = int(round(n * validation_fraction))
    if n_val == 0:
        return inputs, inputs[:0]
    indices = ensure_rng(rng).permutation(n)
    val_idx = indices[:n_val]
    train_idx = indices[n_val:]
    return inputs[train_idx], inputs[val_idx]
