"""Activation functions and their derivatives.

Each activation is represented by an :class:`Activation` object exposing
``forward`` and ``backward``.  ``backward`` receives the *output* of the
forward pass (which is sufficient for all activations used here) together
with the upstream gradient, and returns the gradient with respect to the
pre-activation input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class Activation:
    """A named activation with its forward map and output-based derivative."""

    name: str
    forward: Callable[[np.ndarray], np.ndarray]
    backward: Callable[[np.ndarray, np.ndarray], np.ndarray]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


def _linear_forward(x: np.ndarray) -> np.ndarray:
    return x


def _linear_backward(output: np.ndarray, grad: np.ndarray) -> np.ndarray:
    del output
    return grad


def _relu_forward(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _relu_backward(output: np.ndarray, grad: np.ndarray) -> np.ndarray:
    return grad * (output > 0.0)


def _sigmoid_forward(x: np.ndarray) -> np.ndarray:
    # Numerically stable piecewise sigmoid.
    out = np.empty_like(x, dtype=float)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def _sigmoid_backward(output: np.ndarray, grad: np.ndarray) -> np.ndarray:
    return grad * output * (1.0 - output)


def _tanh_forward(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def _tanh_backward(output: np.ndarray, grad: np.ndarray) -> np.ndarray:
    return grad * (1.0 - output * output)


def _softmax_forward(x: np.ndarray) -> np.ndarray:
    shifted = x - np.max(x, axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=-1, keepdims=True)


def _softmax_backward(output: np.ndarray, grad: np.ndarray) -> np.ndarray:
    # Full Jacobian-vector product of softmax along the last axis.
    dot = np.sum(grad * output, axis=-1, keepdims=True)
    return output * (grad - dot)


def _softplus_forward(x: np.ndarray) -> np.ndarray:
    return np.logaddexp(0.0, x)


def _softplus_backward(output: np.ndarray, grad: np.ndarray) -> np.ndarray:
    # sigmoid(x) expressed via the softplus output: sigma = 1 - exp(-softplus(x)).
    return grad * (1.0 - np.exp(-output))


linear = Activation("linear", _linear_forward, _linear_backward)
relu = Activation("relu", _relu_forward, _relu_backward)
sigmoid = Activation("sigmoid", _sigmoid_forward, _sigmoid_backward)
tanh = Activation("tanh", _tanh_forward, _tanh_backward)
softmax = Activation("softmax", _softmax_forward, _softmax_backward)
softplus = Activation("softplus", _softplus_forward, _softplus_backward)

_REGISTRY: dict[str, Activation] = {
    act.name: act for act in (linear, relu, sigmoid, tanh, softmax, softplus)
}


def get_activation(name_or_activation: Union[str, Activation, None]) -> Activation:
    """Resolve an activation by name; ``None`` resolves to ``linear``."""
    if name_or_activation is None:
        return linear
    if isinstance(name_or_activation, Activation):
        return name_or_activation
    try:
        return _REGISTRY[str(name_or_activation)]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown activation {name_or_activation!r}; available: {sorted(_REGISTRY)}"
        ) from exc


def available_activations() -> list[str]:
    """Names of all registered activations."""
    return sorted(_REGISTRY)
